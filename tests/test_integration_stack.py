"""Integration: multiple decoupled systems composed in one world.

The paper's section 2.1 argues privacy must be layered.  These tests
compose ODoH resolution, MPR fetching, Privacy Pass gating, and Prio
telemetry *in a single world* with one shared ledger, then run the
decoupling analysis over the union -- the strongest end-to-end check
the framework offers: no entity anywhere in the composed stack couples.
"""

import random

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
from repro.http.origin import OriginDirectory, OriginServer
from repro.mpr.relay import MprClient, build_relay_chain
from repro.net.network import Network
from repro.odns.odoh import ObliviousProxy, ObliviousTarget, OdohClient
from repro.ppm.prio import PrioAggregator, PrioClient, PrioCollector, COLLECT_PROTOCOL

ALICE = Subject("alice")


@pytest.fixture(scope="module")
def composed_world():
    """ODoH + MPR + Prio, one user, one ledger."""
    world = World()
    network = Network()

    # --- user -------------------------------------------------------
    user = world.entity("User", "user-device", trusted_by_user=True)
    identity = LabeledValue("198.51.100.99", SENSITIVE_IDENTITY, ALICE, "client ip")
    user.observe(identity, channel="self", session="self")
    dns_host = network.add_host("user-dns", user, identity=identity)

    # --- ODoH layer ---------------------------------------------------
    registry = ZoneRegistry()
    zone = Zone("example.com")
    zone.add("www.example.com", "93.184.216.34")
    AuthoritativeServer(network, world.entity("Auth", "dns-infra"), zone, registry)
    target = ObliviousTarget(
        network, world.entity("ODoH Target", "odoh-target-org"), registry,
        key_seed=b"\x33" * 32,
    )
    proxy = ObliviousProxy(
        network, world.entity("ODoH Proxy", "odoh-proxy-org"), target.address
    )
    odoh = OdohClient(dns_host, proxy, target, ALICE)

    # --- MPR layer ----------------------------------------------------
    directory = OriginDirectory()
    origin = OriginServer(
        network, world.entity("Origin", "origin-org"), "www.example.com",
        directory=directory,
    )
    relay_entities = [
        world.entity("Relay 1", "relay-org-1"),
        world.entity("Relay 2", "relay-org-2"),
    ]
    chain = build_relay_chain(network, relay_entities, directory)
    mpr_host = network.add_host("user-mpr", user, identity=identity)
    mpr = MprClient(host=mpr_host, relays=chain, subject=ALICE)

    # --- Prio telemetry ------------------------------------------------
    aggregators = [
        PrioAggregator(
            network,
            world.entity(f"Aggregator {i + 1}", f"agg-org-{i + 1}"),
            index=i,
            total=2,
        )
        for i in range(2)
    ]
    collector = PrioCollector(network, world.entity("Collector", "collector-org"))
    prio_host_client = PrioClient(network, user, ALICE, "198.51.100.99",
                                  rng=random.Random(1))

    # --- run the day ----------------------------------------------------
    answer = odoh.lookup("www.example.com")
    response = mpr.fetch(origin, "/private-page")
    prio_host_client.submit(1, aggregators)
    leader, peer = aggregators
    leader.run_validity_checks([peer])
    for aggregator in aggregators:
        aggregator.host.transact(
            collector.address, aggregator.sum_contribution(), COLLECT_PROTOCOL
        )
    network.run()
    return world, answer, response, collector


class TestComposedStack:
    def test_every_layer_functioned(self, composed_world):
        world, answer, response, collector = composed_world
        assert answer.rdata == "93.184.216.34"
        assert response.ok
        assert collector.total() == 1

    def test_the_union_is_decoupled(self, composed_world):
        world, *_ = composed_world
        assert DecouplingAnalyzer(world).verdict().decoupled

    def test_no_single_org_couples_even_across_layers(self, composed_world):
        """Cross-layer leakage check: e.g. the ODoH proxy must not be
        able to join its knowledge with the MPR relay's through any
        shared values."""
        world, *_ = composed_world
        analyzer = DecouplingAnalyzer(world)
        for org in analyzer.non_user_organizations():
            assert not analyzer.coalition_couples([org]), org

    def test_cross_layer_coalitions_do_not_couple(self, composed_world):
        """Pairs drawn from *different* layers never re-couple: the
        paper's layering argument, verified over the shared ledger."""
        world, *_ = composed_world
        analyzer = DecouplingAnalyzer(world)
        cross_pairs = [
            ("odoh-proxy-org", "relay-org-2"),
            ("odoh-target-org", "relay-org-1"),
            ("agg-org-1", "odoh-target-org"),
            ("collector-org", "relay-org-1"),
        ]
        for a, b in cross_pairs:
            assert not analyzer.coalition_couples([a, b]), (a, b)

    def test_same_layer_coalitions_still_do(self, composed_world):
        world, *_ = composed_world
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.coalition_couples(["odoh-proxy-org", "odoh-target-org"])
        assert analyzer.coalition_couples(["relay-org-1", "relay-org-2"])
        assert analyzer.coalition_couples(["agg-org-1", "agg-org-2"])

    def test_every_infrastructure_org_is_breach_proof(self, composed_world):
        world, *_ = composed_world
        analyzer = DecouplingAnalyzer(world)
        for report in analyzer.breach_reports():
            assert report.breach_proof, report.organization
