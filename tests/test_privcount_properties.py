"""Property battery for the PrivCount scenario's cryptographic claims.

Three families of proof obligations:

1. **Exactness** -- counter shares recombine to the exact count mod q,
   and the full protocol's blinding cancels: sum of blinded registers
   plus sum of share-keeper blinding sums equals the true total.
2. **Secrecy** -- any strict subset of share keepers holds values
   statistically independent of the true count: the same subset of
   shares is consistent with *every* possible count, and the subset's
   distribution does not move when the count changes (seeded
   uniformity check).
3. **Calibration** -- the Laplace noise the tally adds has exactly the
   scale the statistic's declared sensitivity and epsilon allocation
   demand, and empirical draws match that scale.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.secretshare import (
    COUNTER_MODULUS,
    combine_shares,
    share_counter,
)
from repro.privcount import (
    DEFAULT_EPSILON,
    STATISTICS,
    epsilon_allocation,
    laplace_scale,
    run_privcount,
    sample_laplace,
    statistics_for,
)

counts = st.integers(min_value=0, max_value=COUNTER_MODULUS - 1)
party_counts = st.integers(min_value=2, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestExactRecombination:
    @given(counts, party_counts, seeds)
    def test_all_shares_recombine_exactly(self, value, parties, seed):
        shares = share_counter(value, parties, rng=random.Random(seed))
        assert combine_shares(shares) == value % COUNTER_MODULUS

    @given(
        st.lists(counts, min_size=1, max_size=6), party_counts, seeds
    )
    def test_blinding_cancels_across_registers(self, values, parties, seed):
        """The protocol identity the tally relies on: the sum of the
        collectors' blinded registers plus the sum of every keeper's
        blinding sum reconstructs the exact total."""
        rng = random.Random(seed)
        keeper_sums = [0] * (parties - 1)
        blinded_total = 0
        for value in values:
            shares = share_counter(value, parties, rng=rng)
            blinded_total = (blinded_total + shares[-1]) % COUNTER_MODULUS
            for keeper, share in enumerate(shares[:-1]):
                keeper_sums[keeper] = (
                    keeper_sums[keeper] + share
                ) % COUNTER_MODULUS
        reconstructed = combine_shares([blinded_total] + keeper_sums)
        assert reconstructed == sum(values) % COUNTER_MODULUS


class TestStrictSubsetSecrecy:
    @given(counts, counts, party_counts, seeds)
    def test_subset_is_independent_of_the_count(
        self, value_a, value_b, parties, seed
    ):
        """The first ``parties - 1`` shares are drawn before the value
        enters the arithmetic, so two different counts shared under the
        same rng state yield *identical* keeper shares -- the keepers'
        view carries zero information about the count."""
        shares_a = share_counter(value_a, parties, rng=random.Random(seed))
        shares_b = share_counter(value_b, parties, rng=random.Random(seed))
        assert shares_a[:-1] == shares_b[:-1]

    @given(counts, party_counts, seeds)
    def test_any_strict_subset_is_forgeable(self, value, parties, seed):
        """Every strict subset of shares is consistent with every
        possible count: pick any target, and one forged balancing share
        completes the subset to it."""
        shares = share_counter(value, parties, rng=random.Random(seed))
        drop = seed % parties  # any single missing share will do
        subset = shares[:drop] + shares[drop + 1 :]
        target = (value + 1 + seed) % COUNTER_MODULUS
        forged = (target - sum(subset)) % COUNTER_MODULUS
        assert combine_shares(subset + [forged]) == target

    def test_keeper_shares_are_uniform(self):
        """Seeded frequency check: keeper shares of a *constant* count
        spread uniformly over a small modulus (chi-squared well under
        the df + 4*sqrt(2*df) red line for 16 bins)."""
        modulus, draws = 16, 4096
        rng = random.Random(20221114)
        bins = [0] * modulus
        for _ in range(draws):
            shares = share_counter(7, 3, modulus=modulus, rng=rng)
            bins[shares[0]] += 1
        expected = draws / modulus
        chi2 = sum((b - expected) ** 2 / expected for b in bins)
        assert chi2 < (modulus - 1) + 4 * math.sqrt(2 * (modulus - 1))


class TestNoiseCalibration:
    def test_allocation_splits_the_budget(self):
        allocation = epsilon_allocation(STATISTICS, DEFAULT_EPSILON)
        assert sum(allocation.values()) == pytest.approx(DEFAULT_EPSILON)
        assert len(set(allocation.values())) == 1

    @given(
        st.integers(min_value=1, max_value=len(STATISTICS)),
        st.floats(min_value=0.05, max_value=2.0),
    )
    def test_scale_is_sensitivity_over_epsilon(self, count, epsilon):
        statistics = statistics_for(count)
        allocation = epsilon_allocation(statistics, epsilon)
        for statistic in statistics:
            scale = laplace_scale(statistic, allocation[statistic.name])
            assert scale == pytest.approx(
                statistic.sensitivity * count / epsilon
            )

    def test_run_reports_declared_scales(self):
        """The scenario's published noise scales are exactly the
        per-statistic sensitivity over the per-statistic epsilon."""
        run = run_privcount()
        statistics = statistics_for(len(run.noise_scales))
        allocation = epsilon_allocation(statistics, DEFAULT_EPSILON)
        for statistic in statistics:
            assert run.noise_scales[statistic.name] == pytest.approx(
                laplace_scale(statistic, allocation[statistic.name])
            )

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.5, max_value=50.0), seeds)
    def test_empirical_scale_matches(self, scale, seed):
        """Mean |draw| of Laplace(0, b) is b; 4000 seeded draws land
        within 15% -- loose enough to never flake, tight enough to
        catch a mis-sized mechanism (e.g. b/2 or 2b)."""
        rng = random.Random(seed)
        draws = 4000
        mean_abs = sum(abs(sample_laplace(scale, rng)) for _ in range(draws))
        mean_abs /= draws
        assert mean_abs == pytest.approx(scale, rel=0.15)

    def test_zero_scale_is_exact(self):
        assert sample_laplace(0.0, random.Random(1)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_laplace(-1.0)
        with pytest.raises(ValueError):
            laplace_scale(STATISTICS[0], 0.0)
        with pytest.raises(ValueError):
            statistics_for(0)
        with pytest.raises(ValueError):
            epsilon_allocation([], 1.0)


class TestEndToEndExactness:
    """The full scenario, fault-free: published = exact + noise, and
    exact equals the ground-truth event counts."""

    def test_exact_totals_match_ground_truth(self):
        run = run_privcount()
        assert run.reconstructed
        assert run.exact_totals == run.true_totals
        for name, published in run.published.items():
            assert published is not None
            # Noise is integer-rounded onto the exact total.
            assert isinstance(published, int)

    def test_sharded_exactness(self):
        from repro.privcount import run_privcount_sharded

        run = run_privcount_sharded()
        assert run.reconstructed
        assert run.exact_totals == run.true_totals
