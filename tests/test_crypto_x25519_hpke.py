"""RFC 7748 vectors for X25519 and behaviour tests for HPKE."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hpke import (
    HpkeKeyPair,
    open_sealed,
    seal,
    setup_base_recipient,
    setup_base_sender,
)
from repro.crypto.x25519 import X25519PrivateKey, X25519_BASEPOINT, x25519

ALICE_PRIV = bytes.fromhex(
    "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a"
)
ALICE_PUB = bytes.fromhex(
    "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
)
BOB_PRIV = bytes.fromhex(
    "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb"
)
BOB_PUB = bytes.fromhex(
    "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
)
SHARED = bytes.fromhex(
    "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
)


class TestX25519Rfc7748:
    def test_alice_public_key(self):
        assert X25519PrivateKey(ALICE_PRIV).public_bytes == ALICE_PUB

    def test_bob_public_key(self):
        assert X25519PrivateKey(BOB_PRIV).public_bytes == BOB_PUB

    def test_shared_secret_both_directions(self):
        assert X25519PrivateKey(ALICE_PRIV).exchange(BOB_PUB) == SHARED
        assert X25519PrivateKey(BOB_PRIV).exchange(ALICE_PUB) == SHARED

    def test_scalar_mult_vector_1(self):
        scalar = bytes.fromhex(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"
        )
        u = bytes.fromhex(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"
        )
        assert x25519(scalar, u).hex() == (
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        )

    def test_high_bit_of_u_is_masked(self):
        u_with_high_bit = bytes(31) + b"\x80"
        u_without = bytes(32)
        # both decode to u=0 -> identical (zero) output means the mask
        # applied; compare against each other rather than zero check
        assert x25519(ALICE_PRIV, u_with_high_bit) == x25519(ALICE_PRIV, u_without)

    def test_bad_input_sizes(self):
        with pytest.raises(ValueError):
            x25519(b"short", X25519_BASEPOINT)
        with pytest.raises(ValueError):
            x25519(ALICE_PRIV, b"short")
        with pytest.raises(ValueError):
            X25519PrivateKey.generate(b"short")

    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    @settings(max_examples=5)
    def test_diffie_hellman_commutes(self, seed_a, seed_b):
        a = X25519PrivateKey.generate(seed_a)
        b = X25519PrivateKey.generate(seed_b)
        assert x25519(a.private_bytes, b.public_bytes) == x25519(
            b.private_bytes, a.public_bytes
        )


class TestHpke:
    def test_single_shot_roundtrip(self):
        keypair = HpkeKeyPair.generate(b"\x01" * 32)
        enc, ciphertext = seal(keypair.public_bytes, b"attack at dawn", info=b"test")
        assert open_sealed(enc, ciphertext, keypair, info=b"test") == b"attack at dawn"

    def test_wrong_recipient_fails(self):
        keypair = HpkeKeyPair.generate(b"\x01" * 32)
        wrong = HpkeKeyPair.generate(b"\x02" * 32)
        enc, ciphertext = seal(keypair.public_bytes, b"secret")
        with pytest.raises(ValueError):
            open_sealed(enc, ciphertext, wrong)

    def test_wrong_info_fails(self):
        keypair = HpkeKeyPair.generate(b"\x01" * 32)
        enc, ciphertext = seal(keypair.public_bytes, b"secret", info=b"a")
        with pytest.raises(ValueError):
            open_sealed(enc, ciphertext, keypair, info=b"b")

    def test_aad_is_authenticated(self):
        keypair = HpkeKeyPair.generate(b"\x01" * 32)
        enc, ciphertext = seal(keypair.public_bytes, b"secret", aad=b"header")
        with pytest.raises(ValueError):
            open_sealed(enc, ciphertext, keypair, aad=b"other")

    def test_context_sequence_of_messages(self):
        keypair = HpkeKeyPair.generate(b"\x03" * 32)
        sender = setup_base_sender(keypair.public_bytes, b"ctx")
        recipient = setup_base_recipient(sender.enc, keypair, b"ctx")
        for index in range(5):
            message = f"message {index}".encode()
            assert recipient.open(sender.seal(message)) == message

    def test_out_of_order_open_fails(self):
        keypair = HpkeKeyPair.generate(b"\x03" * 32)
        sender = setup_base_sender(keypair.public_bytes)
        recipient = setup_base_recipient(sender.enc, keypair)
        first = sender.seal(b"one")
        second = sender.seal(b"two")
        with pytest.raises(ValueError):
            recipient.open(second)  # nonce mismatch
        assert recipient.open(first) == b"one"

    def test_exporter_secrets_agree(self):
        keypair = HpkeKeyPair.generate(b"\x04" * 32)
        sender = setup_base_sender(keypair.public_bytes)
        recipient = setup_base_recipient(sender.enc, keypair)
        assert sender.export(b"label", 32) == recipient.export(b"label", 32)
        assert sender.export(b"label", 32) != sender.export(b"other", 32)

    def test_deterministic_with_ephemeral_seed(self):
        keypair = HpkeKeyPair.generate(b"\x05" * 32)
        one = seal(keypair.public_bytes, b"m", ephemeral_seed=b"\x06" * 32)
        two = seal(keypair.public_bytes, b"m", ephemeral_seed=b"\x06" * 32)
        assert one == two

    @given(st.binary(max_size=200))
    @settings(max_examples=10)
    def test_roundtrip_property(self, plaintext):
        keypair = HpkeKeyPair.generate(b"\x09" * 32)
        enc, ciphertext = seal(keypair.public_bytes, plaintext)
        assert open_sealed(enc, ciphertext, keypair) == plaintext
