"""Unit and property tests for the linkage-based decoupling analyzer."""

import pytest
from hypothesis import given, strategies as st

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Sealed, ShareInfo, Subject

ALICE = Subject("alice")


def _identity(payload="ip-1"):
    return LabeledValue(payload, SENSITIVE_IDENTITY, ALICE, "ip")


def _data(payload="query-1"):
    return LabeledValue(payload, SENSITIVE_DATA, ALICE, "query")


def _world_with(*entity_names, user=True):
    world = World()
    if user:
        world.entity("User", "device", trusted_by_user=True)
    for name in entity_names:
        world.entity(name, f"org-{name}")
    return world


class TestEntityCoupling:
    def test_same_session_couples(self):
        world = _world_with("Server")
        world.get("Server").observe([_identity(), _data()], session="pkt:1")
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.entity_couples("Server", ALICE)
        assert not analyzer.verdict().decoupled

    def test_different_sessions_no_shared_value_do_not_couple(self):
        world = _world_with("Server")
        server = world.get("Server")
        server.observe(_identity(), session="pkt:1")
        server.observe(_data(), session="pkt:2")
        analyzer = DecouplingAnalyzer(world)
        assert not analyzer.entity_couples("Server", ALICE)
        assert analyzer.verdict().decoupled

    def test_shared_pseudonym_bridges_sessions(self):
        world = _world_with("Server")
        server = world.get("Server")
        handle = LabeledValue("token-9", NONSENSITIVE_IDENTITY, ALICE, "token")
        server.observe([_identity(), handle], session="pkt:1")
        server.observe([handle, _data()], session="pkt:2")
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.entity_couples("Server", ALICE)

    def test_user_coupling_is_not_a_violation(self):
        world = _world_with()
        world.get("User").observe([_identity(), _data()], session="self")
        assert DecouplingAnalyzer(world).verdict().decoupled

    def test_violation_reports_entity_and_cell(self):
        world = _world_with("Server")
        world.get("Server").observe([_identity(), _data()], session="pkt:1")
        verdict = DecouplingAnalyzer(world).verdict()
        (violation,) = verdict.violations
        assert violation.entity == "Server"
        assert violation.cell.render() == "(▲, ●)"
        assert "Server" in str(verdict)


class TestCoalitions:
    def _split_world(self):
        """A sees identity + ciphertext; B opens the same ciphertext."""
        world = _world_with("A", "B")
        envelope = Sealed.wrap("kb", [_data()])
        world.get("A").observe([_identity(), envelope], session="pkt:1")
        world.get("B").grant_key("kb")
        world.get("B").observe(envelope, session="pkt:2")
        return world

    def test_ciphertext_digest_bridges_organizations(self):
        analyzer = DecouplingAnalyzer(self._split_world())
        assert not analyzer.coalition_couples(["org-A"])
        assert not analyzer.coalition_couples(["org-B"])
        assert analyzer.coalition_couples(["org-A", "org-B"])

    def test_minimal_coalitions_and_resistance(self):
        analyzer = DecouplingAnalyzer(self._split_world())
        assert analyzer.minimal_recoupling_coalitions() == (
            frozenset({"org-A", "org-B"}),
        )
        assert analyzer.collusion_resistance() == 2

    def test_unlinkable_worlds_resist_all_coalitions(self):
        world = _world_with("A", "B")
        world.get("A").observe(_identity(), session="pkt:1")
        world.get("B").observe(_data(), session="pkt:2")
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.minimal_recoupling_coalitions() == ()
        # resistance = number of non-user orgs + 1 (unreachable)
        assert analyzer.collusion_resistance() == 3

    def test_coalition_coupling_is_monotone_in_membership(self):
        analyzer = DecouplingAnalyzer(self._split_world())
        assert analyzer.coalition_couples(["org-A", "org-B", "org-nonexistent"])


class TestShareReconstruction:
    def _share(self, index, total, group="g1"):
        return LabeledValue(
            payload=1000 + index,
            label=NONSENSITIVE_DATA,
            subject=ALICE,
            description="share",
            share_info=ShareInfo(group=group, index=index, total=total),
        )

    def test_all_shares_in_one_entity_couple_with_identity(self):
        world = _world_with("S")
        entity = world.get("S")
        entity.observe([_identity(), self._share(0, 2)], session="pkt:1")
        entity.observe([_identity("ip-1"), self._share(1, 2)], session="pkt:2")
        assert DecouplingAnalyzer(world).entity_couples("S", ALICE)

    def test_missing_share_does_not_reconstruct(self):
        world = _world_with("S")
        entity = world.get("S")
        entity.observe([_identity(), self._share(0, 3)], session="pkt:1")
        entity.observe([_identity("ip-1"), self._share(1, 3)], session="pkt:2")
        assert not DecouplingAnalyzer(world).entity_couples("S", ALICE)

    def test_shares_across_coalition_reconstruct(self):
        world = _world_with("A", "B")
        world.get("A").observe([_identity(), self._share(0, 2)], session="pkt:1")
        world.get("B").observe([_identity("ip-1"), self._share(1, 2)], session="pkt:2")
        analyzer = DecouplingAnalyzer(world)
        assert not analyzer.coalition_couples(["org-A"])
        assert analyzer.coalition_couples(["org-A", "org-B"])


class TestBreach:
    def test_breach_report_fields(self):
        world = _world_with("Server")
        world.get("Server").observe([_identity(), _data()], session="pkt:1")
        report = DecouplingAnalyzer(world).breach("org-Server")
        assert report.subjects_identified == (ALICE,)
        assert report.subjects_with_sensitive_data == (ALICE,)
        assert not report.breach_proof

    def test_decoupled_org_is_breach_proof(self):
        world = _world_with("Proxy")
        world.get("Proxy").observe(
            [_identity(), Sealed.wrap("k", [_data()])], session="pkt:1"
        )
        report = DecouplingAnalyzer(world).breach("org-Proxy")
        assert report.breach_proof
        assert report.subjects_identified == (ALICE,)
        assert report.subjects_with_sensitive_data == ()

    def test_breach_reports_cover_all_non_user_orgs(self):
        world = _world_with("A", "B")
        world.get("A").observe(_identity(), session="s")
        world.get("B").observe(_data(), session="t")
        reports = DecouplingAnalyzer(world).breach_reports()
        assert {r.organization for r in reports} == {"org-A", "org-B"}


class TestPropertyMonotonicity:
    @given(st.lists(st.sampled_from(["id", "data", "both"]), min_size=1, max_size=6))
    def test_observing_more_never_uncouples(self, extra):
        """Coupling is monotone: extra observations never remove it."""
        world = _world_with("S")
        entity = world.get("S")
        entity.observe([_identity(), _data()], session="pkt:0")
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.entity_couples("S", ALICE)
        for index, kind in enumerate(extra):
            items = {
                "id": [_identity(f"ip-{index}")],
                "data": [_data(f"q-{index}")],
                "both": [_identity(f"ip-{index}"), _data(f"q-{index}")],
            }[kind]
            entity.observe(items, session=f"pkt:{index + 1}")
            assert analyzer.entity_couples("S", ALICE)

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=4),
    )
    def test_partial_share_sets_never_couple(self, total, have_fewer):
        """Any proper subset of shares reveals nothing."""
        world = _world_with("S")
        entity = world.get("S")
        count = min(have_fewer, total - 1)
        for index in range(count):
            share = LabeledValue(
                payload=index,
                label=NONSENSITIVE_DATA,
                subject=ALICE,
                description="share",
                share_info=ShareInfo(group="g", index=index, total=total),
            )
            entity.observe([_identity(f"ip-{index}"), share], session=f"pkt:{index}")
        assert not DecouplingAnalyzer(world).entity_couples("S", ALICE)
