"""Unit tests for the discrete-event simulator and network fabric."""

import pytest

from repro.core.entities import World
from repro.core.labels import NONSENSITIVE_DATA, SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Sealed, Subject
from repro.net.addressing import Address, AddressAllocator
from repro.net.network import Network, WireObserver
from repro.net.packets import estimate_size
from repro.net.sim import Simulator
from repro.net.trace import PacketRecord, TrafficTrace

ALICE = Subject("alice")


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run_until_idle()
        assert order == ["a", "b", "c"]
        assert sim.now == pytest.approx(0.3)

    def test_ties_break_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.1, lambda: order.append(1))
        sim.schedule(0.1, lambda: order.append(2))
        sim.run_until_idle()
        assert order == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until_predicate(self):
        sim = Simulator()
        hits = []
        for index in range(5):
            sim.schedule(index * 0.1, lambda i=index: hits.append(i))
        sim.run_until(lambda: len(hits) >= 2)
        assert hits == [0, 1]
        assert sim.pending == 3

    def test_run_until_raises_if_queue_drains(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            sim.run_until(lambda: False)

    def test_reentrant_run_until(self):
        sim = Simulator()
        results = []

        def outer():
            sim.schedule(0.1, lambda: results.append("inner"))
            sim.run_until(lambda: bool(results))
            results.append("outer-done")

        sim.schedule(0.0, outer)
        sim.run_until_idle()
        assert results == ["inner", "outer-done"]

    def test_advance(self):
        sim = Simulator()
        sim.advance(2.5)
        assert sim.now == 2.5
        with pytest.raises(ValueError):
            sim.advance(-1)

    def test_event_storm_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0, rearm)
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_events=100)


class TestAddressing:
    def test_prefixes_and_allocation_are_deterministic(self):
        allocator = AddressAllocator()
        p1 = allocator.network_prefix()
        p2 = allocator.network_prefix()
        assert p1 != p2
        a = allocator.allocate(p1)
        b = allocator.allocate(p1)
        assert a != b and a.prefix == b.prefix == p1

    def test_prefix_exhaustion(self):
        allocator = AddressAllocator()
        prefix = allocator.network_prefix()
        for _ in range(254):
            allocator.allocate(prefix)
        with pytest.raises(ValueError):
            allocator.allocate(prefix)

    def test_prefix_exhaustion_reports_prefix_and_count(self):
        allocator = AddressAllocator()
        prefix = allocator.network_prefix()
        for _ in range(254):
            allocator.allocate(prefix)
        with pytest.raises(ValueError) as exc_info:
            allocator.allocate(prefix)
        message = str(exc_info.value)
        assert prefix in message
        assert "254" in message
        # Exhaustion of one prefix leaves others allocatable.
        other = allocator.network_prefix()
        assert allocator.allocate(other).prefix == other

    def test_first_block_matches_historical_layout(self):
        """The first 65536 prefixes are byte-identical to the old
        ``10.x.y`` allocator, so existing traces stay stable."""
        allocator = AddressAllocator()
        assert allocator.network_prefix() == "10.0.0"
        for _ in range(254):
            allocator.network_prefix()
        assert allocator.network_prefix() == "10.0.255"
        assert allocator.network_prefix() == "10.1.0"

    def test_prefix_space_grows_past_the_first_octet_block(self):
        """Prefix 65536 rolls into ``11.x.y`` instead of exhausting --
        million-device populations need more than one block."""
        allocator = AddressAllocator()
        allocator._next_prefix = 65_536
        assert allocator.network_prefix() == "11.0.0"
        allocator._next_prefix = 65_536 * 2 + 257
        assert allocator.network_prefix() == "12.1.1"

    def test_prefix_space_exhaustion_is_accurate(self):
        allocator = AddressAllocator()
        allocator._next_prefix = AddressAllocator._MAX_PREFIXES - 1
        assert allocator.network_prefix() == "255.255.255"
        with pytest.raises(ValueError) as exc_info:
            allocator.network_prefix()
        message = str(exc_info.value)
        assert str(AddressAllocator._MAX_PREFIXES) in message
        assert "prefix space exhausted" in message

    def test_address_ordering_and_str(self):
        assert str(Address("10.0.0.1")) == "10.0.0.1"
        assert Address("10.0.0.1").prefix == "10.0.0"


class TestTrafficTraceJsonl:
    def _trace(self):
        trace = TrafficTrace()
        trace.record(
            PacketRecord(
                time=0.01,
                src=Address("10.0.0.1"),
                dst=Address("10.0.1.1"),
                size=512,
                protocol="mix",
                packet_id=1,
            )
        )
        trace.record(
            PacketRecord(
                time=0.02,
                src=Address("10.0.1.1"),
                dst=Address("10.0.2.1"),
                size=64,
                protocol="dns",
                packet_id=2,
            )
        )
        return trace

    def test_round_trip_preserves_records(self):
        trace = self._trace()
        restored = TrafficTrace.from_jsonl(trace.to_jsonl())
        assert restored.records == trace.records
        assert restored.total_bytes() == trace.total_bytes()

    def test_jsonl_lines_are_plain_json(self):
        import json

        lines = self._trace().to_jsonl().splitlines()
        assert len(lines) == 2
        row = json.loads(lines[0])
        assert row == {
            "time": 0.01,
            "src": "10.0.0.1",
            "dst": "10.0.1.1",
            "size": 512,
            "protocol": "mix",
            "packet_id": 1,
        }

    def test_from_jsonl_skips_blank_lines(self):
        text = self._trace().to_jsonl() + "\n\n"
        assert len(TrafficTrace.from_jsonl(text)) == 2

    def test_empty_trace_round_trips(self):
        assert len(TrafficTrace.from_jsonl(TrafficTrace().to_jsonl())) == 0

    def test_network_trace_exports(self):
        world = World()
        network = Network()
        client = network.add_host("client", world.entity("C", "c-org"))
        server = network.add_host("server", world.entity("S", "s-org"))
        server.register("echo", lambda packet: "ok")
        client.transact(server.address, "hi", "echo")
        restored = TrafficTrace.from_jsonl(network.trace.to_jsonl())
        assert restored.records == network.trace.records


class TestEstimateSize:
    def test_primitive_sizes(self):
        assert estimate_size(b"abcd") == 4
        assert estimate_size("abc") == 3
        assert estimate_size(None) == 0
        assert estimate_size(True) == 1
        assert estimate_size(3.5) == 8

    def test_sealed_adds_overhead(self):
        value = LabeledValue("12345", SENSITIVE_DATA, ALICE, "v")
        assert estimate_size(Sealed.wrap("k", [value])) > estimate_size(value)

    def test_containers_sum(self):
        assert estimate_size(["ab", "cd"]) == 4


class TestNetwork:
    def _make(self):
        world = World()
        network = Network()
        user_entity = world.entity("User", "device", trusted_by_user=True)
        server_entity = world.entity("Server", "server-org")
        identity = LabeledValue("198.51.100.1", SENSITIVE_IDENTITY, ALICE, "ip")
        user = network.add_host("user", user_entity, identity=identity)
        server = network.add_host("server", server_entity)
        return world, network, user, server

    def test_transact_roundtrip_and_latency(self):
        world, network, user, server = self._make()
        server.register("echo", lambda pkt: pkt.payload)
        reply = user.transact(server.address, "ping", "echo")
        assert reply == "ping"
        assert network.simulator.now == pytest.approx(2 * network.default_latency)

    def test_latency_override(self):
        world, network, user, server = self._make()
        server.register("echo", lambda pkt: "pong")
        network.set_latency(user.address, server.address, 0.1)
        user.transact(server.address, "ping", "echo")
        assert network.simulator.now == pytest.approx(0.2)

    def test_receiver_observes_sender_identity_and_payload(self):
        world, network, user, server = self._make()
        server.register("take", lambda pkt: None)
        value = LabeledValue("q", SENSITIVE_DATA, ALICE, "query")
        user.send(server.address, value, "take")
        network.run()
        labels = world.ledger.labels_of("Server")
        assert SENSITIVE_IDENTITY in labels and SENSITIVE_DATA in labels

    def test_missing_handler_raises(self):
        world, network, user, server = self._make()
        user.send(server.address, "x", "nope")
        with pytest.raises(KeyError):
            network.run()

    def test_duplicate_handler_rejected(self):
        _, _, user, server = self._make()
        server.register("p", lambda pkt: None)
        with pytest.raises(ValueError):
            server.register("p", lambda pkt: None)

    def test_unknown_destination(self):
        world, network, user, _ = self._make()
        user.send(Address("10.99.99.99"), "x", "p")
        with pytest.raises(KeyError):
            network.run()

    def test_wire_observer_sees_exterior_only(self):
        world, network, user, server = self._make()
        tap_entity = world.entity("Tap", "transit")
        network.add_observer(WireObserver(tap_entity))
        server.entity.grant_key("k")
        server.register("sealed", lambda pkt: None)
        value = LabeledValue("secret", SENSITIVE_DATA, ALICE, "v")
        user.send(server.address, Sealed.wrap("k", [value]), "sealed")
        network.run()
        tap_labels = world.ledger.labels_of("Tap")
        assert SENSITIVE_DATA not in tap_labels
        assert NONSENSITIVE_DATA in tap_labels
        assert SENSITIVE_IDENTITY in tap_labels  # source address metadata

    def test_scoped_observer_filters_by_prefix(self):
        world, network, user, server = self._make()
        tap_entity = world.entity("Tap", "transit")
        observer = WireObserver(tap_entity, prefixes=("192.168.99",))
        network.add_observer(observer)
        server.register("p", lambda pkt: None)
        user.send(server.address, "x", "p")
        network.run()
        assert len(observer.trace) == 0

    def test_trace_and_counters(self):
        world, network, user, server = self._make()
        server.register("echo", lambda pkt: "pong")
        user.transact(server.address, "ping", "echo")
        assert network.messages_delivered == 2
        assert len(network.trace) == 2
        assert network.bytes_delivered > 0

    def test_flow_tag_groups_sessions(self):
        world, network, user, server = self._make()
        server.register("p", lambda pkt: None)
        user.send(server.address, LabeledValue("a", SENSITIVE_DATA, ALICE, "a"), "p", flow="f1")
        user.send(server.address, LabeledValue("b", SENSITIVE_DATA, ALICE, "b"), "p", flow="f1")
        network.run()
        sessions = {obs.session for obs in world.ledger.by_entity("Server")}
        assert sessions == {"f1"}


class TestTransactDeadlineMarker:
    """The deadline no-op marker must not outlive a successful transact."""

    def _make(self):
        world = World()
        network = Network()
        user = network.add_host("user", world.entity("U", "u-org"))
        server = network.add_host("server", world.entity("S", "s-org"))
        server.register("echo", lambda pkt: pkt.payload)
        return network, user, server

    def test_success_path_cancels_marker(self):
        network, user, server = self._make()
        baseline = network.simulator.pending
        reply = user.transact(server.address, "ping", "echo")
        assert reply == "ping"
        # Success with the network-wide default (no timeout) leaves
        # nothing queued either way; arm an explicit deadline next.
        network.transact_timeout = 10.0
        reply = network.transact(user, server.address, "ping", "echo")
        assert reply == "ping"
        assert network.simulator.pending == baseline

    def test_retry_loop_does_not_accumulate_markers(self):
        network, user, server = self._make()
        network.transact_timeout = 5.0
        baseline = network.simulator.pending
        for _ in range(50):
            assert network.transact(user, server.address, "x", "echo") == "x"
        assert network.simulator.pending == baseline


class TestPacketIdRequired:
    """`packet_id` has no default: ids come from the owning network.

    The removed module-global fallback counter leaked state across
    runs whenever a packet was built outside a network, breaking
    same-process reproducibility.
    """

    def test_packet_without_id_rejected(self):
        from repro.net.packets import Packet

        with pytest.raises(TypeError):
            Packet(
                src=Address("10.0.0.1"),
                dst=Address("10.0.0.2"),
                protocol="p",
                payload="x",
                size=1,
            )

    def test_network_issued_ids_restart_per_network(self):
        world_a = World()
        net_a = Network()
        user_a = net_a.add_host("user", world_a.entity("U", "u"))
        server_a = net_a.add_host("server", world_a.entity("S", "s"))
        server_a.register("p", lambda pkt: None)
        first = net_a.send(user_a, server_a.address, "x", "p")

        world_b = World()
        net_b = Network()
        user_b = net_b.add_host("user", world_b.entity("U", "u"))
        server_b = net_b.add_host("server", world_b.entity("S", "s"))
        server_b.register("p", lambda pkt: None)
        second = net_b.send(user_b, server_b.address, "x", "p")

        assert first.packet_id == second.packet_id
