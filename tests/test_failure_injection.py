"""Failure injection: lossy links, curious relays, malformed traffic."""

import random

import pytest

from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA
from repro.core.values import LabeledValue, Sealed, Subject
from repro.mixnet import MIX_PROTOCOL, MixNode, MixReceiver, build_onion, make_message
from repro.net.network import Network

ALICE = Subject("alice")


class TestLossyLinks:
    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            Network(loss_rate=1.0)
        with pytest.raises(ValueError):
            Network(loss_rate=-0.1)

    def test_lossless_network_drops_nothing(self):
        network = Network(loss_rate=0.0)
        assert network.packets_dropped == 0

    def test_one_way_sends_tolerate_loss(self):
        """A lossy mix-net delivers only the surviving fraction."""
        world = World()
        network = Network(loss_rate=0.5, loss_rng=random.Random(7))
        mix = MixNode(
            network, world.entity("Mix", "mix-org"), "mix", "mk", batch_size=1
        )
        receiver = MixReceiver(network, world.entity("Recv", "recv-org"))
        sender = network.add_host(
            "s", world.entity("Sender", "dev", trusted_by_user=True)
        )
        total = 20
        for index in range(total):
            onion = build_onion(
                [("mk", mix.address)],
                receiver.key_id,
                receiver.address,
                make_message(f"m{index}", ALICE),
            )
            sender.send(mix.address, onion, MIX_PROTOCOL)
        network.run()
        delivered = len(receiver.received)
        assert 0 < delivered < total
        assert network.packets_dropped + delivered + mix.messages_mixed >= total

    def test_transact_surfaces_a_lost_request(self):
        """Synchronous calls fail loudly instead of hanging forever."""
        world = World()
        network = Network(loss_rate=0.99, loss_rng=random.Random(1))
        server = network.add_host("srv", world.entity("S", "s-org"))
        server.register("p", lambda pkt: "pong")
        client = network.add_host(
            "cli", world.entity("C", "c-dev", trusted_by_user=True)
        )
        with pytest.raises(RuntimeError):
            client.transact(server.address, "ping", "p")


class TestCuriousParties:
    def test_relay_cannot_open_foreign_envelopes(self):
        world = World()
        relay = world.entity("Relay", "relay-org")
        envelope = Sealed.wrap(
            "not-relays-key", [LabeledValue("x", SENSITIVE_DATA, ALICE, "v")]
        )
        with pytest.raises(PermissionError):
            relay.unseal(envelope)
        # Observation is still safe -- only the exterior registers.
        relay.observe(envelope)
        assert SENSITIVE_DATA not in world.ledger.labels_of("Relay")

    def test_mix_rejects_garbage_payloads(self):
        world = World()
        network = Network()
        mix = MixNode(network, world.entity("Mix", "m-org"), "mix", "mk", batch_size=1)
        sender = network.add_host("s", world.entity("S", "dev", trusted_by_user=True))
        sender.send(
            mix.address,
            Sealed.wrap("mk", ["not a routing layer"]),
            MIX_PROTOCOL,
        )
        with pytest.raises(TypeError):
            network.run()
