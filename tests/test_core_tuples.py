"""Unit tests for knowledge cells/tables and the rendering rules."""

from repro.core.labels import (
    Facet,
    NONSENSITIVE_DATA,
    NONSENSITIVE_HUMAN_IDENTITY,
    NONSENSITIVE_IDENTITY,
    PARTIAL_SENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_HUMAN_IDENTITY,
    SENSITIVE_IDENTITY,
    SENSITIVE_NETWORK_IDENTITY,
)
from repro.core.ledger import Ledger
from repro.core.tuples import KnowledgeTable, cell_from_labels, facets_in_ledger
from repro.core.values import LabeledValue, Subject

ALICE = Subject("alice")


class TestCellRules:
    def test_empty_labels_render_anonymous_opaque(self):
        cell = cell_from_labels([])
        assert cell.render() == "(△, ⊙)"

    def test_identity_mark_is_max_sensitivity(self):
        cell = cell_from_labels([NONSENSITIVE_IDENTITY, SENSITIVE_IDENTITY])
        assert cell.render() == "(▲, ⊙)"

    def test_data_mark_is_max_rank(self):
        assert cell_from_labels([NONSENSITIVE_DATA]).render() == "(△, ⊙)"
        assert cell_from_labels([PARTIAL_SENSITIVE_DATA, NONSENSITIVE_DATA]).render() == "(△, ⊙/●)"
        assert (
            cell_from_labels(
                [PARTIAL_SENSITIVE_DATA, SENSITIVE_DATA, NONSENSITIVE_DATA]
            ).render()
            == "(△, ●)"
        )

    def test_paper_style_full_cell(self):
        cell = cell_from_labels([SENSITIVE_IDENTITY, SENSITIVE_DATA])
        assert cell.render() == "(▲, ●)"
        assert cell.is_coupled

    def test_partial_data_with_identity_is_still_coupled(self):
        cell = cell_from_labels([SENSITIVE_IDENTITY, PARTIAL_SENSITIVE_DATA])
        assert cell.is_coupled

    def test_anonymous_with_data_is_not_coupled(self):
        cell = cell_from_labels([NONSENSITIVE_IDENTITY, SENSITIVE_DATA])
        assert not cell.is_coupled

    def test_faceted_cell_renders_in_paper_order(self):
        cell = cell_from_labels(
            [SENSITIVE_HUMAN_IDENTITY, SENSITIVE_DATA],
            facets=(Facet.HUMAN, Facet.NETWORK),
        )
        assert cell.render() == "(▲_H, △_N, ●)"

    def test_faceted_cell_with_network_knowledge(self):
        cell = cell_from_labels(
            [SENSITIVE_NETWORK_IDENTITY, NONSENSITIVE_DATA],
            facets=(Facet.HUMAN, Facet.NETWORK),
        )
        assert cell.render() == "(△_H, ▲_N, ⊙)"


class TestKnowledgeTable:
    def _table(self):
        rows = {
            "Sender": cell_from_labels([SENSITIVE_IDENTITY, SENSITIVE_DATA]),
            "Mix 1": cell_from_labels([SENSITIVE_IDENTITY, NONSENSITIVE_DATA]),
        }
        return KnowledgeTable(rows=rows, facets=(Facet.GENERIC,), title="demo")

    def test_as_mapping(self):
        assert self._table().as_mapping() == {
            "Sender": "(▲, ●)",
            "Mix 1": "(▲, ⊙)",
        }

    def test_render_contains_all_cells_and_title(self):
        text = self._table().render()
        assert "demo" in text and "(▲, ●)" in text and "Mix 1" in text

    def test_entities_order(self):
        assert self._table().entities() == ("Sender", "Mix 1")


class TestFacetsInLedger:
    def test_generic_only(self):
        ledger = Ledger()
        ledger.record(
            "E", "org", LabeledValue("x", SENSITIVE_IDENTITY, ALICE, "id")
        )
        assert facets_in_ledger(ledger) == (Facet.GENERIC,)

    def test_faceted_run_drops_generic_shape(self):
        ledger = Ledger()
        ledger.record(
            "E", "org", LabeledValue("x", SENSITIVE_HUMAN_IDENTITY, ALICE, "id")
        )
        ledger.record(
            "E", "org", LabeledValue("y", SENSITIVE_NETWORK_IDENTITY, ALICE, "id")
        )
        assert facets_in_ledger(ledger) == (Facet.HUMAN, Facet.NETWORK)

    def test_empty_ledger_defaults_to_generic(self):
        assert facets_in_ledger(Ledger()) == (Facet.GENERIC,)
