"""Edge cases for ``Simulator.run_until`` / ``run_until_idle``.

The re-entrant pump under :meth:`Network.transact` leans on subtle
invariants -- ``max_events`` cutoffs, zero-delay ordering, ``advance``
interleaving -- that deserve direct coverage.
"""

import pytest

from repro.net.sim import Simulator


class TestMaxEventsCutoff:
    def test_run_until_idle_raises_on_event_storm(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.001, reschedule)

        sim.schedule(0.001, reschedule)
        with pytest.raises(RuntimeError, match="quiesce"):
            sim.run_until_idle(max_events=50)
        # The budget is exact: max_events steps run, never one more.
        assert sim.events_processed == 50

    def test_run_until_idle_error_reports_pending_count(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.001, reschedule)
            sim.schedule(0.001, reschedule)  # queue grows each step

        sim.schedule(0.001, reschedule)
        with pytest.raises(RuntimeError, match=r"\d+ still pending"):
            sim.run_until_idle(max_events=10)

    def test_run_until_raises_when_predicate_never_holds(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.001, reschedule)

        sim.schedule(0.001, reschedule)
        with pytest.raises(RuntimeError, match="never satisfied"):
            sim.run_until(lambda: False, max_events=50)
        # Exactly the budget, despite the predicate never holding.
        assert sim.events_processed == 50

    def test_run_until_error_reports_pending_count(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.001, reschedule)

        sim.schedule(0.001, reschedule)
        with pytest.raises(RuntimeError, match=r"\d+ still pending"):
            sim.run_until(lambda: False, max_events=5)

    def test_run_until_idle_exactly_at_limit_is_fine(self):
        sim = Simulator()
        for index in range(10):
            sim.schedule(index * 0.01, lambda: None)
        assert sim.run_until_idle(max_events=10) == 10

    def test_run_until_succeeding_exactly_at_limit_is_fine(self):
        sim = Simulator()
        hits = []
        for index in range(10):
            sim.schedule(index * 0.01, lambda: hits.append(None))
        sim.run_until(lambda: len(hits) == 10, max_events=10)
        assert sim.events_processed == 10


class TestCancelableMarkers:
    def test_canceled_marker_leaves_pending_immediately(self):
        sim = Simulator()
        marker = sim.marker_at(1.0)
        assert sim.pending == 1
        sim.cancel(marker)
        assert sim.pending == 0

    def test_canceled_marker_not_counted_as_processed(self):
        sim = Simulator()
        marker = sim.marker_at(1.0)
        sim.schedule(2.0, lambda: None)
        sim.cancel(marker)
        assert sim.run_until_idle() == 1
        assert sim.events_processed == 1
        assert sim.now == pytest.approx(2.0)

    def test_uncanceled_marker_fires_and_counts(self):
        sim = Simulator()
        sim.marker_at(1.0)
        assert sim.run_until_idle() == 1
        assert sim.now == pytest.approx(1.0)

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        marker = sim.marker_at(1.0)
        sim.run_until_idle()
        sim.cancel(marker)  # too late: must not corrupt accounting
        assert sim.pending == 0
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 1
        assert sim.run_until_idle() == 1

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        marker = sim.marker_at(1.0)
        sim.cancel(marker)
        sim.cancel(marker)
        assert sim.pending == 0
        assert sim.run_until_idle() == 0

    def test_canceled_marker_skipped_without_running_hooks(self):
        sim = Simulator()
        seen = []
        sim.add_hook(lambda time, callback: seen.append(time))
        marker = sim.marker_at(1.0)
        sim.schedule(2.0, lambda: None)
        sim.cancel(marker)
        sim.run_until_idle()
        assert seen == [pytest.approx(2.0)]

    def test_run_until_checks_predicate_before_pumping(self):
        sim = Simulator()
        # Predicate already true: no events needed, none consumed.
        sim.schedule(0.1, lambda: None)
        sim.run_until(lambda: True)
        assert sim.pending == 1
        assert sim.events_processed == 0


class TestZeroDelayOrdering:
    def test_zero_delay_events_run_fifo_at_constant_time(self):
        sim = Simulator()
        order = []
        for index in range(5):
            sim.schedule(0.0, lambda i=index: order.append(i))
        sim.run_until_idle()
        assert order == [0, 1, 2, 3, 4]
        assert sim.now == 0.0

    def test_zero_delay_chain_spawned_during_pump(self):
        sim = Simulator()
        order = []

        def spawn(depth):
            order.append(depth)
            if depth < 3:
                sim.schedule(0.0, lambda: spawn(depth + 1))

        sim.schedule(0.0, lambda: spawn(0))
        sim.run_until_idle()
        assert order == [0, 1, 2, 3]
        assert sim.now == 0.0

    def test_zero_delay_interleaves_after_already_queued_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(0.0, lambda: order.append("a"))
        sim.schedule(0.0, lambda: (order.append("b"), sim.schedule(0.0, lambda: order.append("d"))))
        sim.schedule(0.0, lambda: order.append("c"))
        sim.run_until_idle()
        # The event spawned mid-pump queues behind earlier same-time events.
        assert order == ["a", "b", "c", "d"]


class TestAdvanceInterleaving:
    def test_advance_moves_clock_without_events(self):
        sim = Simulator()
        sim.advance(1.5)
        assert sim.now == pytest.approx(1.5)
        assert sim.events_processed == 0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            Simulator().advance(-0.1)

    def test_schedule_after_advance_is_relative_to_new_now(self):
        sim = Simulator()
        times = []
        sim.advance(1.0)
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [pytest.approx(1.5)]

    def test_advance_between_pumps_keeps_queue_consistent(self):
        sim = Simulator()
        times = []
        sim.schedule(0.1, lambda: times.append(sim.now))
        sim.schedule(0.9, lambda: times.append(sim.now))
        sim.run_until(lambda: len(times) == 1)
        sim.advance(0.5)  # clock now 0.6, ahead of nothing pending before 0.9
        sim.run_until_idle()
        assert times == [pytest.approx(0.1), pytest.approx(0.9)]

    def test_advance_past_pending_event_raises_on_pump(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.advance(0.5)  # clock jumps past the queued event's time
        with pytest.raises(RuntimeError, match="backwards"):
            sim.run_until_idle()

    def test_advance_inside_callback_affects_later_events(self):
        sim = Simulator()
        times = []
        sim.schedule(0.1, lambda: (times.append(sim.now), sim.advance(0.2)))
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [pytest.approx(0.1), pytest.approx(0.5)]
        assert sim.now == pytest.approx(0.5)
