"""Unit tests for the PGPP location-tracking adversary."""

import pytest

from repro.pgpp import (
    TrajectoryLinker,
    extract_epoch_tracks,
    run_pgpp,
    tracking_accuracy,
)
from repro.pgpp.tracking import EpochTrack, _epoch_of


class TestEpochParsing:
    def test_rotating_imsi_epochs(self):
        assert _epoch_of("pgpp-imsi-epoch-0-slot-3") == 0
        assert _epoch_of("pgpp-imsi-epoch-7") == 7

    def test_permanent_imsis_have_no_epoch(self):
        assert _epoch_of("imsi-90170-1001") is None


class TestTrackExtraction:
    def test_tracks_group_by_epoch_and_imsi(self):
        log = [
            (0.0, "pgpp-imsi-epoch-0-slot-0", "cell-1"),
            (1.0, "pgpp-imsi-epoch-0-slot-0", "cell-2"),
            (2.0, "pgpp-imsi-epoch-1-slot-0", "cell-2"),
        ]
        tracks = extract_epoch_tracks(log)
        assert len(tracks) == 2
        assert tracks[0].cells == ("cell-1", "cell-2")
        assert tracks[0].first_cell == "cell-1" and tracks[0].last_cell == "cell-2"

    def test_events_sorted_by_time_within_track(self):
        log = [
            (5.0, "pgpp-imsi-epoch-0-slot-0", "cell-3"),
            (1.0, "pgpp-imsi-epoch-0-slot-0", "cell-1"),
        ]
        (track,) = extract_epoch_tracks(log)
        assert track.cells == ("cell-1", "cell-3")


class TestLinker:
    def test_perfect_continuity_is_linked_correctly(self):
        """Two users far apart: the linker must pair them correctly."""
        log = [
            (0.0, "pgpp-imsi-epoch-0-slot-0", "cell-0"),
            (0.0, "pgpp-imsi-epoch-0-slot-1", "cell-9"),
            (1.0, "pgpp-imsi-epoch-1-slot-1", "cell-0"),
            (1.0, "pgpp-imsi-epoch-1-slot-0", "cell-9"),
        ]
        chains = TrajectoryLinker().link(extract_epoch_tracks(log))
        assert chains["pgpp-imsi-epoch-0-slot-0"] == [
            "pgpp-imsi-epoch-0-slot-0",
            "pgpp-imsi-epoch-1-slot-1",
        ]
        assert chains["pgpp-imsi-epoch-0-slot-1"] == [
            "pgpp-imsi-epoch-0-slot-1",
            "pgpp-imsi-epoch-1-slot-0",
        ]

    def test_empty_log(self):
        assert TrajectoryLinker().link([]) == {}


class TestAccuracy:
    def test_perfect_chains_score_one(self):
        truth = {"a0": ["a0", "a1"], "b0": ["b0", "b1"]}
        assert tracking_accuracy(truth, truth) == 1.0

    def test_swapped_chains_score_zero(self):
        truth = {"a0": ["a0", "a1"], "b0": ["b0", "b1"]}
        guess = {"a0": ["a0", "b1"], "b0": ["b0", "a1"]}
        assert tracking_accuracy(guess, truth) == 0.0

    def test_no_links_score_is_vacuous_one(self):
        assert tracking_accuracy({}, {"a0": ["a0"]}) == 1.0


class TestEndToEnd:
    def test_imsi_truth_matches_history_shape(self):
        run = run_pgpp(users=3, epochs=3)
        truth = run.imsi_truth()
        assert len(truth) == 3
        assert all(len(chain) == 3 for chain in truth.values())

    def test_small_population_is_trackable_large_is_not(self):
        import statistics

        def mean_accuracy(users):
            values = []
            for seed in range(4):
                run = run_pgpp(users=users, cells=6, steps=4, epochs=3, seed=seed)
                chains = TrajectoryLinker().link(
                    extract_epoch_tracks(run.core.mobility_log)
                )
                values.append(tracking_accuracy(chains, run.imsi_truth()))
            return statistics.mean(values)

        assert mean_accuracy(2) > mean_accuracy(12)
