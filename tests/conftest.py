"""Shared pytest configuration: fast, deterministic hypothesis runs.

Two profiles, both derandomized so a failure is a real regression and
not a lottery draw:

- ``repro`` (default): 25 examples per property, quick local loops.
- ``ci``: 75 examples, selected via ``HYPOTHESIS_PROFILE=ci`` so the
  pinned-seed battery in CI digs deeper without slowing local runs.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.register_profile(
    "ci",
    max_examples=75,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
