"""Shared pytest configuration: fast, deterministic hypothesis runs."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")
