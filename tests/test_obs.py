"""Tests for ``repro.obs``: tracing, metrics, exporters, instrumentation."""

import json

import pytest

from repro import obs
from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA
from repro.core.values import LabeledValue, Subject
from repro.net.network import Network
from repro.net.sim import Simulator
from repro.obs import export as obs_export
from repro.obs import runtime
from repro.obs.metrics import Histogram, MetricsRegistry, get_registry
from repro.obs.tracing import NOOP_SPAN, Tracer, get_tracer

ALICE = Subject("alice")


class TestRuntimeGate:
    def test_disabled_by_default(self):
        assert runtime.ENABLED is False
        assert obs.is_enabled() is False

    def test_enable_disable(self):
        obs.enable()
        try:
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert not obs.is_enabled()


class TestNoopFastPath:
    def test_default_tracer_returns_noop_when_disabled(self):
        tracer = Tracer()  # follows the global gate, which is off
        span = tracer.span("anything", sim_time=1.0, foo="bar")
        assert span is NOOP_SPAN
        with span as inner:
            inner.set("key", "value").end_sim(2.0)
        assert tracer.spans == []
        assert NOOP_SPAN.attributes == {}

    def test_noop_span_is_reentrant(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert outer is inner is NOOP_SPAN
        assert len(tracer) == 0

    def test_disabled_network_records_no_spans_or_metrics(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        previous_tracer = obs.set_tracer(tracer)
        previous_registry = obs.set_registry(registry)
        try:
            network = _request_response_network()
            reply = network["client"].transact(
                network["server"].address, "ping", "echo"
            )
            assert reply == "pong"
        finally:
            obs.set_tracer(previous_tracer)
            obs.set_registry(previous_registry)
        assert tracer.spans == []
        assert len(registry) == 0


class TestTracer:
    def test_spans_nest_via_with_blocks(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", sim_time=0.0) as outer:
            with tracer.span("inner", sim_time=0.5) as inner:
                inner.end_sim(1.0)
            outer.end_sim(2.0)
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.spans[0].parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.sim_duration == pytest.approx(0.5)
        assert outer.wall_seconds >= inner.wall_seconds

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as a:
            pass
        with tracer.span("b"):
            with tracer.span("c", parent=a) as c:
                pass
        assert c.parent_id == a.span_id

    def test_explicit_none_parent_makes_root(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b", parent=None) as b:
                pass
        assert b.parent_id is None

    def test_attributes_and_by_name(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x", color="red") as span:
            span.set("count", 3)
        assert tracer.by_name("x")[0].attributes == {"color": "red", "count": 3}

    def test_reset(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x"):
            pass
        tracer.reset()
        assert len(tracer) == 0


class TestMetrics:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        assert registry.counter_value("a") == 3
        assert registry.counter_value("missing") == 0
        with pytest.raises(ValueError):
            registry.counter("a").inc(-1)

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(7)
        assert registry.gauge("depth").value == 7

    def test_histogram_bucketing(self):
        histogram = Histogram("h", buckets=(10, 100))
        for value in (5, 10, 11, 250):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=10, <=100, overflow
        assert histogram.count == 4
        assert histogram.min == 5 and histogram.max == 250
        assert histogram.mean == pytest.approx((5 + 10 + 11 + 250) / 4)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1))

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h", (1,)).observe(0.5)
        rows = registry.snapshot()
        assert [row["type"] for row in rows] == ["counter", "gauge", "histogram"]
        registry.reset()
        assert len(registry) == 0


class TestCapture:
    def test_capture_installs_and_restores(self):
        before_tracer, before_registry = get_tracer(), get_registry()
        assert not runtime.ENABLED
        with obs.capture() as (tracer, registry):
            assert runtime.ENABLED
            assert get_tracer() is tracer
            assert get_registry() is registry
        assert not runtime.ENABLED
        assert get_tracer() is before_tracer
        assert get_registry() is before_registry

    def test_capture_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert not runtime.ENABLED


def _request_response_network():
    """A two-host network serving one ``echo`` protocol."""
    world = World()
    network = Network()
    client = network.add_host("client", world.entity("Client", "client-org"))
    server = network.add_host("server", world.entity("Server", "server-org"))
    server.register("echo", lambda packet: "pong")
    return {"world": world, "network": network, "client": client, "server": server}


class TestNetworkInstrumentation:
    def test_transact_produces_nested_spans(self):
        with obs.capture() as (tracer, registry):
            net = _request_response_network()
            reply = net["client"].transact(net["server"].address, "ping", "echo")
        assert reply == "pong"
        names = [s.name for s in tracer.spans]
        assert names.count("transact") == 1
        assert names.count("deliver") == 2  # request + response
        transact = tracer.by_name("transact")[0]
        for deliver in tracer.by_name("deliver"):
            # response delivery parents to the request delivery, which
            # parents to transact: all under the transact ancestor.
            node = deliver
            by_id = {s.span_id: s for s in tracer.spans}
            while node.parent_id is not None and node.name != "transact":
                node = by_id[node.parent_id]
            assert node is transact
        # Sim-time bookkeeping: transact covers both deliveries.
        simulator = net["network"].simulator
        assert transact.sim_end == pytest.approx(simulator.now)
        for deliver in tracer.by_name("deliver"):
            assert transact.sim_start <= deliver.sim_start
            assert deliver.sim_end <= transact.sim_end

    def test_one_way_send_gets_transact_wrapper(self):
        with obs.capture() as (tracer, _):
            net = _request_response_network()
            sink = []
            net["server"].register("oneway", lambda packet: sink.append(packet) and None)
            net["client"].send(net["server"].address, "fire", "oneway")
            net["network"].run()
        deliver = tracer.by_name("deliver")[0]
        wrapper = tracer.by_name("transact")[0]
        assert deliver.parent_id == wrapper.span_id
        assert wrapper.attributes.get("one_way") is True

    def test_counters_and_histograms(self):
        with obs.capture() as (_, registry):
            net = _request_response_network()
            net["client"].transact(net["server"].address, "ping", "echo")
        assert registry.counter_value("net.messages") == 2
        assert registry.counter_value("net.bytes") > 0
        assert registry.histogram("net.packet_bytes").count == 2
        assert registry.histogram("net.hop_latency").count == 2
        assert registry.counter_value("sim.events") == 2

    def test_mixnet_deliveries_all_nest_under_transact(self):
        from repro.mixnet import run_mixnet

        with obs.capture() as (tracer, _):
            run = run_mixnet(mixes=2, senders=3)
        by_id = {s.span_id: s for s in tracer.spans}
        delivers = tracer.by_name("deliver")
        assert delivers, "mixnet run produced no delivery spans"
        for deliver in delivers:
            node = deliver
            while node.parent_id is not None:
                node = by_id[node.parent_id]
                if node.name == "transact":
                    break
            assert node.name == "transact"
            assert deliver.sim_end <= run.network.simulator.now


class TestLedgerInstrumentation:
    def test_observation_counters(self):
        with obs.capture() as (_, registry):
            world = World()
            entity = world.entity("E", "org")
            value = LabeledValue("secret", SENSITIVE_DATA, ALICE, "query")
            entity.observe(value, channel="wire")
            entity.observe(value, channel="message")
        assert registry.counter_value("ledger.observations") == 2
        assert registry.counter_value("ledger.observations.wire") == 1
        assert registry.counter_value("ledger.observations.message") == 1


class TestSimulatorInstrumentation:
    def test_event_hooks_fire_per_event(self):
        sim = Simulator()
        seen = []
        sim.add_hook(lambda time, callback: seen.append(time))
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        sim.run_until_idle()
        assert seen == [pytest.approx(0.1), pytest.approx(0.2)]
        sim.remove_hook(sim._hooks[0])
        assert sim._hooks == []

    def test_events_counter_only_when_enabled(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run_until_idle()
        with obs.capture() as (_, registry):
            sim.schedule(0.1, lambda: None)
            sim.run_until_idle()
        assert registry.counter_value("sim.events") == 1


class TestExport:
    def _traced_run(self):
        with obs.capture() as (tracer, registry):
            net = _request_response_network()
            net["client"].transact(net["server"].address, "ping", "echo")
        return tracer, registry

    def test_jsonl_is_valid_and_typed(self):
        tracer, registry = self._traced_run()
        text = obs_export.to_jsonl(tracer, registry)
        rows = [json.loads(line) for line in text.splitlines()]
        types = {row["type"] for row in rows}
        assert "span" in types and "counter" in types and "histogram" in types
        span_rows = [row for row in rows if row["type"] == "span"]
        ids = {row["span_id"] for row in span_rows}
        for row in span_rows:
            assert row["parent_id"] is None or row["parent_id"] in ids
            assert row["wall_ms"] >= 0

    def test_write_jsonl_counts_lines(self, tmp_path):
        tracer, registry = self._traced_run()
        path = tmp_path / "spans.jsonl"
        lines = obs_export.write_jsonl(str(path), tracer, registry)
        assert lines == len(path.read_text().splitlines())
        assert lines == len(tracer.spans) + len(registry.snapshot())

    def test_render_span_tree_indents_children(self):
        tracer, _ = self._traced_run()
        tree = obs_export.render_span_tree(tracer.spans)
        lines = tree.splitlines()
        assert lines[0].startswith("transact")
        assert any(line.startswith("  deliver") for line in lines)
        assert any(line.startswith("    deliver") for line in lines)

    def test_empty_export(self, tmp_path):
        tracer = Tracer(enabled=True)
        path = tmp_path / "empty.jsonl"
        assert obs_export.write_jsonl(str(path), tracer) == 0
        assert path.read_text() == ""
        assert obs_export.render_span_tree([]) == ""


class TestMetricsEdgeCases:
    def test_empty_registry_snapshot_and_export(self):
        registry = MetricsRegistry()
        assert registry.snapshot() == []
        assert len(registry) == 0
        tracer = Tracer(enabled=True)
        assert obs_export.to_jsonl(tracer, registry) == ""

    def test_histogram_value_exactly_on_bucket_boundary(self):
        """A value equal to a bound lands in that bound's bucket."""
        histogram = Histogram("sizes", buckets=(10, 100))
        histogram.observe(10)
        histogram.observe(100)
        histogram.observe(101)
        assert histogram.counts == [1, 1, 1]
        assert histogram.min == 10 and histogram.max == 101

    def test_counter_merge_across_workers(self):
        """Per-worker counter snapshots fold into one totals mapping,

        the way ``--jobs`` workers report back to the parent process.
        """
        from types import SimpleNamespace

        from repro.cli import _fold_counters

        parts = [
            SimpleNamespace(counters={"net.packets_sent": 3, "obs.records": 7}),
            SimpleNamespace(counters={"net.packets_sent": 5}),
            SimpleNamespace(counters={}),
        ]
        assert _fold_counters(parts) == {
            "net.packets_sent": 8,
            "obs.records": 7,
        }
        assert _fold_counters([]) == {}


def _strip_wall_clock(text):
    """Drop host-clock fields so runs can be compared byte-for-byte."""
    rows = []
    for line in text.splitlines():
        row = json.loads(line)
        row.pop("wall_ms", None)
        rows.append(json.dumps(row, ensure_ascii=False, sort_keys=True))
    return "\n".join(rows)


class TestDeterminism:
    def test_identical_runs_export_identical_jsonl(self):
        """Two identical demo runs yield byte-identical span, metric,

        and provenance JSONL once wall-clock fields are stripped.
        Packet/request/span ids are per-instance counters, so nothing
        leaks between runs.
        """
        from repro.mixnet import run_mixnet
        from repro.obs.provenance import build_provenance

        exports = []
        for _ in range(2):
            with obs.capture() as (tracer, registry):
                run = run_mixnet(mixes=2, senders=3)
            graph = build_provenance(run, tracer)
            exports.append(obs_export.to_jsonl(tracer, registry, graph))
        assert _strip_wall_clock(exports[0]) == _strip_wall_clock(exports[1])
        # The comparison is not vacuous: the export carries all three
        # record families.
        types = {json.loads(line)["type"] for line in exports[0].splitlines()}
        assert {"span", "counter", "provenance"} <= types
