"""System tests: T5, Pretty Good Phone Privacy (paper section 3.2.3)."""

import pytest

from repro.pgpp import (
    BASELINE_TABLE_T5,
    PAPER_TABLE_T5,
    run_baseline_cellular,
    run_pgpp,
)


@pytest.fixture(scope="module")
def pgpp_run():
    return run_pgpp()


class TestBaseline:
    def test_traditional_core_couples_everything(self):
        run = run_baseline_cellular()
        assert run.table().as_mapping() == BASELINE_TABLE_T5
        verdict = run.analyzer.verdict()
        assert not verdict.decoupled
        assert any(v.entity == "NGC" for v in verdict.violations)

    def test_mobility_log_is_a_named_location_trace(self):
        run = run_baseline_cellular(users=2, steps=3)
        assert run.mobility_entries() == 2 * 3
        imsis = {imsi for _, imsi, _ in run.core.mobility_log}
        assert all(imsi.startswith("imsi-") for imsi in imsis)


class TestPgpp:
    def test_derived_table_matches_the_paper(self, pgpp_run):
        assert pgpp_run.table().as_mapping() == PAPER_TABLE_T5

    def test_system_is_decoupled(self, pgpp_run):
        assert pgpp_run.analyzer.verdict().decoupled

    def test_attaches_succeed(self, pgpp_run):
        assert pgpp_run.attaches == 3 * 4 * 2  # users x steps x epochs

    def test_core_log_shows_only_rotating_pseudonyms(self, pgpp_run):
        imsis = {imsi for _, imsi, _ in pgpp_run.core.mobility_log}
        assert all(imsi.startswith("pgpp-imsi-") for imsi in imsis)

    def test_gateway_never_saw_location(self, pgpp_run):
        for obs in pgpp_run.world.ledger.by_entity("PGPP-GW"):
            assert obs.description != "location fix"

    def test_core_never_saw_billing(self, pgpp_run):
        for obs in pgpp_run.world.ledger.by_entity("NGC"):
            assert obs.description != "billing identity"


class TestCollusion:
    def test_out_of_band_purchase_defeats_even_collusion(self):
        run = run_pgpp(purchase_over_cellular=False)
        assert run.analyzer.minimal_recoupling_coalitions(max_size=3) == ()

    def test_purchase_over_cellular_gives_colluders_a_handle(self):
        run = run_pgpp(purchase_over_cellular=True, epochs=2)
        coalitions = run.analyzer.minimal_recoupling_coalitions(max_size=2)
        assert frozenset({"operator", "pgpp-org"}) in coalitions
        # The table still matches: collusion is a *pooling* attack, not
        # something any single column reveals.
        assert run.table().as_mapping() == PAPER_TABLE_T5


class TestTokens:
    def test_token_reuse_across_epochs_is_rejected(self, pgpp_run):
        assert pgpp_run.gateway is not None
        token_count = pgpp_run.gateway.tokens_sold
        assert token_count == 3 * 2  # one per user per epoch

    def test_bad_credentials_rejected(self):
        from repro.pgpp.gateway import AttachToken

        run = run_pgpp(users=1, epochs=1, steps=1)
        ue = run.ues[0]
        station_host = run.network.host_at(run.core.address)
        forged = AttachToken(serial=b"\x00" * 16, signature=12345)
        result = ue.attach(_first_station(run), credential=forged)
        assert not result.accepted


class TestImsiModes:
    def test_identical_mode_shares_one_imsi_per_epoch(self):
        run = run_pgpp(users=3, epochs=1, imsi_mode="identical")
        imsis = {imsi for _, imsi, _ in run.core.mobility_log}
        assert len(imsis) == 1

    def test_shuffled_mode_distinct_slots(self):
        run = run_pgpp(users=3, epochs=1, imsi_mode="shuffled")
        imsis = {imsi for _, imsi, _ in run.core.mobility_log}
        assert len(imsis) == 3

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            run_pgpp(imsi_mode="bogus")


def _first_station(run):
    """Recover a base station from the network by its host name."""
    for address, host in run.network._hosts.items():
        if host.name.startswith("cell:"):
            class _Shim:
                cell_id = host.name.split(":", 1)[1]
                address = host.address
            return _Shim()
    raise AssertionError("no base station found")
