"""Unit and property tests for the degrees-of-decoupling metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    DegreePoint,
    DegreeSweep,
    anonymity_bits,
    anonymity_set_size,
    entropy_bits,
    normalized_entropy,
    uniformity_l1_distance,
)


class TestEntropy:
    def test_uniform_distribution_hits_log2_n(self):
        assert entropy_bits([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_point_mass_has_zero_entropy(self):
        assert entropy_bits({"a": 1.0}) == 0.0

    def test_accepts_counts_not_just_probabilities(self):
        assert entropy_bits([10, 10]) == pytest.approx(1.0)

    def test_empty_and_zero_distributions(self):
        assert entropy_bits([]) == 0.0
        assert entropy_bits([0, 0]) == 0.0

    def test_degenerate_mappings_are_defined(self):
        assert entropy_bits({}) == 0.0
        assert entropy_bits({"a": 0.0, "b": 0.0}) == 0.0
        assert not math.isnan(entropy_bits({"a": 0.0}))

    def test_denormal_weight_does_not_raise(self):
        # 5e-324 / 2.0 underflows to exactly 0.0; log2(0.0) must not fire.
        assert entropy_bits({"a": 5e-324, "b": 2.0}) == pytest.approx(0.0)

    def test_negative_weights_are_ignored(self):
        assert entropy_bits({"a": -1.0, "b": 2.0}) == 0.0
        assert entropy_bits([-1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_normalized_entropy_degenerate_inputs(self):
        assert normalized_entropy([]) == 0.0
        assert normalized_entropy([0, 0]) == 0.0
        assert normalized_entropy({"a": 1.0}) == 0.0
        assert normalized_entropy({}) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=10))
    def test_entropy_bounded_by_log2_n(self, weights):
        assert 0 <= entropy_bits(weights) <= math.log2(len(weights)) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=2, max_size=10))
    def test_normalized_entropy_in_unit_interval(self, weights):
        assert 0 <= normalized_entropy(weights) <= 1 + 1e-9

    def test_normalized_entropy_of_uniform_is_one(self):
        assert normalized_entropy([5, 5, 5]) == pytest.approx(1.0)


class TestUniformity:
    def test_perfectly_even_counts_have_zero_distance(self):
        assert uniformity_l1_distance({"a": 3, "b": 3, "c": 3}) == pytest.approx(0.0)

    def test_all_mass_on_one_is_worst_case(self):
        distance = uniformity_l1_distance({"a": 9, "b": 0, "c": 0})
        assert distance == pytest.approx(2 * (1 - 1 / 3))

    def test_empty_counts(self):
        assert uniformity_l1_distance({}) == 0.0


class TestAnonymitySet:
    def test_counts_distinct_candidates(self):
        assert anonymity_set_size(["u1", "u2", "u1"]) == 2

    def test_degenerate_populations_are_defined(self):
        assert anonymity_set_size([]) == 0
        assert anonymity_set_size(["only"]) == 1

    def test_anonymity_bits_of_sizes(self):
        assert anonymity_bits(8) == pytest.approx(3.0)
        assert anonymity_bits(1) == 0.0
        assert anonymity_bits(0) == 0.0

    def test_anonymity_bits_of_candidate_iterables(self):
        assert anonymity_bits(["u1", "u2", "u1", "u3", "u4"]) == pytest.approx(2.0)
        assert anonymity_bits([]) == 0.0
        assert anonymity_bits(["only"]) == 0.0

    def test_mixnet_run_uses_core_helpers(self):
        from repro.mixnet import run_mixnet

        run = run_mixnet(mixes=2, senders=4)
        assert run.anonymity_set_size() == min(
            4, run.mixes[0].batch_size
        )
        assert run.anonymity_bits() == anonymity_bits(run.anonymity_set_size())


class TestDegreeSweep:
    def _sweep(self, resistances, latencies):
        sweep = DegreeSweep(name="test")
        for degree, (resistance, latency) in enumerate(
            zip(resistances, latencies), start=1
        ):
            sweep.add(
                DegreePoint(
                    degree=degree,
                    collusion_resistance=resistance,
                    latency=latency,
                )
            )
        return sweep

    def test_monotone_checks_pass_for_well_behaved_sweep(self):
        sweep = self._sweep([1, 2, 3], [0.1, 0.2, 0.3])
        assert sweep.privacy_is_monotone()
        assert sweep.cost_is_monotone()
        assert sweep.has_diminishing_returns()

    def test_privacy_regression_detected(self):
        sweep = self._sweep([2, 1, 3], [0.1, 0.2, 0.3])
        assert not sweep.privacy_is_monotone()

    def test_cost_regression_detected(self):
        sweep = self._sweep([1, 2, 3], [0.3, 0.2, 0.1])
        assert not sweep.cost_is_monotone()

    def test_accelerating_returns_detected(self):
        sweep = self._sweep([1, 2, 5], [0.1, 0.2, 0.3])
        assert not sweep.has_diminishing_returns()

    def test_render_has_one_row_per_degree(self):
        sweep = self._sweep([1, 2], [0.1, 0.2])
        lines = sweep.render().splitlines()
        assert len(lines) == 4  # name + header + 2 rows

    def test_privacy_per_cost(self):
        point = DegreePoint(degree=1, collusion_resistance=4, latency=2.0)
        assert point.privacy_per_cost() == pytest.approx(2.0)
        free = DegreePoint(degree=1, collusion_resistance=4, latency=0.0)
        assert free.privacy_per_cost() == math.inf
