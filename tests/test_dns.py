"""Unit tests for the DNS substrate: zones, resolver, cache, striping."""

import random

import pytest

from repro.core.entities import World
from repro.core.labels import PARTIAL_SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.dns.cache import DnsCache
from repro.dns.messages import DnsAnswer, make_query
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.striping import (
    HashPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    StripingStub,
)
from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
from repro.net.network import Network

ALICE = Subject("alice")


def _setup(num_resolvers=1):
    world = World()
    network = Network()
    registry = ZoneRegistry()
    zone = Zone("example.com")
    zone.add("www.example.com", "93.184.216.34")
    zone.add("api.example.com", "93.184.216.35", "A")
    auth = AuthoritativeServer(
        network, world.entity("Auth", "dns-infra"), zone, registry
    )
    resolvers = [
        RecursiveResolver(
            network,
            world.entity(f"Resolver {i}", f"resolver-org-{i}"),
            registry,
            name=f"resolver-{i}",
        )
        for i in range(num_resolvers)
    ]
    identity = LabeledValue("198.51.100.7", SENSITIVE_IDENTITY, ALICE, "ip")
    user = network.add_host(
        "user", world.entity("Client", "device", trusted_by_user=True), identity=identity
    )
    return world, network, registry, auth, resolvers, user


class TestMessages:
    def test_make_query_labels_the_name_as_partial(self):
        query = make_query("www.example.com", ALICE)
        assert query.qname.label == PARTIAL_SENSITIVE_DATA
        assert query.name == "www.example.com"

    def test_cache_key_is_case_insensitive(self):
        assert make_query("WWW.Example.COM", ALICE).cache_key() == (
            "www.example.com",
            "A",
        )


class TestZones:
    def test_zone_lookup_hit_and_miss(self):
        zone = Zone("example.com")
        zone.add("www.example.com", "1.2.3.4")
        assert zone.lookup("www.example.com").rdata == "1.2.3.4"
        assert zone.lookup("nope.example.com").is_nxdomain

    def test_registry_longest_suffix_match(self):
        registry = ZoneRegistry()
        from repro.net.addressing import Address

        registry.delegate("com", Address("10.0.0.1"))
        registry.delegate("example.com", Address("10.0.0.2"))
        assert registry.authoritative_for("www.example.com") == Address("10.0.0.2")
        assert registry.authoritative_for("other.com") == Address("10.0.0.1")
        with pytest.raises(LookupError):
            registry.authoritative_for("example.org")


class TestResolver:
    def test_resolution_and_answer(self):
        world, network, registry, auth, (resolver,), user = _setup()
        stub = StubResolver(user, resolver.address)
        answer = stub.lookup("www.example.com", ALICE)
        assert answer.rdata == "93.184.216.34"
        assert auth.queries_served == 1

    def test_cache_prevents_repeat_recursion(self):
        world, network, registry, auth, (resolver,), user = _setup()
        stub = StubResolver(user, resolver.address)
        stub.lookup("www.example.com", ALICE)
        stub.lookup("www.example.com", ALICE)
        assert auth.queries_served == 1
        assert resolver.cache.hits == 1

    def test_cache_expires_by_ttl(self):
        world, network, registry, auth, (resolver,), user = _setup()
        stub = StubResolver(user, resolver.address)
        stub.lookup("www.example.com", ALICE)
        network.simulator.advance(10_000)  # past the 300s TTL
        stub.lookup("www.example.com", ALICE)
        assert auth.queries_served == 2

    def test_nxdomain_propagates(self):
        world, network, registry, auth, (resolver,), user = _setup()
        stub = StubResolver(user, resolver.address)
        assert stub.lookup("missing.example.com", ALICE).is_nxdomain


class TestDnsCache:
    def test_eviction_prefers_expired(self):
        cache = DnsCache(max_entries=2)
        a = DnsAnswer("a", "A", "1.1.1.1", ttl=1)
        b = DnsAnswer("b", "A", "2.2.2.2", ttl=1000)
        cache.put(("a", "A"), a, now=0)
        cache.put(("b", "A"), b, now=0)
        cache.put(("c", "A"), DnsAnswer("c", "A", "3.3.3.3"), now=10)  # a expired
        assert cache.get(("b", "A"), now=10) is not None
        assert len(cache) == 2

    def test_hit_rate(self):
        cache = DnsCache()
        answer = DnsAnswer("a", "A", "1.1.1.1")
        cache.put(("a", "A"), answer, now=0)
        cache.get(("a", "A"), now=1)
        cache.get(("b", "A"), now=1)
        assert cache.hit_rate == pytest.approx(0.5)


class TestStriping:
    def test_round_robin_is_even(self):
        world, network, registry, auth, resolvers, user = _setup(num_resolvers=4)
        stub = StripingStub(user, [r.address for r in resolvers], RoundRobinPolicy())
        for index in range(8):
            stub.lookup("www.example.com", ALICE)
        assert stub.max_resolver_share() == pytest.approx(0.25)
        assert stub.load_imbalance() == pytest.approx(0.0)

    def test_hash_policy_is_sticky_per_name(self):
        world, network, registry, auth, resolvers, user = _setup(num_resolvers=3)
        stub = StripingStub(user, [r.address for r in resolvers], HashPolicy())
        stub.lookup("www.example.com", ALICE)
        stub.lookup("www.example.com", ALICE)
        assert stub.max_resolver_share() == pytest.approx(1.0)
        assert stub.max_name_coverage(total_names=1) == pytest.approx(1.0)

    def test_random_policy_uses_seeded_rng(self):
        world, network, registry, auth, resolvers, user = _setup(num_resolvers=2)
        policy = RandomPolicy(rng=random.Random(1))
        stub = StripingStub(user, [r.address for r in resolvers], policy)
        for _ in range(6):
            stub.lookup("www.example.com", ALICE)
        assert sum(stub.queries_by_resolver.values()) == 6

    def test_more_resolvers_reduce_per_resolver_knowledge(self):
        shares = {}
        for count in (1, 2, 4):
            world, network, registry, auth, resolvers, user = _setup(num_resolvers=count)
            stub = StripingStub(user, [r.address for r in resolvers], RoundRobinPolicy())
            for index in range(8):
                stub.lookup("www.example.com" if index % 2 else "api.example.com", ALICE)
            shares[count] = stub.max_resolver_share()
        assert shares[1] > shares[2] > shares[4]

    def test_requires_at_least_one_resolver(self):
        with pytest.raises(ValueError):
            StripingStub(None, [])
