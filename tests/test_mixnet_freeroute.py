"""Tests for free-route mix networks (volunteer-pool topology)."""

import pytest

from repro.core.values import Subject
from repro.mixnet import run_mixnet


class TestFreeRouting:
    def test_routes_are_sampled_from_the_pool(self):
        run = run_mixnet(mixes=3, senders=6, batch_size=1, mix_pool=6)
        assert len(run.routes_used) == 6
        for route in run.routes_used:
            assert len(route) == 3
            assert len(set(route)) == 3  # no repeated hop
            assert all(0 <= hop < 6 for hop in route)
        # With a pool larger than the route, senders diverge.
        assert len({tuple(r) for r in run.routes_used}) > 1

    def test_all_messages_still_delivered(self):
        run = run_mixnet(mixes=2, senders=8, batch_size=1, mix_pool=5)
        assert len(run.receiver.received) == 8

    def test_cascade_routes_are_identical(self):
        run = run_mixnet(mixes=3, senders=4)
        assert all(route == [0, 1, 2] for route in run.routes_used)

    def test_pool_must_cover_the_route(self):
        with pytest.raises(ValueError):
            run_mixnet(mixes=4, mix_pool=3)

    def test_tracked_sender_coupling_is_exactly_its_route(self):
        """Free routing scopes the re-coupling coalition per user: only
        the mixes *this* sender used (plus the receiver) can break
        *this* sender's privacy."""
        run = run_mixnet(mixes=2, senders=5, batch_size=1, mix_pool=5)
        tracked_route = run.routes_used[0]
        expected = frozenset(
            {f"mix-org-{hop + 1}" for hop in tracked_route} | {"receiver-org"}
        )
        alice = Subject("alice")
        assert run.analyzer.coalition_couples(expected, alice)
        # Any same-sized coalition that misses a hop of the route fails.
        unused = [
            f"mix-org-{i + 1}"
            for i in range(5)
            if i not in tracked_route
        ]
        if unused:
            wrong = frozenset(
                {f"mix-org-{tracked_route[0] + 1}", unused[0], "receiver-org"}
            )
            assert not run.analyzer.coalition_couples(wrong, alice)

    def test_free_route_still_decoupled(self):
        run = run_mixnet(mixes=3, senders=6, batch_size=2, mix_pool=6)
        assert run.analyzer.verdict().decoupled

    def test_ground_truth_covers_free_routes(self):
        run = run_mixnet(mixes=2, senders=6, batch_size=1, mix_pool=4)
        assert len(run.ground_truth()) == 6
