"""System tests for Tor-style onion circuits."""

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.http.messages import make_request
from repro.http.origin import OriginDirectory, OriginServer
from repro.mixnet.circuits import CircuitClient, OnionRouter
from repro.net.network import Network

ALICE = Subject("alice")


def _build(hops=3):
    world, network = World(), Network()
    user = world.entity("User", "device", trusted_by_user=True)
    directory = OriginDirectory()
    origin = OriginServer(
        network, world.entity("Origin", "origin-org"), "site.example",
        directory=directory,
    )
    routers = []
    for index in range(1, hops + 1):
        entity = world.entity(f"OR {index}", f"or-org-{index}")
        routers.append(
            OnionRouter(
                network,
                entity,
                f"or-{index}",
                f"or-key-{index}",
                directory=directory if index == hops else None,
            )
        )
    identity = LabeledValue("198.51.100.77", SENSITIVE_IDENTITY, ALICE, "client ip")
    host = network.add_host("client", user, identity=identity)
    user.observe(identity, channel="self", session="self")
    client = CircuitClient(host, routers, ALICE)
    return world, network, client, routers, origin


class TestCircuitLifecycle:
    def test_fetch_builds_circuit_lazily(self):
        world, network, client, routers, origin = _build()
        assert not client.established
        response = client.fetch(make_request("site.example", "/a", ALICE))
        assert response.ok and client.established

    def test_circuit_is_reused_across_streams(self):
        world, network, client, routers, origin = _build()
        client.build_circuit()
        for index in range(4):
            client.fetch(make_request("site.example", f"/s{index}", ALICE))
        # 4 data cells per router, one setup each: state is per circuit.
        assert all(r.cells_relayed == 4 for r in routers)
        assert origin.requests_served == 4

    def test_circuit_ids_differ_per_hop(self):
        world, network, client, routers, origin = _build()
        client.build_circuit()
        assert len(set(client._hop_ids)) == 3

    def test_unknown_circuit_rejected(self):
        from repro.mixnet.circuits import CIRCUIT_PROTOCOL, _DataCell

        world, network, client, routers, origin = _build()
        client.host.send(
            routers[0].address, _DataCell(circuit_id=999999, payload=None),
            CIRCUIT_PROTOCOL,
        )
        with pytest.raises(KeyError):
            network.run()


class TestCircuitDecoupling:
    def test_knowledge_table_matches_onion_routing(self):
        world, network, client, routers, origin = _build()
        client.fetch(make_request("site.example", "/a", ALICE))
        analyzer = DecouplingAnalyzer(world)
        table = analyzer.table(entities=["User", "OR 1", "OR 2", "OR 3", "Origin"])
        assert table.as_mapping() == {
            "User": "(▲, ●)",
            "OR 1": "(▲, ⊙)",
            "OR 2": "(△, ⊙)",
            "OR 3": "(△, ●)",  # plain-HTTP exit sees the request
            "Origin": "(△, ●)",
        }
        assert analyzer.verdict().decoupled

    def test_guard_never_sees_plaintext(self):
        world, network, client, routers, origin = _build()
        client.fetch(make_request("site.example", "/secret", ALICE))
        assert SENSITIVE_DATA not in world.ledger.labels_of("OR 1")
        assert SENSITIVE_DATA not in world.ledger.labels_of("OR 2")

    def test_collusion_needs_the_full_path(self):
        world, network, client, routers, origin = _build()
        client.fetch(make_request("site.example", "/a", ALICE))
        analyzer = DecouplingAnalyzer(world)
        (coalition,) = analyzer.minimal_recoupling_coalitions()
        assert coalition == frozenset({"or-org-1", "or-org-2", "or-org-3"})

    def test_more_hops_raise_collusion_resistance(self):
        resistances = []
        for hops in (2, 3, 4):
            world, network, client, routers, origin = _build(hops)
            client.fetch(make_request("site.example", "/a", ALICE))
            resistances.append(
                DecouplingAnalyzer(world).collusion_resistance()
            )
        assert resistances == [2, 3, 4]

    def test_setup_is_paid_once(self):
        """Circuit reuse amortizes the setup round trips (section 4.2:
        'albeit at greater performance cost' is about the data path)."""
        world, network, client, routers, origin = _build()
        t0 = network.simulator.now
        client.build_circuit()
        setup_cost = network.simulator.now - t0
        t1 = network.simulator.now
        client.fetch(make_request("site.example", "/a", ALICE))
        fetch_cost = network.simulator.now - t1
        assert setup_cost > 0
        t2 = network.simulator.now
        client.fetch(make_request("site.example", "/b", ALICE))
        assert network.simulator.now - t2 == pytest.approx(fetch_cost)
