"""Multi-client ODoH: the target's anonymity set.

The oblivious target sees queries "decoupled" from identity: with k
clients behind one proxy, every query could belong to any of them.
These tests measure that set from the target's own ledger.
"""

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.metrics import anonymity_set_size
from repro.core.values import LabeledValue, Subject
from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
from repro.net.network import Network
from repro.odns.odoh import ObliviousProxy, ObliviousTarget, OdohClient


def _build(clients=4):
    world = World()
    network = Network()
    registry = ZoneRegistry()
    zone = Zone("example.com")
    for index in range(8):
        zone.add(f"site-{index}.example.com", "203.0.113.1")
    AuthoritativeServer(network, world.entity("Auth", "dns-infra"), zone, registry)
    target = ObliviousTarget(
        network, world.entity("Target", "target-org"), registry, key_seed=b"\x11" * 32
    )
    proxy = ObliviousProxy(network, world.entity("Proxy", "proxy-org"), target.address)
    odoh_clients = []
    for index in range(clients):
        subject = Subject(f"user-{index}")
        entity = world.entity(f"Client {index}", f"device-{index}", trusted_by_user=True)
        identity = LabeledValue(
            f"198.51.100.{index + 1}", SENSITIVE_IDENTITY, subject, "client ip"
        )
        host = network.add_host(f"client-{index}", entity, identity=identity)
        odoh_clients.append(OdohClient(host, proxy, target, subject))
    return world, network, odoh_clients


class TestTargetAnonymitySet:
    def test_target_sees_k_indistinguishable_clients(self):
        world, network, clients = _build(clients=4)
        for index, client in enumerate(clients):
            client.lookup(f"site-{index}.example.com")
        network.run()
        target_observations = world.ledger.by_entity("Target")
        # The target saw queries of all four subjects...
        subjects = {o.subject for o in target_observations if o.label.is_data}
        assert anonymity_set_size(subjects) == 4
        # ...but never a sensitive identity for any of them.
        assert all(
            not (o.label.is_identity and o.label.is_sensitive)
            for o in target_observations
        )

    def test_proxy_sees_identities_but_cannot_attribute_queries(self):
        world, network, clients = _build(clients=3)
        for index, client in enumerate(clients):
            client.lookup(f"site-{index}.example.com")
        network.run()
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.verdict().decoupled
        proxy_ids = {
            o.subject
            for o in world.ledger.by_entity("Proxy")
            if o.label.is_identity and o.label.is_sensitive
        }
        assert len(proxy_ids) == 3

    def test_per_user_coupling_requires_the_pair_for_each_user(self):
        world, network, clients = _build(clients=2)
        for index, client in enumerate(clients):
            client.lookup(f"site-{index}.example.com")
        network.run()
        analyzer = DecouplingAnalyzer(world)
        for index in range(2):
            subject = Subject(f"user-{index}")
            assert not analyzer.coalition_couples(["proxy-org"], subject)
            assert not analyzer.coalition_couples(["target-org"], subject)
            assert analyzer.coalition_couples(
                ["proxy-org", "target-org"], subject
            )
