"""Tests for the G-series risk harness and the ``repro risk`` CLI."""

import io
import json

import pytest

from repro import harness
from repro.cli import main
from repro.faults import FaultPlan


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRiskHarness:
    def test_risk_summaries_cover_requested_scenarios(self):
        summaries = harness.risk_summaries(scenario_ids=["odoh", "vpn"])
        assert [s.scenario for s in summaries] == ["odoh", "vpn"]
        odoh, vpn = summaries
        assert odoh.grade == "decoupled" and odoh.decoupled
        assert vpn.grade == "coupled" and not vpn.decoupled
        assert vpn.system_risk == 1.0

    def test_parallel_summaries_match_serial(self):
        ids = ["odoh", "prio", "mixnet"]
        serial = harness.risk_summaries(scenario_ids=ids)
        parallel = harness.risk_summaries(jobs=2, scenario_ids=ids)
        assert [s.to_dict() for s in serial] == [s.to_dict() for s in parallel]

    def test_g1_sweep_is_monotone_with_diminishing_returns(self):
        sweeps = harness.risk_sweep(keys=["G1"])
        points = sweeps["G1"]
        assert [p.degree for p in points] == [1, 2, 3, 4, 5]
        assert [p.collusion_resistance for p in points] == [1, 2, 3, 4, 5]
        assert harness.risk_monotone_non_increasing(points)
        assert harness.risk_diminishing_returns(points)
        assert points[0].system_risk == 1.0
        assert points[1].system_risk == pytest.approx(0.75)

    def test_g2_sweep_is_monotone_with_diminishing_returns(self):
        sweeps = harness.risk_sweep(keys=["G2"])
        points = sweeps["G2"]
        assert [p.degree for p in points] == [2, 3, 4, 5]
        assert harness.risk_monotone_non_increasing(points)
        assert harness.risk_diminishing_returns(points)

    def _point(self, degree, system_risk):
        return harness.RiskPoint(
            scenario="fake",
            degree=degree,
            collusion_resistance=degree,
            system_risk=system_risk,
            max_pair_risk=system_risk,
            mean_pair_risk=system_risk,
            coupled_pairs=0,
            population=1,
            observations=1,
        )

    def test_monotone_helpers_reject_regressions(self):
        rising = [self._point(1, 0.5), self._point(2, 0.75)]
        assert not harness.risk_monotone_non_increasing(rising)
        accelerating = [
            self._point(1, 1.0),
            self._point(2, 0.9),
            self._point(3, 0.5),
        ]
        assert not harness.risk_diminishing_returns(accelerating)
        # Order of the input list must not matter: degree decides.
        sweeps = harness.risk_sweep(keys=["G1"])
        shuffled = list(reversed(sweeps["G1"]))
        assert harness.risk_monotone_non_increasing(shuffled)

    def test_odoh_proxy_crash_raises_system_risk(self):
        delta = harness.risk_delta(
            "odoh", FaultPlan.crash("oblivious-proxy", at=0.0, seed=1)
        )
        assert delta["baseline_decoupled"] is True
        assert delta["faulted_decoupled"] is False
        assert delta["system_risk_delta"] == pytest.approx(0.25)
        assert delta["fallbacks"] == 3
        assert any(
            row["delta"] > 0 for row in delta["pair_deltas"]
        )

    def test_risk_report_exposes_full_report_object(self):
        report = harness.risk_report("odoh")
        assert report.scenario_id == "odoh"
        assert report.decoupled
        why = report.why(report.max_pair().entity, report.max_pair().subject)
        assert "terms sum exactly" in why.render()


class TestRiskCommand:
    def test_risk_smoke_on_one_scenario(self):
        code, output = _run(["risk", "--scenarios", "odoh"])
        assert code == 0
        assert "odoh" in output
        assert "decoupled" in output

    def test_risk_json_is_valid_and_byte_deterministic(self):
        argv = ["risk", "--scenarios", "odoh,vpn", "--json"]
        code_a, first = _run(argv)
        code_b, second = _run(argv)
        assert code_a == code_b == 0
        assert first == second
        document = json.loads(first)
        assert document["series"] == "G"
        assert [s["scenario"] for s in document["scenarios"]] == [
            "odoh",
            "vpn",
        ]

    def test_full_registry_risk_json_is_byte_deterministic(self):
        code_a, first = _run(["risk", "--json"])
        code_b, second = _run(["risk", "--json", "--jobs", "2"])
        assert code_a == code_b == 0
        assert first == second
        document = json.loads(first)
        assert len(document["scenarios"]) == len(
            {s["scenario"] for s in document["scenarios"]}
        )
        assert set(document["sweeps"]) == {"G1", "G2"}
        for sweep in document["sweeps"].values():
            assert sweep["monotone_non_increasing"] is True
            assert sweep["diminishing_returns"] is True

    def test_risk_out_writes_json_file(self, tmp_path):
        target = tmp_path / "risk.json"
        code, output = _run(
            ["risk", "--scenarios", "odoh", "--json", "--out", str(target)]
        )
        assert code == 0
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["scenarios"][0]["scenario"] == "odoh"

    def test_risk_with_faults_reports_delta(self):
        code, output = _run(
            [
                "risk",
                "--scenarios",
                "odoh",
                "--faults",
                "examples/faults/odoh_proxy_crash.json",
            ]
        )
        assert code == 0
        assert "risk under faults" in output

    def test_unknown_scenario_fails_gracefully(self):
        code, output = _run(["risk", "--scenarios", "nonexistent"])
        assert code == 2
        assert "unknown scenario" in output

    def test_bad_profile_fails_gracefully(self, tmp_path):
        bad = tmp_path / "profile.json"
        bad.write_text('{"weights": {}}', encoding="utf-8")
        code, output = _run(["risk", "--scenarios", "odoh", "--profile", str(bad)])
        assert code == 2

    def test_custom_profile_changes_the_scores(self, tmp_path):
        custom = tmp_path / "profile.json"
        custom.write_text(
            json.dumps(
                {
                    "name": "inferability-only",
                    "component_weights": {
                        "sensitivity": 0.0,
                        "linkability": 0.0,
                        "inferability": 1.0,
                    },
                }
            ),
            encoding="utf-8",
        )
        _, default_out = _run(["risk", "--scenarios", "vpn", "--json"])
        code, custom_out = _run(
            ["risk", "--scenarios", "vpn", "--json", "--profile", str(custom)]
        )
        assert code == 0
        assert json.loads(custom_out)["profile"]["name"] == "inferability-only"
        assert default_out != custom_out


class TestPrivcountCommand:
    def test_sweep_thresholds_track_keepers_plus_one(self):
        points = harness.privcount_sweep(
            collectors=(1, 2), share_keepers=(2, 3), jobs=2
        )
        assert [
            (p.collectors, p.share_keepers) for p in points
        ] == [(1, 2), (1, 3), (2, 2), (2, 3)]
        for point in points:
            assert point.reconstruction_threshold == point.share_keepers + 1
            assert point.threshold_matches
            assert point.reconstructed
        # Threshold depends only on keepers, never on collectors.
        by_keepers = {}
        for point in points:
            by_keepers.setdefault(point.share_keepers, set()).add(
                point.reconstruction_threshold
            )
        assert all(len(values) == 1 for values in by_keepers.values())

    def test_parallel_sweep_matches_serial(self):
        serial = harness.privcount_sweep(
            collectors=(1,), share_keepers=(2, 3), jobs=1
        )
        parallel = harness.privcount_sweep(
            collectors=(1,), share_keepers=(2, 3), jobs=2
        )
        assert [p.to_dict() for p in serial] == [
            p.to_dict() for p in parallel
        ]

    def test_cli_json_is_valid_and_byte_deterministic(self):
        argv = [
            "privcount",
            "--collectors", "1", "--share-keepers", "2,3", "--json",
        ]
        code_a, first = _run(argv)
        code_b, second = _run(argv)
        assert code_a == code_b == 0
        assert first == second
        document = json.loads(first)
        assert document["series"] == "P"
        assert [p["share_keepers"] for p in document["points"]] == [2, 3]
        assert all(p["threshold_matches"] for p in document["points"])

    def test_cli_text_reports_thresholds(self):
        code, output = _run(
            ["privcount", "--collectors", "1", "--share-keepers", "2"]
        )
        assert code == 0
        assert "reconstruction threshold" in output
        assert "ok" in output

    def test_cli_out_writes_json_file(self, tmp_path):
        target = tmp_path / "privcount.json"
        code, output = _run(
            [
                "privcount", "--collectors", "1", "--share-keepers", "2",
                "--json", "--out", str(target),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["points"][0]["reconstruction_threshold"] == 3

    def test_cli_rejects_empty_grid(self):
        code, output = _run(["privcount", "--collectors", ","])
        assert code == 2
        assert "at least one" in output


class TestReportAndExplainIntegration:
    def test_report_json_gains_risk_section(self):
        code, output = _run(["report", "--json", "--risk"])
        assert code == 0
        document = json.loads(output)
        assert "risk" in document
        assert document["risk"]["series"] == "G"
        assert document["all_match"] is True

    def test_explain_risk_renders_decompositions(self):
        code, output = _run(
            ["explain", "odoh", "--entity", "Oblivious Proxy", "--risk"]
        )
        assert code == 0
        assert "risk(Oblivious Proxy, alice)" in output
        assert "terms sum exactly to the pair score" in output

    def test_explain_risk_requires_an_entity(self):
        code, output = _run(["explain", "odoh", "--risk"])
        assert code == 2
        assert "--entity" in output
