"""The DNS privacy ladder: plain DNS -> DoH -> ODoH.

Encryption relocates knowledge; only decoupling removes it.  DoH blinds
the access network but leaves the resolver fully coupled -- the
argument that motivates the paper's section 3.2.2.
"""

import pytest

from repro.core.labels import SENSITIVE_DATA
from repro.odns import run_doh, run_odoh, run_plain_dns


@pytest.fixture(scope="module")
def doh_run():
    return run_doh()


class TestDohRun:
    def test_queries_resolve_through_real_hpke(self, doh_run):
        assert doh_run.answers == ["93.184.216.34"] * 3

    def test_table_shape(self, doh_run):
        assert doh_run.table().as_mapping() == {
            "Client": "(▲, ●)",
            "Network Observer": "(▲, ⊙)",
            "Resolver": "(▲, ⊙/●)",
            "Origin": "(△, ●)",
        }

    def test_resolver_still_couples(self, doh_run):
        verdict = doh_run.analyzer.verdict()
        assert not verdict.decoupled
        assert any(v.entity == "Resolver" for v in verdict.violations)

    def test_observer_never_sees_a_query(self, doh_run):
        for obs in doh_run.world.ledger.by_entity("Network Observer"):
            assert obs.description != "dns qname"


class TestLadder:
    def test_each_rung_strictly_improves_some_party(self):
        plain = run_plain_dns()
        doh = run_doh()
        odoh = run_odoh()

        # Rung 1 -> 2: the resolver's knowledge is unchanged...
        assert plain.table().as_mapping()["Resolver"] == "(▲, ⊙/●)"
        assert doh.table().as_mapping()["Resolver"] == "(▲, ⊙/●)"
        # ...and both leave the system coupled.
        assert not plain.analyzer.verdict().decoupled
        assert not doh.analyzer.verdict().decoupled

        # Rung 3: ODoH decouples; the proxy's cell drops to (▲, ⊙).
        assert odoh.analyzer.verdict().decoupled
        assert odoh.table().as_mapping()["Oblivious Proxy"] == "(▲, ⊙)"

    def test_single_org_breach_comparison(self):
        """Breach exposure across the ladder: plain/DoH resolvers leak
        the coupled profile; ODoH parties are individually clean."""
        doh = run_doh()
        assert not doh.analyzer.breach("resolver-org").breach_proof
        odoh = run_odoh()
        assert odoh.analyzer.breach("proxy-org").breach_proof
        assert odoh.analyzer.breach("target-org").breach_proof
