"""System tests: T2/F1, Chaum mix-nets (paper section 3.1.2)."""

import pytest

from repro.core.labels import SENSITIVE_DATA
from repro.mixnet import paper_table_t2, run_mixnet


@pytest.fixture(scope="module")
def run():
    return run_mixnet(mixes=3, senders=4)


class TestPaperTable:
    def test_derived_table_matches_the_paper(self, run):
        assert run.table().as_mapping() == paper_table_t2(3)

    def test_system_is_decoupled(self, run):
        assert run.analyzer.verdict().decoupled

    def test_table_shape_generalizes_with_hops(self):
        for mixes in (1, 2, 5):
            r = run_mixnet(mixes=mixes, senders=3)
            assert r.table().as_mapping() == paper_table_t2(mixes)


class TestDelivery:
    def test_all_messages_delivered(self, run):
        assert len(run.receiver.received) == 4

    def test_messages_arrive_intact(self, run):
        texts = {str(m.payload) for m in run.receiver.received}
        assert any("alice" in t for t in texts)

    def test_each_mix_flushed_one_full_batch(self, run):
        for mix in run.mixes:
            assert mix.messages_mixed == 4
            assert mix.pending == 0


class TestCollusion:
    def test_minimal_coalition_is_all_mixes_plus_receiver(self, run):
        (coalition,) = run.analyzer.minimal_recoupling_coalitions()
        assert coalition == frozenset(
            {"mix-org-1", "mix-org-2", "mix-org-3", "receiver-org"}
        )

    def test_collusion_resistance_grows_with_hops(self):
        resistances = [
            run_mixnet(mixes=m, senders=3).analyzer.collusion_resistance()
            for m in (1, 2, 3)
        ]
        assert resistances == [2, 3, 4]

    def test_mixes_alone_never_see_plaintext(self, run):
        for index in range(1, 4):
            labels = run.world.ledger.labels_of(f"Mix {index}")
            assert SENSITIVE_DATA not in labels


class TestTiming:
    def test_latency_grows_with_hops(self):
        latencies = [
            run_mixnet(mixes=m, senders=3).end_to_end_latency() for m in (1, 3, 5)
        ]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_batching_delays_delivery(self):
        quick = run_mixnet(mixes=2, senders=8, batch_size=1)
        batched = run_mixnet(mixes=2, senders=8, batch_size=8)
        assert quick.end_to_end_latency() < batched.end_to_end_latency()

    def test_ground_truth_covers_every_message(self, run):
        assert len(run.ground_truth()) == 4


class TestPadding:
    def test_padded_messages_have_uniform_receiver_sizes(self):
        run = run_mixnet(mixes=2, senders=4, use_padding=True)
        sizes = {
            r.size
            for r in run.network.trace
            if r.dst == run.receiver.address
        }
        assert len(sizes) == 1

    def test_unpadded_messages_leak_size_variation(self):
        run = run_mixnet(mixes=2, senders=4, use_padding=False)
        sizes = {
            r.size
            for r in run.network.trace
            if r.dst == run.receiver.address
        }
        assert len(sizes) == 4
