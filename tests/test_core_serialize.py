"""Round-trip tests for ledger serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.core.labels import (
    Facet,
    Kind,
    Label,
    PARTIAL_SENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_HUMAN_IDENTITY,
    SENSITIVE_IDENTITY,
    Sensitivity,
)
from repro.core.ledger import Ledger
from repro.core.serialize import (
    label_from_dict,
    label_to_dict,
    ledger_from_jsonl,
    ledger_to_dicts,
    ledger_to_jsonl,
    observation_from_dict,
    observation_to_dict,
)
from repro.core.values import LabeledValue, ShareInfo, Subject

ALICE = Subject("alice")

_label_strategy = st.builds(
    Label,
    kind=st.sampled_from(list(Kind)),
    sensitivity=st.sampled_from(list(Sensitivity)),
    facet=st.just(Facet.GENERIC),
    partial=st.just(False),
)


class TestLabelRoundtrip:
    @given(_label_strategy)
    def test_generic_labels_roundtrip(self, label):
        assert label_from_dict(label_to_dict(label)) == label

    def test_special_labels_roundtrip(self):
        for label in (
            PARTIAL_SENSITIVE_DATA,
            SENSITIVE_HUMAN_IDENTITY,
            SENSITIVE_IDENTITY,
        ):
            assert label_from_dict(label_to_dict(label)) == label


class TestObservationRoundtrip:
    def _ledger(self):
        ledger = Ledger()
        ledger.record(
            "Mix 1",
            "mix-org",
            LabeledValue("payload", SENSITIVE_DATA, ALICE, "query",
                         provenance=("a", "b")),
            time=1.25,
            channel="wire",
            session="pkt:7",
            packet_id=7,
        )
        ledger.record(
            "Agg",
            "agg-org",
            LabeledValue(
                17,
                SENSITIVE_DATA.downgraded(),
                ALICE,
                "share",
                share_info=ShareInfo(group="g", index=1, total=3),
            ),
        )
        return ledger

    def test_dict_roundtrip_preserves_everything(self):
        ledger = self._ledger()
        rows = ledger_to_dicts(ledger)
        for original, row in zip(ledger, rows):
            assert observation_from_dict(row) == original

    def test_jsonl_roundtrip(self):
        ledger = self._ledger()
        restored = ledger_from_jsonl(ledger_to_jsonl(ledger))
        assert list(restored) == list(ledger)

    def test_jsonl_is_one_line_per_observation(self):
        text = ledger_to_jsonl(self._ledger())
        assert len(text.splitlines()) == 2

    def test_restored_ledger_supports_analysis_queries(self):
        restored = ledger_from_jsonl(ledger_to_jsonl(self._ledger()))
        assert restored.labels_of("Mix 1") == {SENSITIVE_DATA}
        assert restored.subjects() == (ALICE,)

    def test_empty_ledger(self):
        assert list(ledger_from_jsonl(ledger_to_jsonl(Ledger()))) == []

    def test_packet_id_roundtrips_and_is_omitted_for_local_acts(self):
        ledger = self._ledger()
        rows = ledger_to_dicts(ledger)
        assert rows[0]["packet_id"] == 7
        assert "packet_id" not in rows[1]  # local act: no packet
        restored = list(ledger_from_jsonl(ledger_to_jsonl(ledger)))
        assert restored[0].packet_id == 7
        assert restored[1].packet_id is None


class TestAuditReportSerialization:
    def test_audit_report_to_dict_carries_grade(self):
        from repro.blindsig import run_digital_cash
        from repro.core.audit import audit
        from repro.core.serialize import audit_report_to_dict

        report = audit(run_digital_cash(coins=1).world, title="digital cash")
        data = audit_report_to_dict(report)
        assert data["title"] == "digital cash"
        assert data["grade"] == report.grade
        assert data["grade"] in ("strong", "decoupled", "coupled")
        assert data["decoupled"] == report.verdict.decoupled
        assert isinstance(data["coalitions"], list)
        breach_orgs = {b["organization"] for b in data["breaches"]}
        assert breach_orgs == {b.organization for b in report.breaches}

    def test_coupled_run_grades_coupled_with_violations(self):
        from repro.core.audit import audit
        from repro.core.serialize import audit_report_to_dict
        from repro.vpn import run_vpn

        data = audit_report_to_dict(audit(run_vpn().world, title="vpn"))
        assert data["grade"] == "coupled"
        assert data["decoupled"] is False
        assert data["violations"], "coupled run must name its violations"
        violation = data["violations"][0]
        assert {"entity", "organization", "subject", "cell"} <= set(violation)


class TestAnalyzerOnRestoredLedger:
    def test_verdict_survives_serialization(self):
        """A run's ledger, serialized and restored, yields the same verdict."""
        from repro.blindsig import run_digital_cash
        from repro.core.analysis import DecouplingAnalyzer

        run = run_digital_cash(coins=1)
        original = run.analyzer.verdict().decoupled
        restored_ledger = ledger_from_jsonl(ledger_to_jsonl(run.world.ledger))
        run.world.ledger.clear()
        run.world.ledger.ingest(restored_ledger)
        assert DecouplingAnalyzer(run.world).verdict().decoupled == original
