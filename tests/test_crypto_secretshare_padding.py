"""Unit and property tests for secret sharing and padding."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.padding import (
    CELL_SIZE,
    bucket_pad_length,
    pad_to_cell,
    padded_length,
    unpad_from_cell,
)
from repro.crypto.secretshare import (
    COUNTER_MODULUS,
    FIELD_PRIME,
    check_boolean_shares,
    combine_shares,
    make_boolean_proof,
    reconstruct_additive,
    shamir_reconstruct,
    shamir_share,
    share_additive,
    share_counter,
)


class TestAdditiveSharing:
    @given(
        st.integers(min_value=0, max_value=FIELD_PRIME - 1),
        st.integers(min_value=1, max_value=8),
    )
    def test_roundtrip(self, value, parties):
        rng = random.Random(value % 1000)
        shares = share_additive(value, parties, rng=rng)
        assert len(shares) == parties
        assert reconstruct_additive(shares) == value

    def test_proper_subsets_do_not_determine_the_value(self):
        """The same share prefix is consistent with any value."""
        rng = random.Random(1)
        shares_a = share_additive(0, 3, rng=random.Random(2))
        # forge: same first two shares, different value
        forged_last = (1 - sum(shares_a[:2])) % FIELD_PRIME
        assert reconstruct_additive(shares_a[:2] + [forged_last]) == 1

    def test_rejects_zero_parties(self):
        with pytest.raises(ValueError):
            share_additive(5, 0)

    def test_sharing_is_homomorphic(self):
        rng = random.Random(3)
        a = share_additive(10, 3, rng=rng)
        b = share_additive(32, 3, rng=rng)
        summed = [(x + y) % FIELD_PRIME for x, y in zip(a, b)]
        assert reconstruct_additive(summed) == 42


class TestCounterSharing:
    @given(
        st.integers(min_value=0, max_value=COUNTER_MODULUS - 1),
        st.integers(min_value=1, max_value=8),
    )
    def test_roundtrip(self, value, parties):
        rng = random.Random(value % 1000)
        shares = share_counter(value, parties, rng=rng)
        assert len(shares) == parties
        assert combine_shares(shares) == value

    def test_negative_values_reduce_mod_q(self):
        shares = share_counter(-5, 3, rng=random.Random(6))
        assert combine_shares(shares) == COUNTER_MODULUS - 5
        assert combine_shares(shares, signed=True) == -5

    def test_signed_decode_keeps_small_positives(self):
        shares = share_counter(42, 4, rng=random.Random(7))
        assert combine_shares(shares, signed=True) == 42

    def test_proper_subsets_do_not_determine_the_value(self):
        """The same share prefix is consistent with any value."""
        shares = share_counter(0, 3, rng=random.Random(8))
        forged_last = (1 - sum(shares[:2])) % COUNTER_MODULUS
        assert combine_shares(shares[:2] + [forged_last]) == 1

    def test_sharing_is_homomorphic(self):
        """Registers add share-wise: the tally never needs raw counts."""
        rng = random.Random(9)
        a = share_counter(10, 3, rng=rng)
        b = share_counter(32, 3, rng=rng)
        summed = [(x + y) % COUNTER_MODULUS for x, y in zip(a, b)]
        assert combine_shares(summed) == 42

    def test_non_prime_modulus_is_fine(self):
        shares = share_counter(99, 5, modulus=100, rng=random.Random(10))
        assert combine_shares(shares, modulus=100) == 99

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            share_counter(5, 0)
        with pytest.raises(ValueError):
            share_counter(5, 2, modulus=1)
        with pytest.raises(ValueError):
            combine_shares([])
        with pytest.raises(ValueError):
            combine_shares([1, 2], modulus=1)


class TestShamir:
    @given(
        st.integers(min_value=0, max_value=FIELD_PRIME - 1),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15)
    def test_threshold_roundtrip(self, value, threshold):
        parties = threshold + 2
        shares = shamir_share(value, parties, threshold, rng=random.Random(4))
        assert shamir_reconstruct(shares[:threshold]) == value
        assert shamir_reconstruct(shares) == value

    def test_any_subset_of_threshold_size_works(self):
        shares = shamir_share(777, 5, 3, rng=random.Random(5))
        assert shamir_reconstruct([shares[0], shares[2], shares[4]]) == 777

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            shamir_share(1, 2, 3)
        with pytest.raises(ValueError):
            shamir_reconstruct([])
        with pytest.raises(ValueError):
            shamir_reconstruct([(1, 2), (1, 3)])


class TestBooleanValidity:
    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=2, max_value=5))
    @settings(max_examples=15)
    def test_honest_bits_pass(self, bit, parties):
        proofs = make_boolean_proof(bit, parties, rng=random.Random(6))
        assert check_boolean_shares(proofs)

    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=2, max_value=4))
    @settings(max_examples=15)
    def test_out_of_range_values_fail(self, value, parties):
        proofs = make_boolean_proof(value, parties, rng=random.Random(7))
        assert not check_boolean_shares(proofs)

    def test_shares_reconstruct_the_bit(self):
        proofs = make_boolean_proof(1, 3, rng=random.Random(8))
        assert reconstruct_additive([p.x_share for p in proofs]) == 1

    def test_empty_proofs_rejected(self):
        with pytest.raises(ValueError):
            check_boolean_shares([])


class TestPadding:
    @given(st.binary(max_size=2000))
    def test_roundtrip(self, payload):
        assert unpad_from_cell(pad_to_cell(payload)) == payload

    @given(st.binary(max_size=2000))
    def test_padded_size_is_whole_cells(self, payload):
        padded = pad_to_cell(payload)
        assert len(padded) % CELL_SIZE == 0
        assert len(padded) == padded_length(len(payload))

    def test_small_payloads_are_indistinguishable_by_size(self):
        assert len(pad_to_cell(b"a")) == len(pad_to_cell(b"a" * 100))

    def test_corrupt_length_prefix_detected(self):
        padded = bytearray(pad_to_cell(b"abc"))
        padded[0] = 0xFF
        with pytest.raises(ValueError):
            unpad_from_cell(bytes(padded))

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            unpad_from_cell(b"\x00")

    def test_bucket_padding_picks_smallest_fit(self):
        assert bucket_pad_length(100, [64, 256, 1024]) == 256
        assert bucket_pad_length(64, [64, 256]) == 64
        with pytest.raises(ValueError):
            bucket_pad_length(5000, [64, 256])
