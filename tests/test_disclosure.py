"""Tests for the statistical disclosure (intersection) attack."""

from collections import Counter

import pytest

from repro.adversary import (
    RoundObservation,
    StatisticalDisclosureAttack,
    generate_sda_rounds,
)


def _round(active, counts):
    return RoundObservation(
        active_senders=frozenset(active),
        recipient_counts=tuple(sorted(counts.items())),
    )


class TestAttackMechanics:
    def test_needs_both_signal_and_background_rounds(self):
        attack = StatisticalDisclosureAttack()
        only_active = [_round({"alice"}, {"r1": 1})]
        assert attack.estimate(only_active, "alice") is None
        only_background = [_round({"bob"}, {"r1": 1})]
        assert attack.estimate(only_background, "alice") is None

    def test_clean_signal_is_recovered(self):
        attack = StatisticalDisclosureAttack()
        rounds = [
            _round({"alice", "c1"}, {"target": 1, "other": 1}),
            _round({"alice", "c2"}, {"target": 1, "other": 1}),
            _round({"c1"}, {"other": 1}),
            _round({"c2"}, {"other": 1}),
        ]
        assert attack.estimate(rounds, "alice") == "target"

    def test_round_counts_helper(self):
        observation = _round({"a"}, {"r1": 2, "r2": 1})
        assert observation.counts() == Counter({"r1": 2, "r2": 1})


class TestEndToEnd:
    def test_rounds_come_from_real_mixing(self):
        observations, target, truth = generate_sda_rounds(rounds=6, seed=1)
        assert observations
        for observation in observations:
            total = sum(observation.counts().values())
            assert total == len(observation.active_senders)

    def test_enough_rounds_disclose_the_correspondent(self):
        hits = 0
        for seed in range(8):
            observations, target, truth = generate_sda_rounds(rounds=24, seed=seed)
            guess = StatisticalDisclosureAttack().estimate(observations, target)
            hits += int(guess == truth)
        assert hits >= 7  # near-certain disclosure

    def test_few_rounds_are_unreliable(self):
        hits = 0
        trials = 10
        for seed in range(trials):
            observations, target, truth = generate_sda_rounds(
                rounds=3, covers=9, recipients=6, seed=seed
            )
            guess = StatisticalDisclosureAttack().estimate(observations, target)
            hits += int(guess == truth)
        assert hits < trials  # not yet certain

    def test_accuracy_grows_with_observation_time(self):
        def accuracy(rounds):
            hits = 0
            for seed in range(8):
                observations, target, truth = generate_sda_rounds(
                    rounds=rounds, covers=9, recipients=6, seed=seed
                )
                guess = StatisticalDisclosureAttack().estimate(observations, target)
                hits += int(guess == truth)
            return hits / 8

        assert accuracy(4) <= accuracy(32)
        assert accuracy(32) >= 0.75
