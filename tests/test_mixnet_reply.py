"""System tests for untraceable return addresses (Chaum 1981)."""

import random

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.mixnet import (
    MIX_PROTOCOL,
    MixNode,
    MixReceiver,
    ReplyPacket,
    build_onion,
    build_return_address,
    make_message,
    make_reply_body,
)


def _reply_world(mixes=2, batch_size=1):
    """Alice messages Bob through mixes; Bob replies via a return address."""
    world = World()
    from repro.net.network import Network

    network = Network()
    alice = Subject("alice")
    bob = Subject("bob")

    alice_entity = world.entity("Sender", "alice-device", trusted_by_user=True)
    bob_entity = world.entity("Receiver", "bob-org")
    nodes = [
        MixNode(
            network,
            world.entity(f"Mix {i}", f"mix-org-{i}"),
            name=f"mix-{i}",
            key_id=f"mk-{i}",
            batch_size=batch_size,
            rng=random.Random(i),
        )
        for i in range(1, mixes + 1)
    ]
    # Alice's inbox for replies: a MixReceiver on her side.
    alice_inbox = MixReceiver(network, alice_entity, name="alice-inbox", key_id="alice-reply")
    bob_inbox = MixReceiver(network, bob_entity, name="bob-inbox", key_id="bob-recv")

    alice_identity = LabeledValue("ip-alice", SENSITIVE_IDENTITY, alice, "sender ip")
    alice_host = network.add_host("alice", alice_entity, identity=alice_identity)

    return world, network, alice, bob, nodes, alice_inbox, bob_inbox, alice_host


class TestReplyDelivery:
    def test_reply_reaches_the_sender(self):
        world, network, alice, bob, nodes, alice_inbox, bob_inbox, alice_host = (
            _reply_world()
        )
        # Forward: alice -> bob with a return address enclosed.
        route = [(n.key_id, n.address) for n in nodes]
        reverse = [(n.key_id, n.address) for n in reversed(nodes)]
        return_address = build_return_address(reverse, alice_inbox.address, alice)
        message = make_message("hello bob", alice)
        onion = build_onion(route, bob_inbox.key_id, bob_inbox.address, [message, return_address])
        alice_host.send(nodes[0].address, onion, MIX_PROTOCOL)
        network.run()
        assert len(bob_inbox.received) == 1

        # Reverse: bob attaches a body to the return address.
        body = make_reply_body("hello back, whoever you are", "alice-reply", bob)
        reply = ReplyPacket(return_onion=return_address, body=body)
        bob_host = bob_inbox.host
        bob_host.send(nodes[-1].address, reply, MIX_PROTOCOL)
        network.run()
        assert len(alice_inbox.received) == 1
        assert alice_inbox.received[0].payload == "hello back, whoever you are"

    def test_receiver_never_learns_the_sender_identity(self):
        world, network, alice, bob, nodes, alice_inbox, bob_inbox, alice_host = (
            _reply_world()
        )
        route = [(n.key_id, n.address) for n in nodes]
        reverse = [(n.key_id, n.address) for n in reversed(nodes)]
        return_address = build_return_address(reverse, alice_inbox.address, alice)
        onion = build_onion(
            route, bob_inbox.key_id, bob_inbox.address,
            [make_message("hi", alice), return_address],
        )
        alice_host.send(nodes[0].address, onion, MIX_PROTOCOL)
        network.run()
        body = make_reply_body("re: hi", "alice-reply", bob)
        bob_inbox.host.send(
            nodes[-1].address,
            ReplyPacket(return_onion=return_address, body=body),
            MIX_PROTOCOL,
        )
        network.run()

        receiver_labels = world.ledger.labels_of("Receiver", alice)
        assert SENSITIVE_IDENTITY not in receiver_labels
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.verdict().decoupled

    def test_mixes_never_see_the_reply_plaintext(self):
        world, network, alice, bob, nodes, alice_inbox, bob_inbox, alice_host = (
            _reply_world()
        )
        reverse = [(n.key_id, n.address) for n in reversed(nodes)]
        return_address = build_return_address(reverse, alice_inbox.address, alice)
        body = make_reply_body("secret reply", "alice-reply", bob)
        bob_inbox.host.send(
            nodes[-1].address,
            ReplyPacket(return_onion=return_address, body=body),
            MIX_PROTOCOL,
        )
        network.run()
        for index in range(1, len(nodes) + 1):
            labels = world.ledger.labels_of(f"Mix {index}", bob)
            assert SENSITIVE_DATA not in labels


class TestValidation:
    def test_empty_reverse_route_rejected(self):
        with pytest.raises(ValueError):
            build_return_address([], None, Subject("a"))
