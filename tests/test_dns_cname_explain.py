"""Tests for CNAME chasing, negative caching, and analyzer narration."""

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
from repro.net.network import Network

ALICE = Subject("alice")


def _setup():
    world, network = World(), Network()
    registry = ZoneRegistry()
    zone = Zone("example.com")
    zone.add("web.example.com", "203.0.113.5")
    zone.add_cname("www.example.com", "web.example.com")
    zone.add_cname("alias.example.com", "www.example.com")  # two-step chain
    zone.add_cname("loop-a.example.com", "loop-b.example.com")
    zone.add_cname("loop-b.example.com", "loop-a.example.com")
    auth = AuthoritativeServer(network, world.entity("Auth", "dns-infra"), zone, registry)
    resolver = RecursiveResolver(network, world.entity("Resolver", "r-org"), registry)
    host = network.add_host(
        "client",
        world.entity("Client", "device", trusted_by_user=True),
        identity=LabeledValue("ip", SENSITIVE_IDENTITY, ALICE, "client ip"),
    )
    return world, network, auth, resolver, StubResolver(host, resolver.address)


class TestCname:
    def test_single_step_chain(self):
        world, network, auth, resolver, stub = _setup()
        answer = stub.lookup("www.example.com", ALICE)
        assert answer.rdata == "203.0.113.5"
        assert answer.qname == "www.example.com"  # original question kept

    def test_two_step_chain(self):
        world, network, auth, resolver, stub = _setup()
        answer = stub.lookup("alias.example.com", ALICE)
        assert answer.rdata == "203.0.113.5"

    def test_cname_query_returns_the_alias_target(self):
        world, network, auth, resolver, stub = _setup()
        answer = stub.lookup("www.example.com", ALICE, qtype="CNAME")
        assert answer.rdata == "web.example.com"

    def test_cname_loops_are_bounded(self):
        world, network, auth, resolver, stub = _setup()
        with pytest.raises(RuntimeError):
            stub.lookup("loop-a.example.com", ALICE)

    def test_chain_is_cached_per_link(self):
        world, network, auth, resolver, stub = _setup()
        stub.lookup("www.example.com", ALICE)
        served_before = auth.queries_served
        stub.lookup("www.example.com", ALICE)
        assert auth.queries_served == served_before  # fully from cache


class TestNegativeCaching:
    def test_nxdomain_has_short_ttl(self):
        zone = Zone("example.com", default_ttl=300, negative_ttl=30)
        answer = zone.lookup("missing.example.com")
        assert answer.is_nxdomain and answer.ttl == 30

    def test_negative_answers_expire_sooner(self):
        world, network, auth, resolver, stub = _setup()
        resolver_zone_ttl = 60.0  # Zone default negative_ttl
        stub.lookup("missing.example.com", ALICE)
        served = auth.queries_served
        network.simulator.advance(resolver_zone_ttl / 2)
        stub.lookup("missing.example.com", ALICE)
        assert auth.queries_served == served  # still cached
        network.simulator.advance(resolver_zone_ttl)
        stub.lookup("missing.example.com", ALICE)
        assert auth.queries_served == served + 1  # expired


class TestExplain:
    def test_explain_names_what_was_seen(self):
        world, network, auth, resolver, stub = _setup()
        stub.lookup("www.example.com", ALICE)
        text = DecouplingAnalyzer(world).explain("Resolver")
        assert "What Resolver learned" in text
        assert "alice" in text
        assert "client ip" in text
        assert "dns qname" in text
        assert "can attribute sensitive data" in text

    def test_explain_for_silent_entity(self):
        world = World()
        world.entity("Ghost", "g-org")
        assert "observed nothing" in DecouplingAnalyzer(world).explain("Ghost")

    def test_explain_deduplicates_repeats(self):
        world, network, auth, resolver, stub = _setup()
        for index in range(20):
            stub.lookup(f"n{index}.example.com", ALICE)
        text = DecouplingAnalyzer(world).explain("Resolver")
        # 20 queries, one information class: a single narrated line.
        assert text.count("dns qname") == 1

    def test_explain_caps_distinct_items(self):
        from repro.core.labels import SENSITIVE_DATA
        from repro.core.values import LabeledValue

        world = World()
        entity = world.entity("Hoarder", "h-org")
        for index in range(10):
            entity.observe(
                LabeledValue(f"v{index}", SENSITIVE_DATA, ALICE, f"fact {index}"),
                session=f"s{index}",
            )
        text = DecouplingAnalyzer(world).explain("Hoarder", max_items=3)
        assert "..." in text
        assert text.count("fact") == 3
