"""RFC test vectors and property tests: ChaCha20-Poly1305, HKDF, hashes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.chacha20poly1305 import (
    ChaCha20Poly1305,
    chacha20_block,
    chacha20_encrypt,
    poly1305_mac,
)
from repro.crypto.hashutil import (
    constant_time_equal,
    expand_message_xmd,
    full_domain_hash,
    i2osp,
    os2ip,
)
from repro.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract


class TestChaCha20Rfc8439:
    def test_block_function_vector_2_3_2(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, 1, nonce)
        assert block[:16].hex() == "10f1e7e4d13b5915500fdd1fa32071c4"
        assert block[-16:].hex() == "b5129cd1de164eb9cbd083e8a2503c4e"

    def test_encrypt_vector_2_4_2(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = chacha20_encrypt(key, 1, nonce, plaintext)
        assert ciphertext[:16].hex() == "6e2e359a2568f98041ba0728dd0d6981"
        # counter-mode is an involution
        assert chacha20_encrypt(key, 1, nonce, ciphertext) == plaintext

    def test_poly1305_vector_2_5_2(self):
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
        )
        tag = poly1305_mac(key, b"Cryptographic Forum Research Group")
        assert tag.hex() == "a8061dc1305136c6c22b8baf0c0127a9"

    def test_aead_vector_2_8_2(self):
        key = bytes(range(0x80, 0xA0))
        nonce = bytes.fromhex("070000004041424344454647")
        aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        sealed = ChaCha20Poly1305(key).seal(nonce, plaintext, aad)
        assert sealed[:16].hex() == "d31a8d34648e60db7b86afbc53ef7ec2"
        assert sealed[-16:].hex() == "1ae10b594f09e26a7e902ecbd0600691"

    def test_aead_rejects_tampering(self):
        aead = ChaCha20Poly1305(b"\x01" * 32)
        sealed = bytearray(aead.seal(b"\x02" * 12, b"msg", b"aad"))
        sealed[0] ^= 1
        with pytest.raises(ValueError):
            aead.open(b"\x02" * 12, bytes(sealed), b"aad")

    def test_aead_rejects_wrong_aad(self):
        aead = ChaCha20Poly1305(b"\x01" * 32)
        sealed = aead.seal(b"\x02" * 12, b"msg", b"aad")
        with pytest.raises(ValueError):
            aead.open(b"\x02" * 12, sealed, b"other")

    def test_aead_rejects_short_input_and_bad_sizes(self):
        aead = ChaCha20Poly1305(b"\x01" * 32)
        with pytest.raises(ValueError):
            aead.open(b"\x02" * 12, b"short")
        with pytest.raises(ValueError):
            ChaCha20Poly1305(b"short")
        with pytest.raises(ValueError):
            aead.seal(b"bad-nonce", b"msg")

    @given(st.binary(max_size=300), st.binary(max_size=40))
    @settings(max_examples=15)
    def test_aead_roundtrip(self, plaintext, aad):
        aead = ChaCha20Poly1305(b"\x07" * 32)
        nonce = b"\x0b" * 12
        assert aead.open(nonce, aead.seal(nonce, plaintext, aad), aad) == plaintext


class TestHkdfRfc5869:
    def test_case_1(self):
        okm = hkdf(
            ikm=b"\x0b" * 22,
            salt=bytes(range(13)),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
            length=42,
        )
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3_no_salt_no_info(self):
        okm = hkdf(ikm=b"\x0b" * 22, length=42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_extract_then_expand_matches_one_shot(self):
        prk = hkdf_extract(b"salt", b"ikm")
        assert hkdf_expand(prk, b"info", 32) == hkdf(b"ikm", b"salt", b"info", 32)

    def test_expand_length_limit(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=15)
    def test_expand_prefix_property(self, length):
        prk = hkdf_extract(b"s", b"k")
        long_output = hkdf_expand(prk, b"i", 200)
        assert hkdf_expand(prk, b"i", length) == long_output[:length]


class TestHashUtil:
    def test_i2osp_os2ip_roundtrip(self):
        assert os2ip(i2osp(123456, 8)) == 123456

    def test_i2osp_bounds(self):
        with pytest.raises(ValueError):
            i2osp(256, 1)
        with pytest.raises(ValueError):
            i2osp(-1, 4)

    def test_full_domain_hash_fills_requested_width(self):
        value = full_domain_hash(b"m", 64)
        assert 0 <= value < 1 << (64 * 8)
        assert value.bit_length() > 64 * 8 - 32  # overwhelmingly likely

    def test_expand_message_xmd_lengths_and_determinism(self):
        a = expand_message_xmd(b"msg", b"DST", 48)
        b = expand_message_xmd(b"msg", b"DST", 48)
        assert a == b and len(a) == 48
        assert expand_message_xmd(b"msg", b"DST2", 48) != a

    def test_expand_message_xmd_limits(self):
        with pytest.raises(ValueError):
            expand_message_xmd(b"m", b"d" * 300, 32)

    def test_constant_time_equal(self):
        assert constant_time_equal(b"ab", b"ab")
        assert not constant_time_equal(b"ab", b"ac")
