"""Segment lifecycle: seal, spill, reload, stream, account, clear."""

import os

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import NONSENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.ledger import Ledger
from repro.core.values import LabeledValue, Subject, digest

ALICE = Subject("alice")
BOB = Subject("bob")


def _fill(ledger: Ledger, rows: int, *, entity="Server", org="org-s") -> None:
    for index in range(rows):
        subject = ALICE if index % 2 == 0 else BOB
        ledger.record(
            entity,
            org,
            LabeledValue(f"v{index}", NONSENSITIVE_DATA, subject, "blob"),
            session=f"s{index % 3}",
        )


class TestSegmentRoll:
    def test_active_segment_rolls_at_configured_rows(self):
        ledger = Ledger()
        ledger.configure_segments(rows=4)
        _fill(ledger, 10)
        assert len(ledger.segments) == 3
        assert [seg.count for seg in ledger.segments] == [4, 4, 2]
        assert [seg.start for seg in ledger.segments] == [0, 4, 8]
        assert len(ledger) == 10

    def test_configure_rejects_nonpositive_rows(self):
        with pytest.raises(ValueError):
            Ledger().configure_segments(rows=0)

    def test_record_fast_batches_never_straddle_segments(self):
        ledger = Ledger()
        ledger.configure_segments(rows=3)
        values = [
            LabeledValue(f"v{i}", NONSENSITIVE_DATA, ALICE, "blob")
            for i in range(5)
        ]
        ledger.record_fast("Server", "org-s", values, session="s1")
        # One batch = one segment-local append: the roll happens after.
        assert ledger.segments[0].count == 5
        ledger.record("Server", "org-s", values[0], session="s2")
        assert len(ledger.segments) == 2
        assert ledger.segments[1].count == 1

    def test_version_bumps_once_per_batch(self):
        ledger = Ledger()
        before = ledger.version
        values = [
            LabeledValue(f"v{i}", NONSENSITIVE_DATA, ALICE, "blob")
            for i in range(4)
        ]
        ledger.record_fast("Server", "org-s", values, session="s1")
        assert ledger.version == before + 1
        ledger.record("Server", "org-s", values[0], session="s2")
        assert ledger.version == before + 2


class TestSealAndSpill:
    def test_seal_freezes_rows_and_buckets(self):
        ledger = Ledger()
        _fill(ledger, 6)
        segment = ledger.seal_active_segment()
        assert segment.sealed
        assert isinstance(segment.rows, tuple)
        assert isinstance(segment.by_subject["alice"], tuple)
        # A fresh active segment took over.
        assert ledger.active_segment is not segment
        assert ledger.active_segment.count == 0

    def test_seal_empty_active_segment_is_a_noop(self):
        ledger = Ledger()
        assert ledger.seal_active_segment() is None
        assert len(ledger.segments) == 1

    def test_spill_and_reload_round_trips_rows(self, tmp_path):
        ledger = Ledger()
        ledger.configure_segments(rows=4, spill=True, directory=str(tmp_path))
        _fill(ledger, 10)
        spilled = [seg for seg in ledger.segments if not seg.resident]
        assert len(spilled) == 2
        for seg in spilled:
            assert os.path.exists(seg.spill_path)
            assert seg.keys is not None
            assert "alice" in seg.keys["by_subject"]
        # Reload transparently via a bucket query.
        rows = ledger.by_subject(ALICE)
        assert len(rows) == 5
        assert [obs.value_digest for obs in ledger] == [
            digest(f"v{i}") for i in range(10)
        ]

    def test_key_summaries_avoid_reloads_for_absent_keys(self, tmp_path):
        ledger = Ledger()
        ledger.configure_segments(rows=4, spill=True, directory=str(tmp_path))
        _fill(ledger, 8)
        _fill(ledger, 2, entity="Other", org="org-o")
        before = ledger.memory_accounting()["segment_reloads"]
        # "Other" only ever appears in the active segment: no reload.
        assert len(ledger.by_entity("Other")) == 2
        assert ledger.memory_accounting()["segment_reloads"] == before

    def test_stream_rows_does_not_change_residency(self, tmp_path):
        ledger = Ledger()
        ledger.configure_segments(rows=4, spill=True, directory=str(tmp_path))
        _fill(ledger, 10)
        resident_before = ledger.memory_accounting()["resident_rows"]
        streamed = list(ledger.rows_between(0, len(ledger)))
        assert [obs.value_digest for obs in streamed] == [
            digest(f"v{i}") for i in range(10)
        ]
        after = ledger.memory_accounting()
        assert after["resident_rows"] == resident_before
        assert after["segment_reloads"] == 0
        # Partial slices across a spilled segment stream too.
        window = list(ledger.rows_between(2, 7))
        assert [obs.value_digest for obs in window] == [
            digest(f"v{i}") for i in range(2, 7)
        ]
        assert ledger.memory_accounting()["segment_reloads"] == 0


class TestAccountingAndClear:
    def test_memory_accounting_shape(self, tmp_path):
        ledger = Ledger()
        ledger.configure_segments(rows=4, spill=True, directory=str(tmp_path))
        _fill(ledger, 10)
        accounting = ledger.memory_accounting()
        assert accounting == {
            "total_rows": 10,
            "resident_rows": 2,
            "segments": 3,
            "segments_sealed": 2,
            "segments_spilled": 2,
            "rows_spilled": 8,
            "segment_reloads": 0,
        }

    def test_clear_discards_spill_files_and_bumps_generation(self, tmp_path):
        ledger = Ledger()
        ledger.configure_segments(rows=4, spill=True, directory=str(tmp_path))
        _fill(ledger, 10)
        paths = [
            seg.spill_path for seg in ledger.segments if seg.spill_path
        ]
        assert paths
        generation = ledger.generation
        ledger.clear()
        assert ledger.generation == generation + 1
        assert len(ledger) == 0
        assert len(ledger.segments) == 1
        for path in paths:
            assert not os.path.exists(path)
        accounting = ledger.memory_accounting()
        assert accounting["total_rows"] == 0
        assert accounting["segments_spilled"] == 0

    def test_seal_listener_fires_while_resident(self):
        ledger = Ledger()
        ledger.configure_segments(rows=3, spill=True)
        seen = []

        def listener(led, segment):
            seen.append((segment.index, segment.resident))

        ledger.add_seal_listener(listener)
        _fill(ledger, 7)
        assert seen == [(0, True), (1, True)]

    def test_merged_ledger_preserves_analysis(self):
        world_a, world_b = World(), World()
        for world in (world_a, world_b):
            world.entity("User", "device", trusted_by_user=True)
            world.entity("Server", "org-s")
        world_a.ledger.record(
            "Server",
            "org-s",
            LabeledValue("ip-a", SENSITIVE_IDENTITY, ALICE, "addr"),
            session="s1",
        )
        world_b.ledger.record(
            "Server",
            "org-s",
            LabeledValue("q-a", NONSENSITIVE_DATA, ALICE, "query"),
            session="s1",
        )
        merged = world_a.ledger.merged(world_b.ledger)
        assert len(merged) == 2
        assert merged.version == len(merged)


class TestSpillDirHygiene:
    def test_two_ledgers_get_distinct_spill_dirs(self):
        """Regression (satellite 6): concurrent spilling ledgers --
        e.g. ``scale_sweep(jobs=N)`` workers forked from one parent --
        must never collide on temp paths."""
        first, second = Ledger(), Ledger()
        first.configure_segments(rows=2, spill=True)
        second.configure_segments(rows=2, spill=True)
        _fill(first, 5)
        _fill(second, 5)
        dirs = {
            os.path.dirname(seg.spill_path)
            for ledger in (first, second)
            for seg in ledger.segments
            if seg.spill_path
        }
        assert len(dirs) == 2
        for directory in dirs:
            assert f"-{os.getpid()}-" in os.path.basename(directory)

    def test_explicit_directory_is_not_owned(self, tmp_path):
        target = tmp_path / "spills"
        ledger = Ledger()
        ledger.configure_segments(rows=2, spill=True, directory=str(target))
        _fill(ledger, 5)
        assert target.is_dir()
        ledger.clear()
        # The ledger deletes its files but never a directory it was
        # handed (it only removes directories it created itself).
        assert target.is_dir()


def test_analyzer_over_spilled_ledger_matches_naive(tmp_path):
    world = World()
    world.entity("User", "device", trusted_by_user=True)
    world.entity("Server", "org-s")
    world.ledger.configure_segments(rows=3, spill=True, directory=str(tmp_path))
    for index in range(10):
        world.ledger.record(
            "Server",
            "org-s",
            LabeledValue(
                f"ip-{index % 2}",
                SENSITIVE_IDENTITY,
                ALICE if index % 2 == 0 else BOB,
                "addr",
            ),
            session=f"s{index}",
        )
    streaming = DecouplingAnalyzer(world)
    naive = DecouplingAnalyzer(world, naive=True)
    assert str(streaming.verdict()) == str(naive.verdict())
