"""Indexed-analyzer equivalence: the fast path must equal the naive one.

The indexed ledger and the memoized analyzer exist only for speed;
their contract is that every derived fact -- verdicts, breach reports,
knowledge tables, coalitions -- is *identical* to what the original
full-scan reference (``DecouplingAnalyzer(world, naive=True)``)
computes.  These tests check that on seeded randomized ledgers that
exercise every linkage feature (sessions, shared digests, secret
shares, identity facets, channels), and that memoized results
invalidate correctly when observations are appended after a query.
"""

import random

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    PARTIAL_SENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_HUMAN_IDENTITY,
    SENSITIVE_IDENTITY,
    SENSITIVE_NETWORK_IDENTITY,
)
from repro.core.tuples import facets_in_ledger
from repro.core.values import LabeledValue, ShareInfo, Subject

_LABELS = (
    SENSITIVE_IDENTITY,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    PARTIAL_SENSITIVE_DATA,
    NONSENSITIVE_DATA,
    SENSITIVE_HUMAN_IDENTITY,
    SENSITIVE_NETWORK_IDENTITY,
)

_CHANNELS = ("message", "wire", "attestation", "breach")


def _random_world(seed, entities=5, subjects=6, observations=120):
    """A randomized ledger touching every linkage feature.

    Payload collisions (shared value digests), shared sessions, and
    secret-share groups are all drawn with enough probability that the
    coupling analysis sees reconstructions and cross-entity joins.
    """
    rng = random.Random(seed)
    world = World()
    world.entity("User", "user-device", trusted_by_user=True)
    cast = [world.entity(f"E{i}", f"org-{i % max(entities - 1, 1)}") for i in range(entities)]
    subject_pool = [Subject(f"s{i}") for i in range(subjects)]
    for index in range(observations):
        entity = rng.choice(cast)
        subject = rng.choice(subject_pool)
        label = rng.choice(_LABELS)
        share_info = None
        if label is NONSENSITIVE_DATA and rng.random() < 0.25:
            group = f"grp-{rng.randrange(4)}"
            share_info = ShareInfo(group=group, index=rng.randrange(3), total=3)
        # A small payload space makes digest collisions (cross-entity
        # linkage through a shared value) common on purpose.
        value = LabeledValue(
            payload=f"v{rng.randrange(20)}",
            label=label,
            subject=subject,
            description=f"d{rng.randrange(8)}",
            share_info=share_info,
        )
        entity.observe(
            value,
            time=float(index),
            channel=rng.choice(_CHANNELS),
            session=f"sess-{rng.randrange(25)}" if rng.random() < 0.7 else "",
        )
    return world


def _assert_equivalent(world):
    indexed = DecouplingAnalyzer(world)
    naive = DecouplingAnalyzer(world, naive=True)
    assert indexed.facets() == naive.facets()
    assert indexed.verdict() == naive.verdict()
    assert indexed.verdict(trust_attested=True) == naive.verdict(trust_attested=True)
    assert indexed.breach_reports() == naive.breach_reports()
    assert indexed.table().render() == naive.table().render()
    assert (
        indexed.minimal_recoupling_coalitions()
        == naive.minimal_recoupling_coalitions()
    )
    assert indexed.collusion_resistance() == naive.collusion_resistance()
    for subject in world.ledger.subjects():
        for entity in world.ledger.entities():
            assert indexed.entity_couples(entity, subject) == naive.entity_couples(
                entity, subject
            ), (entity, subject)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_indexed_matches_naive(self, seed):
        _assert_equivalent(_random_world(seed))

    def test_many_entities_few_subjects(self):
        _assert_equivalent(_random_world(101, entities=12, subjects=2))

    def test_few_entities_many_subjects(self):
        _assert_equivalent(_random_world(202, entities=2, subjects=15))

    def test_empty_ledger(self):
        world = World()
        world.entity("User", "user-device", trusted_by_user=True)
        world.entity("Server", "server-org")
        _assert_equivalent(world)

    def test_facets_in_ledger_naive_flag_matches(self):
        world = _random_world(303)
        assert facets_in_ledger(world.ledger) == facets_in_ledger(
            world.ledger, naive=True
        )


class TestLedgerIndices:
    def test_index_accessors_match_scans(self):
        world = _random_world(7)
        ledger = world.ledger
        all_obs = list(ledger)
        for entity in ledger.entities():
            assert list(ledger.by_entity(entity)) == [
                o for o in all_obs if o.entity == entity
            ]
        for subject in ledger.subjects():
            assert list(ledger.by_subject(subject)) == [
                o for o in all_obs if o.subject == subject
            ]
        for entity in ledger.entities():
            for subject in ledger.subjects():
                assert list(ledger.by_pair(entity, subject)) == [
                    o for o in all_obs if o.entity == entity and o.subject == subject
                ]
        orgs = {o.organization for o in all_obs}
        for org in orgs:
            for subject in ledger.subjects():
                assert list(ledger.by_org_subject(org, subject)) == [
                    o
                    for o in all_obs
                    if o.organization == org and o.subject == subject
                ]

    def test_subjects_of_entity_preserves_global_order(self):
        world = _random_world(11)
        ledger = world.ledger
        for entity in ledger.entities():
            expected = [
                s
                for s in ledger.subjects()
                if any(o.subject == s for o in ledger.by_entity(entity))
            ]
            assert list(ledger.subjects_of_entity(entity)) == expected

    def test_version_counts_mutations(self):
        world = _random_world(13, observations=17)
        assert world.ledger.version == 17
        world.ledger.clear()
        assert world.ledger.version == 18
        assert world.ledger.subjects() == ()
        assert world.ledger.entities() == ()

    def test_merged_ledger_is_fully_indexed(self):
        a, b = _random_world(21, observations=30), _random_world(22, observations=30)
        merged = a.ledger.merged(b.ledger)
        assert len(merged) == 60
        for entity in merged.entities():
            assert list(merged.by_entity(entity)) == [
                o for o in merged if o.entity == entity
            ]
        assert merged.identity_facets() == (
            a.ledger.identity_facets() | b.ledger.identity_facets()
        )

    def test_labels_of_channel_filter_matches_scan(self):
        world = _random_world(31)
        ledger = world.ledger
        for entity in ledger.entities():
            for channel in _CHANNELS:
                expected = {
                    o.label
                    for o in ledger
                    if o.entity == entity and o.channel == channel
                }
                assert ledger.labels_of(entity, channels=[channel]) == expected


class TestMemoInvalidation:
    def test_append_after_memoized_query_invalidates(self):
        """Recording after a query must flip the memoized answer."""
        world = World()
        world.entity("User", "user-device", trusted_by_user=True)
        server = world.entity("Server", "server-org")
        alice = Subject("alice")
        analyzer = DecouplingAnalyzer(world)

        server.observe(
            LabeledValue("1.2.3.4", SENSITIVE_IDENTITY, alice, "ip"),
            channel="wire",
            session="sess-1",
        )
        assert not analyzer.entity_couples("Server", alice)
        assert analyzer.verdict().decoupled

        # Same session as the identity above: this couples.
        server.observe(
            LabeledValue("secret-query", SENSITIVE_DATA, alice, "query"),
            channel="wire",
            session="sess-1",
        )
        assert analyzer.entity_couples("Server", alice)
        verdict = analyzer.verdict()
        assert not verdict.decoupled
        assert verdict == DecouplingAnalyzer(world, naive=True).verdict()

    def test_facets_memo_invalidates_on_append(self):
        world = World()
        world.entity("User", "user-device", trusted_by_user=True)
        server = world.entity("Server", "server-org")
        alice = Subject("alice")
        analyzer = DecouplingAnalyzer(world)
        server.observe(LabeledValue("x", SENSITIVE_IDENTITY, alice, "ip"))
        first = analyzer.facets()
        server.observe(LabeledValue("imsi", SENSITIVE_NETWORK_IDENTITY, alice, "imsi"))
        assert analyzer.facets() != first
        assert analyzer.facets() == DecouplingAnalyzer(world, naive=True).facets()

    def test_breach_reports_track_appends(self):
        world = _random_world(41, observations=40)
        analyzer = DecouplingAnalyzer(world)
        before = analyzer.breach_reports()
        entity = next(iter(world.non_user_entities()))
        entity.observe(
            LabeledValue("late-ip", SENSITIVE_IDENTITY, Subject("s0"), "ip"),
            time=999.0,
            session="late-sess",
        )
        entity.observe(
            LabeledValue("late-query", SENSITIVE_DATA, Subject("s0"), "query"),
            time=999.5,
            session="late-sess",
        )
        after = analyzer.breach_reports()
        assert after != before
        assert after == DecouplingAnalyzer(world, naive=True).breach_reports()


class TestObservationHashing:
    def test_cached_hash_matches_field_tuple_semantics(self):
        world = _random_world(51, observations=10)
        for obs in world.ledger:
            assert hash(obs) == hash(obs)
        # Equal observations (same fields) hash equal.
        a = list(world.ledger)[0]
        import dataclasses

        b = dataclasses.replace(a)
        assert a == b
        assert hash(a) == hash(b)
