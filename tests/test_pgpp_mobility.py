"""Tests for mobility models and their effect on tracking."""

import random
import statistics

import pytest

from repro.pgpp import (
    TrajectoryLinker,
    commuter,
    extract_epoch_tracks,
    make_mobility,
    random_walk,
    run_pgpp,
    stationary,
    tracking_accuracy,
)


class TestModels:
    def test_walk_stays_in_range_and_moves_locally(self):
        rng = random.Random(1)
        path = random_walk(rng, cells=5, steps=50, user_index=0)
        assert len(path) == 50
        assert all(0 <= cell < 5 for cell in path)
        assert all(abs(a - b) <= 1 for a, b in zip(path, path[1:]))

    def test_commuter_oscillates_between_two_cells(self):
        rng = random.Random(2)
        path = commuter(rng, cells=6, steps=6, user_index=1)
        assert len(set(path)) == 2
        assert path[0] == path[2] == path[4]

    def test_commuter_habit_is_stable_across_calls(self):
        a = commuter(random.Random(3), 6, 4, user_index=2)
        b = commuter(random.Random(99), 6, 4, user_index=2)
        assert a == b  # habit depends on the user, not the rng

    def test_stationary_never_moves(self):
        path = stationary(random.Random(4), cells=4, steps=10, user_index=3)
        assert len(set(path)) == 1

    def test_make_mobility_resolves_and_validates(self):
        assert make_mobility("walk") is random_walk
        with pytest.raises(ValueError):
            make_mobility("teleport")


class TestTrackingByMobility:
    def _accuracy(self, mobility: str) -> float:
        values = []
        for seed in range(5):
            run = run_pgpp(
                users=8, cells=8, steps=4, epochs=3, seed=seed, mobility=mobility
            )
            chains = TrajectoryLinker().link(
                extract_epoch_tracks(run.core.mobility_log)
            )
            values.append(tracking_accuracy(chains, run.imsi_truth()))
        return statistics.mean(values)

    def test_predictable_mobility_defeats_rotation(self):
        """Stationary users are perfectly trackable despite rotating
        IMSIs; random walkers approach chance -- the PGPP paper's
        anonymity caveat in miniature."""
        walk = self._accuracy("walk")
        fixed = self._accuracy("stationary")
        assert fixed == 1.0
        assert walk < 0.3

    def test_commuters_sit_in_between(self):
        walk = self._accuracy("walk")
        commute = self._accuracy("commuter")
        fixed = self._accuracy("stationary")
        assert walk < commute < fixed

    def test_tables_are_unaffected_by_mobility(self):
        """Knowledge tables are mobility-independent: the leak is in
        trajectory linkage, not labels -- which is why the paper's
        tuple analysis alone cannot capture it."""
        from repro.pgpp import PAPER_TABLE_T5

        for mobility in ("walk", "commuter", "stationary"):
            run = run_pgpp(users=3, epochs=2, mobility=mobility)
            assert run.table().as_mapping() == PAPER_TABLE_T5
