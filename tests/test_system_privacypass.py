"""System tests: T3/F2, Privacy Pass (paper section 3.2.1)."""

import pytest

from repro.privacypass import PAPER_TABLE_T3, run_privacy_pass


@pytest.fixture(scope="module")
def run():
    return run_privacy_pass(tokens=3)


class TestPaperTable:
    def test_derived_table_matches_the_paper(self, run):
        assert run.table().as_mapping() == PAPER_TABLE_T3

    def test_system_is_decoupled(self, run):
        assert run.analyzer.verdict().decoupled

    def test_all_tokens_redeemed(self, run):
        assert run.tokens_redeemed == 3
        assert run.origin.served == 3


class TestUnlinkability:
    def test_no_coalition_can_recouple(self, run):
        """VOPRF unlinkability: issuer + origin collusion learns nothing
        that joins the attestation account to the origin request."""
        assert run.analyzer.minimal_recoupling_coalitions() == ()

    def test_issuer_never_saw_the_request(self, run):
        issuer_data = [
            o for o in run.world.ledger.by_entity("Issuer") if o.label.is_data
        ]
        assert issuer_data and all(not o.label.is_sensitive for o in issuer_data)

    def test_origin_never_saw_the_account(self, run):
        for obs in run.world.ledger.by_entity("Origin"):
            if obs.label.is_identity:
                assert not obs.label.is_sensitive


class TestTokenSecurity:
    def test_double_spend_rejected(self):
        run = run_privacy_pass(tokens=1)
        token = run.client.tokens[0]
        outcome = run.client.redeem(run.origin, token, "again")
        assert not outcome.accepted and outcome.reason == "double spend"

    def test_forged_token_rejected(self):
        from repro.privacypass.tokens import Token

        run = run_privacy_pass(tokens=1)
        forged = Token(nonce=b"\x99" * 16, prf_output=b"\x00" * 32)
        outcome = run.client.redeem(run.origin, forged, "forged")
        assert not outcome.accepted and outcome.reason == "invalid token"

    def test_issuance_count_tracks(self, run):
        assert run.issuer.issued == 3
