"""System tests for Oblivious HTTP with real HPKE on the wire."""

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Subject
from repro.http.ohttp import OhttpClient, OhttpGateway, OhttpRelay
from repro.net.network import Network

ALICE = Subject("alice")


def _setup():
    world = World()
    network = Network()
    client_entity = world.entity("Client", "client-device", trusted_by_user=True)
    relay_entity = world.entity("Relay", "relay-org")
    gateway_entity = world.entity("Gateway", "gateway-org")
    gateway = OhttpGateway(
        network,
        gateway_entity,
        app=lambda req: b"response to: " + req,
        key_seed=b"\x21" * 32,
    )
    relay = OhttpRelay(network, relay_entity, gateway.address)
    identity = LabeledValue("198.51.100.12", SENSITIVE_IDENTITY, ALICE, "client ip")
    host = network.add_host("ohttp-client", client_entity, identity=identity)
    client_entity.observe(identity, channel="self", session="self")
    client = OhttpClient(host, relay, gateway, ALICE)
    return world, network, client, relay, gateway


def _request(text="GET /private"):
    return LabeledValue(text, SENSITIVE_DATA, ALICE, "ohttp request")


class TestRoundtrip:
    def test_response_plaintext_arrives(self):
        world, network, client, relay, gateway = _setup()
        response = client.request(_request())
        assert response == b"response to: GET /private"
        assert gateway.requests_served == 1
        assert relay.relayed == 1

    def test_multiple_requests(self):
        world, network, client, relay, gateway = _setup()
        for index in range(3):
            response = client.request(_request(f"GET /{index}"))
            assert response.endswith(f"/{index}".encode())


class TestDecoupling:
    def test_relay_sees_identity_but_no_plaintext(self):
        world, network, client, relay, gateway = _setup()
        client.request(_request())
        relay_labels = world.ledger.labels_of("Relay")
        assert SENSITIVE_IDENTITY in relay_labels
        assert all(not l.is_sensitive for l in relay_labels if l.is_data)

    def test_gateway_sees_plaintext_but_no_identity(self):
        world, network, client, relay, gateway = _setup()
        client.request(_request())
        gateway_labels = world.ledger.labels_of("Gateway")
        assert SENSITIVE_DATA in gateway_labels
        assert SENSITIVE_IDENTITY not in gateway_labels

    def test_system_is_decoupled_with_relay_gateway_coalition(self):
        world, network, client, relay, gateway = _setup()
        client.request(_request())
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.verdict().decoupled
        coalitions = analyzer.minimal_recoupling_coalitions()
        assert frozenset({"relay-org", "gateway-org"}) in coalitions


class TestIntegrity:
    def test_envelope_mismatch_detected(self):
        """A client lying in the logical envelope is caught."""
        world, network, client, relay, gateway = _setup()
        from repro.http.ohttp import _EncapsulatedRequest
        from repro.core.values import Sealed
        from repro.crypto.hpke import setup_base_sender

        sender = setup_base_sender(gateway.public_key, b"message/bhttp request")
        ciphertext = sender.seal(b"real request")
        envelope = Sealed.wrap(
            gateway.key_id,
            [LabeledValue("different text", SENSITIVE_DATA, ALICE, "lie")],
            subject=ALICE,
        )
        wrapped = _EncapsulatedRequest(
            enc=sender.enc, ciphertext=ciphertext, envelope=envelope
        )
        client.host.send(relay.address, wrapped, "ohttp")
        with pytest.raises(ValueError):
            network.run()

    def test_tampered_ciphertext_rejected(self):
        world, network, client, relay, gateway = _setup()
        from repro.http.ohttp import _EncapsulatedRequest
        from repro.core.values import Sealed
        from repro.crypto.hpke import setup_base_sender

        sender = setup_base_sender(gateway.public_key, b"message/bhttp request")
        ciphertext = bytearray(sender.seal(b"x"))
        ciphertext[0] ^= 1
        envelope = Sealed.wrap(
            gateway.key_id,
            [LabeledValue("x", SENSITIVE_DATA, ALICE, "r")],
            subject=ALICE,
        )
        wrapped = _EncapsulatedRequest(
            enc=sender.enc, ciphertext=bytes(ciphertext), envelope=envelope
        )
        client.host.send(relay.address, wrapped, "ohttp")
        with pytest.raises(ValueError):
            network.run()
