"""Unit tests for the graded-risk subsystem: profiles, scores, reports."""

import json

import pytest

from repro import obs
from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Subject
from repro.risk import (
    DEFAULT_PROFILE,
    ProfileError,
    RiskError,
    SensitivityProfile,
    inferability_rung,
    score_run,
    subject_linkability,
)
from repro.risk.score import (
    INFER_CO_RESIDENT,
    INFER_COUPLED,
    INFER_NONE,
    INFER_ONE_SIDED,
)
from repro.scenario import all_specs, run_scenario

ALICE = Subject("alice")
BOB = Subject("bob")


def _identity(subject=ALICE, payload="ip-1"):
    return LabeledValue(payload, SENSITIVE_IDENTITY, subject, "source ip")


def _data(subject=ALICE, payload="query-1"):
    return LabeledValue(payload, SENSITIVE_DATA, subject, "dns query")


def _world_with(*entity_names, user=True):
    world = World()
    if user:
        world.entity("User", "device", trusted_by_user=True)
    for name in entity_names:
        world.entity(name, f"org-{name}")
    return world


class TestSensitivityProfile:
    def test_default_round_trips_through_json(self):
        restored = SensitivityProfile.from_json(DEFAULT_PROFILE.to_json())
        assert restored.to_dict() == DEFAULT_PROFILE.to_dict()

    def test_unknown_key_rejected(self):
        with pytest.raises(ProfileError, match="unknown profile keys"):
            SensitivityProfile.from_dict({"name": "x", "weights": {}})

    def test_unknown_glyph_rejected(self):
        with pytest.raises(ProfileError, match="unknown glyph"):
            SensitivityProfile(glyph_weights={"?": 1.0})

    def test_out_of_range_weight_rejected(self):
        with pytest.raises(ProfileError, match=r"\[0, 1\]"):
            SensitivityProfile(glyph_weights={"▲": 1.5})

    def test_component_weights_must_sum_to_one(self):
        with pytest.raises(ProfileError, match="sum to 1.0"):
            SensitivityProfile(
                component_weights={
                    "sensitivity": 0.5,
                    "linkability": 0.5,
                    "inferability": 0.5,
                }
            )

    def test_component_weights_must_cover_exactly_three(self):
        with pytest.raises(ProfileError, match="cover exactly"):
            SensitivityProfile(component_weights={"sensitivity": 1.0})

    def test_bad_json_rejected(self):
        with pytest.raises(ProfileError, match="not valid JSON"):
            SensitivityProfile.from_json("{nope")

    def test_description_override_beats_glyph_weight(self):
        profile = SensitivityProfile(
            description_overrides=(("imsi", 1.0), ("ip", 0.9)),
        )
        label = NONSENSITIVE_DATA
        assert profile.weight_for(label, "subscriber IMSI digest") == 1.0
        # First match wins even when a later pattern also matches.
        assert profile.weight_for(label, "imsi-derived ip hint") == 1.0
        # No override match falls back to the glyph weight.
        assert profile.weight_for(label, "padding") == pytest.approx(
            DEFAULT_PROFILE.weight_for(label)
        )

    def test_override_matching_is_case_insensitive(self):
        profile = SensitivityProfile(description_overrides=(("IMSI", 0.7),))
        assert profile.weight_for(NONSENSITIVE_DATA, "imsi tail") == 0.7

    def test_missing_glyph_falls_back_to_defaults(self):
        profile = SensitivityProfile(glyph_weights={"▲": 0.4})
        assert profile.weight_for(SENSITIVE_IDENTITY) == 0.4
        assert profile.weight_for(SENSITIVE_DATA) == pytest.approx(
            DEFAULT_PROFILE.weight_for(SENSITIVE_DATA)
        )

    def test_override_must_be_non_empty_string(self):
        with pytest.raises(ProfileError, match="non-empty string"):
            SensitivityProfile(description_overrides=(("", 0.5),))


class TestLinkability:
    def test_uniform_crowd_of_k_scores_one_over_k(self):
        population = {f"u{i}": 1.0 for i in range(8)}
        assert subject_linkability(population, "u0") == pytest.approx(1 / 8)

    def test_singleton_and_empty_populations_score_one(self):
        assert subject_linkability({"alice": 1.0}, "alice") == 1.0
        assert subject_linkability({}, "alice") == 1.0

    def test_zero_weights_are_ignored(self):
        assert subject_linkability({"alice": 1.0, "ghost": 0.0}, "alice") == 1.0

    def test_heavier_prior_raises_linkability(self):
        skewed = subject_linkability({"alice": 3.0, "bob": 1.0}, "alice")
        uniform = subject_linkability({"alice": 1.0, "bob": 1.0}, "alice")
        assert skewed > uniform

    def test_absent_subject_gets_zero_prior(self):
        population = {"a": 1.0, "b": 1.0}
        inside = subject_linkability(population, "a")
        outside = subject_linkability(population, "stranger")
        assert outside < inside


class TestInferabilityRung:
    def test_ladder_values(self):
        assert inferability_rung(False, False, False) == INFER_NONE
        assert inferability_rung(True, False, False) == INFER_ONE_SIDED
        assert inferability_rung(False, True, False) == INFER_ONE_SIDED
        assert inferability_rung(True, True, False) == INFER_CO_RESIDENT
        assert inferability_rung(True, True, True) == INFER_COUPLED


class TestScoreRun:
    def _coupled_report(self):
        world = _world_with("Server")
        world.get("Server").observe([_identity(), _data()], session="pkt:1")
        return score_run(world=world)

    def test_decomposition_sums_exactly_to_score(self):
        report = self._coupled_report()
        for pair in report.pairs:
            assert sum(t.value for t in pair.terms) == pair.score

    def test_pair_score_equals_max_cell_score(self):
        report = self._coupled_report()
        for pair in report.pairs:
            cell_scores = [
                c.score
                for c in report.cells
                if c.entity == pair.entity and c.subject == pair.subject
            ]
            assert max(cell_scores) == pair.score

    def test_coupled_vantage_scores_higher_than_split_one(self):
        coupled = self._coupled_report()
        world = _world_with("Server")
        server = world.get("Server")
        server.observe(_identity(), session="pkt:1")
        server.observe(_data(), session="pkt:2")
        split = score_run(world=world)
        assert (
            coupled.pair("Server", "alice").score
            > split.pair("Server", "alice").score
        )
        assert not coupled.decoupled
        assert split.decoupled

    def test_unknown_pair_raises_risk_error_naming_known_pairs(self):
        report = self._coupled_report()
        with pytest.raises(RiskError, match=r"\(Server, alice\)"):
            report.pair("Nobody", "alice")

    def test_why_renders_terms_that_sum(self):
        report = self._coupled_report()
        decomposition = report.why("Server", "alice")
        assert sum(t.value for t in decomposition.terms) == decomposition.score
        rendered = decomposition.render()
        assert "risk(Server, alice)" in rendered
        assert "terms sum exactly to the pair score" in rendered
        assert "sensitivity" in rendered and "linkability" in rendered

    def test_population_override_changes_linkability_only(self):
        world = _world_with("Server")
        world.get("Server").observe([_identity(), _data()], session="pkt:1")
        alone = score_run(world=world)
        crowd = score_run(
            world=world,
            population={f"u{i}": 1.0 for i in range(16)} | {"alice": 1.0},
        )
        assert crowd.pair("Server", "alice").linkability < alone.pair(
            "Server", "alice"
        ).linkability
        assert crowd.pair("Server", "alice").sensitivity == alone.pair(
            "Server", "alice"
        ).sensitivity

    def test_share_reconstruction_pins_a_data_witness(self):
        # Coupling without directly sensitive data (a reconstructed
        # share group) must still decompose with a data-side witness.
        run = run_scenario("prio")
        report = score_run(run)
        for pair in report.non_user_pairs():
            if pair.couples:
                assert any(
                    t.component == "inferability" for t in pair.terms
                )
            assert sum(t.value for t in pair.terms) == pair.score

    def test_needs_a_run_or_world(self):
        with pytest.raises(RiskError, match="needs a run or a world"):
            score_run()


class TestRiskReport:
    def test_verdict_matches_analyzer_across_registry(self):
        for spec in all_specs():
            run = run_scenario(spec.id)
            report = score_run(run)
            analyzer = DecouplingAnalyzer(run.world)
            assert report.decoupled == analyzer.verdict().decoupled, spec.id
            assert (
                report.collusion_resistance == analyzer.collusion_resistance()
            ), spec.id
            for pair in report.pairs:
                assert 0.0 <= pair.score <= 1.0, spec.id
                assert sum(t.value for t in pair.terms) == pair.score, spec.id
            for cell in report.cells:
                assert 0.0 <= cell.score <= 1.0, spec.id

    def test_known_grades(self):
        assert score_run(run_scenario("odoh")).grade == "decoupled"
        assert score_run(run_scenario("vpn")).grade == "coupled"
        assert score_run(run_scenario("digital-cash")).grade == "strong"

    def test_system_risk_bounds_and_exposure(self):
        report = score_run(run_scenario("odoh"))
        assert 0.0 <= report.system_risk() <= 1.0
        assert report.system_risk() == max(
            report.subject_exposure(name) for name in report.subjects
        )

    def test_max_pair_is_stable_first_of_maxima(self):
        report = score_run(run_scenario("odoh"))
        best = report.max_pair()
        maxima = [
            p
            for p in report.non_user_pairs()
            if p.score == best.score
        ]
        assert maxima[0] is best

    def test_coalition_curve_is_sane(self):
        report = score_run(run_scenario("odoh"))
        curve = report.coalition_curve()
        assert [row["size"] for row in curve] == list(
            range(1, len(report.organizations) + 1)
        )
        risks = [row["max_risk"] for row in curve]
        # Pooling more organizations can only raise the worst score.
        assert risks == sorted(risks)
        for row in curve:
            assert row["coupling"] <= row["coalitions"]

    def test_to_dict_is_json_serializable_and_deterministic(self):
        first = json.dumps(score_run(run_scenario("odoh")).to_dict())
        second = json.dumps(score_run(run_scenario("odoh")).to_dict())
        assert first == second

    def test_report_without_analyzer_refuses_coalitions(self):
        world = _world_with("Server")
        world.get("Server").observe(_identity(), session="pkt:1")
        report = score_run(world=world)
        report._analyzer = None
        with pytest.raises(RiskError, match="without an analyzer"):
            report.coalition_risks()

    def test_gauges_register_under_capture(self):
        world = _world_with("Server")
        world.get("Server").observe([_identity(), _data()], session="pkt:1")
        with obs.capture() as (_, registry):
            report = score_run(world=world)
            assert registry.counter_value("risk.reports") == 1
            names = {entry["name"] for entry in registry.snapshot()}
            assert {"risk.system", "risk.max_pair", "risk.coupled_pairs"} <= names
            assert registry.gauge("risk.system").to_dict()["value"] == (
                report.system_risk()
            )
