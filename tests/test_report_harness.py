"""Tests for the experiment-report machinery and the harness."""

import pytest

from repro.core.report import ExperimentReport, FlowStep, compare_tables, flow_series
from repro.core.tuples import KnowledgeTable, cell_from_labels
from repro.core.labels import Facet, SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.ledger import Ledger
from repro.core.values import LabeledValue, Subject

ALICE = Subject("alice")


class TestExperimentReport:
    def _matching(self):
        return ExperimentReport(
            experiment_id="TX",
            title="demo",
            expected={"A": "(▲, ⊙)"},
            measured={"A": "(▲, ⊙)"},
        )

    def test_matching_report(self):
        report = self._matching()
        assert report.matches
        assert report.mismatches() == {}
        assert "MATCH" in report.render()

    def test_mismatching_report(self):
        report = ExperimentReport(
            experiment_id="TX",
            title="demo",
            expected={"A": "(▲, ⊙)", "B": "(△, ●)"},
            measured={"A": "(▲, ●)"},
        )
        assert not report.matches
        mismatches = report.mismatches()
        assert mismatches["A"] == ("(▲, ⊙)", "(▲, ●)")
        assert mismatches["B"] == ("(△, ●)", "<absent>")
        assert "MISMATCH" in report.render()
        assert "differs" in report.render()

    def test_extra_measured_entities_are_reported(self):
        report = ExperimentReport(
            experiment_id="TX",
            title="demo",
            expected={},
            measured={"Extra": "(△, ⊙)"},
        )
        assert "Extra" in report.render()

    def test_compare_tables_accepts_knowledge_table(self):
        table = KnowledgeTable(
            rows={"A": cell_from_labels([SENSITIVE_IDENTITY])},
            facets=(Facet.GENERIC,),
        )
        report = compare_tables("TX", "t", {"A": "(▲, ⊙)"}, table)
        assert report.matches

    def test_notes_are_rendered(self):
        report = ExperimentReport("TX", "t", {}, {}, notes="caveat here")
        assert "caveat here" in report.render()


class TestFlowSeries:
    def test_series_deduplicates_repeat_knowledge(self):
        ledger = Ledger()
        value = LabeledValue("q", SENSITIVE_DATA, ALICE, "query")
        for time in (1.0, 2.0, 3.0):
            ledger.record("E", "org", value, time=time)
        steps = flow_series(ledger, ["E"])
        assert len(steps) == 1
        assert steps[0].time == 1.0

    def test_series_respects_entity_filter_and_cap(self):
        ledger = Ledger()
        for index in range(5):
            ledger.record(
                "E",
                "org",
                LabeledValue(f"q{index}", SENSITIVE_DATA, ALICE, f"item {index}"),
                time=float(index),
            )
            ledger.record(
                "Other",
                "org2",
                LabeledValue(f"x{index}", SENSITIVE_DATA, ALICE, f"other {index}"),
                time=float(index),
            )
        steps = flow_series(ledger, ["E"], max_steps=3)
        assert len(steps) == 3
        assert all(step.entity == "E" for step in steps)

    def test_step_render(self):
        step = FlowStep(time=1.5, entity="Mix 1", glyph="⊙", description="onion")
        text = step.render()
        assert "Mix 1" in text and "⊙" in text and "onion" in text


class TestMarkdownTable:
    def test_to_markdown_has_header_rule_row(self):
        table = KnowledgeTable(
            rows={
                "User": cell_from_labels([SENSITIVE_IDENTITY, SENSITIVE_DATA]),
                "Proxy": cell_from_labels([SENSITIVE_IDENTITY]),
            },
            facets=(Facet.GENERIC,),
        )
        lines = table.to_markdown().splitlines()
        assert len(lines) == 3
        assert lines[0] == "| User | Proxy |"
        assert "(▲, ●)" in lines[2]


class TestHarnessSweeps:
    def test_sweep_striping_shares_fall_as_one_over_n(self):
        from repro.harness import sweep_striping

        series = sweep_striping(resolver_counts=(1, 2))
        assert series[0]["max_query_share"] == 1.0
        assert series[1]["max_query_share"] == 0.5

    def test_sweep_relays_is_monotone(self):
        from repro.harness import sweep_relays

        sweep = sweep_relays(degrees=(1, 2))
        assert sweep.privacy_is_monotone() and sweep.cost_is_monotone()

    def test_figure_series_are_nonempty(self):
        from repro.harness import figure_f1_series, figure_f2_series

        assert figure_f1_series()
        assert figure_f2_series()
