"""Fault-matrix regression battery for the PrivCount scenario.

The adversarial cases the issue demands:

* a **share-keeper crash** or an interval **partition** makes the
  tally unable to reconstruct -- it withholds every statistic instead
  of publishing garbage, no phase errors leak, and the decoupling
  verdict stays byte-stable;
* a **curious tally server** alone learns nothing that couples;
* the cautionary **blinding bypass** (collectors exporting raw
  registers when every keeper is gone, ``emergency_export=1``) flips
  the verdict, and the provenance breach chain pins the breach to the
  bypass packet itself.
"""

import io
import json

from repro import obs
from repro.cli import main
from repro.faults import FaultPlan, HostCrash, Partition
from repro.obs.provenance import build_provenance
from repro.scenario import run_scenario

KEEPER_CRASH = FaultPlan(
    crashes=(HostCrash(host="share-keeper-2", at=0.0),), seed=1
)
ALL_KEEPERS_DOWN = FaultPlan(
    crashes=(HostCrash(host="share-keeper-*", at=0.0),), seed=3
)
INTERVAL_PARTITION = FaultPlan(
    partitions=(
        Partition(a=("data-collector-*",), b=("share-keeper-*",), start=0.0),
    ),
    seed=2,
)
CURIOUS_TALLY = FaultPlan(curious=("tally-server",), seed=4)
BYPASS = FaultPlan(
    crashes=(HostCrash(host="share-keeper-*", at=0.0),),
    curious=("tally-server",),
    seed=3,
)


def _demo_json(name, *extra_args):
    out = io.StringIO()
    code = main(["demo", name, "--json", *extra_args], out=out)
    assert code == 0
    return out.getvalue()


def _plan_path(tmp_path, plan):
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    return str(path)


class TestShareKeeperCrash:
    def test_tally_degrades_gracefully(self):
        run = run_scenario("privcount", faults=KEEPER_CRASH)
        # Could not reconstruct: every statistic withheld, no crash.
        assert run.reconstructed is False
        assert all(value is None for value in run.published.values())
        assert all(value is None for value in run.exact_totals.values())
        assert run.fault_summary["stats"]["phase_errors"] == []
        # Timeouts were absorbed as failures, not exceptions.
        assert run.fault_summary["stats"]["failures"] > 0

    def test_verdict_stays_decoupled(self):
        baseline = run_scenario("privcount")
        faulted = run_scenario("privcount", faults=KEEPER_CRASH)
        assert baseline.analyzer.verdict().decoupled is True
        assert faulted.analyzer.verdict().decoupled is True
        # No raw registers moved: the bypass is off by default.
        assert faulted.raw_exports == 0

    def test_faulted_demo_json_is_reproducible(self, tmp_path):
        plan = _plan_path(tmp_path, KEEPER_CRASH)
        first = _demo_json("privcount", "--faults", plan)
        second = _demo_json("privcount", "--faults", plan)
        assert first == second
        assert json.loads(first)["verdict_decoupled"] is True


class TestIntervalPartition:
    def test_partition_blocks_reconstruction(self):
        run = run_scenario("privcount", faults=INTERVAL_PARTITION)
        assert run.reconstructed is False
        assert all(value is None for value in run.published.values())
        assert run.fault_summary["stats"]["phase_errors"] == []

    def test_verdict_stays_decoupled(self):
        run = run_scenario("privcount", faults=INTERVAL_PARTITION)
        assert run.analyzer.verdict().decoupled is True
        assert run.raw_exports == 0

    def test_sharded_variant_also_degrades(self):
        run = run_scenario("privcount-sharded", faults=INTERVAL_PARTITION)
        assert run.reconstructed is False
        assert run.analyzer.verdict().decoupled is True


class TestCuriousTally:
    def test_tap_alone_learns_nothing_coupling(self):
        """An honest-but-curious tally sees every blinded register and
        blinding sum on the wire -- and still cannot couple."""
        run = run_scenario("privcount", faults=CURIOUS_TALLY)
        assert run.reconstructed is True
        assert run.analyzer.verdict().decoupled is True
        breach = run.analyzer.breach("tally-org")
        assert breach.breach_proof

    def test_verdict_byte_stable_under_tap(self, tmp_path):
        baseline = _demo_json("privcount")
        tapped = json.loads(
            _demo_json(
                "privcount", "--faults", _plan_path(tmp_path, CURIOUS_TALLY)
            )
        )
        document = json.loads(baseline)
        assert tapped["verdict_decoupled"] == document["verdict_decoupled"]
        assert tapped["table"] == document["table"]


class TestBlindingBypass:
    """The cautionary configuration: when every keeper is down and the
    collectors fall back to raw exports, privacy pays for liveness."""

    def test_bypass_flips_the_verdict(self):
        run = run_scenario(
            "privcount", faults=BYPASS, emergency_export=1
        )
        assert run.raw_exports > 0
        assert run.analyzer.verdict().decoupled is False
        assert run.fault_summary["stats"]["fallbacks"] > 0

    def test_bypass_off_by_default_stays_decoupled(self):
        run = run_scenario("privcount", faults=BYPASS)
        assert run.raw_exports == 0
        assert run.analyzer.verdict().decoupled is True

    def test_breach_chain_pins_the_bypass_packet(self):
        """The provenance graph attributes the curious-tally breach to
        the blinding-bypass export packet: identity witness (client ip)
        and data witness (raw register) ride the same packet."""
        with obs.capture() as (tracer, _):
            run = run_scenario(
                "privcount", faults=BYPASS, emergency_export=1
            )
        breach = run.analyzer.breach("tally-org")
        assert not breach.breach_proof
        chains = build_provenance(run, tracer).breach_chain(breach)
        assert len(chains) == run.users
        for chain in chains:
            rendered = chain.render()
            assert "breach of tally-org couples" in rendered
            assert "blinding bypass" in rendered
            assert "privcount-export" in rendered

    def test_bypass_demo_json_is_reproducible(self, tmp_path):
        plan = _plan_path(tmp_path, BYPASS)
        first = _demo_json("privcount", "--faults", plan)
        second = _demo_json("privcount", "--faults", plan)
        assert first == second
        assert json.loads(first)["verdict_decoupled"] is True  # export off


class TestFaultFreeStability:
    def test_demo_json_byte_identical_across_runs(self):
        assert _demo_json("privcount") == _demo_json("privcount")
        assert _demo_json("privcount-sharded") == _demo_json(
            "privcount-sharded"
        )

    def test_null_plan_changes_nothing(self, tmp_path):
        plan = _plan_path(tmp_path, FaultPlan())
        assert _demo_json("privcount") == _demo_json(
            "privcount", "--faults", plan
        )
