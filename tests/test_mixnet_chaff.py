"""Tests for mix-generated cover traffic (section 4.3 'chaff')."""

import statistics

import pytest

from repro.adversary import PassiveCorrelator, correlation_accuracy
from repro.mixnet import make_chaff, run_mixnet


def _fifo_accuracy(chaff: int, seeds=range(8)) -> float:
    values = []
    for seed in seeds:
        run = run_mixnet(
            mixes=2,
            senders=4,
            batch_size=2,
            seed=seed,
            use_padding=True,
            chaff_per_flush=chaff,
        )
        correlator = PassiveCorrelator(run.network.trace)
        guesses = correlator.fifo_guesses(
            run.mixes[0].address, run.mixes[-1].address, run.receiver.address
        )
        values.append(correlation_accuracy(guesses, run.ground_truth()))
    return statistics.mean(values)


class TestChaffMechanics:
    def test_chaff_is_discarded_by_the_receiver(self):
        run = run_mixnet(mixes=2, senders=4, batch_size=4, chaff_per_flush=3)
        assert len(run.receiver.received) == 4  # real messages only
        assert run.receiver.chaff_dropped == 3
        assert run.mixes[-1].chaff_sent == 3

    def test_only_the_egress_mix_injects(self):
        run = run_mixnet(mixes=3, senders=4, batch_size=4, chaff_per_flush=2)
        assert run.mixes[0].chaff_sent == 0
        assert run.mixes[1].chaff_sent == 0
        assert run.mixes[2].chaff_sent == 2

    def test_chaff_inflates_the_egress_edge(self):
        plain = run_mixnet(mixes=2, senders=4, batch_size=4, chaff_per_flush=0)
        chaffed = run_mixnet(mixes=2, senders=4, batch_size=4, chaff_per_flush=4)
        plain_egress = len(plain.network.trace.between(dst=plain.receiver.address))
        chaffed_egress = len(
            chaffed.network.trace.between(dst=chaffed.receiver.address)
        )
        assert chaffed_egress == plain_egress + 4

    def test_chaff_requires_a_destination(self):
        from repro.core.entities import World
        from repro.mixnet import MixNode
        from repro.net.network import Network

        world, network = World(), Network()
        with pytest.raises(ValueError):
            MixNode(
                network, world.entity("M", "m"), "m", "k", chaff_per_flush=2
            )

    def test_make_chaff_is_opaque_and_sized(self):
        chaff = make_chaff("some-key", size_hint=512)
        assert chaff.description == "chaff"
        assert len(str(chaff.contents[0].payload)) >= 512


class TestChaffDefeatsCorrelation:
    def test_chaff_degrades_fifo_below_small_batch_level(self):
        """At batch 2, shuffling alone leaves 50% accuracy; chaff mixes
        dummies into the egress set and drives it far lower."""
        without = _fifo_accuracy(0)
        with_chaff = _fifo_accuracy(2)
        assert without >= 0.4
        assert with_chaff < without / 2
