"""System tests for the SSO designs (paper section 2.2)."""

import pytest

from repro.core.labels import SENSITIVE_IDENTITY
from repro.sso import EXPECTED_TABLES_SSO, run_sso


class TestGlobalIdentifiers:
    def test_table_and_verdict(self):
        run = run_sso("global")
        assert run.table().as_mapping() == EXPECTED_TABLES_SSO["global"]
        assert not run.analyzer.verdict().decoupled

    def test_every_party_couples_alone(self):
        run = run_sso("global")
        coalitions = run.analyzer.minimal_recoupling_coalitions(max_size=1)
        orgs = {next(iter(c)) for c in coalitions}
        assert orgs == {"idp-org", "service-a-org", "service-b-org"}

    def test_services_can_join_their_logs(self):
        """The same global identifier at two services is a join key."""
        run = run_sso("global")
        assert run.analyzer.coalition_couples(["service-a-org", "service-b-org"])


class TestPairwiseIdentifiers:
    def test_table_and_verdict(self):
        run = run_sso("pairwise")
        assert run.table().as_mapping() == EXPECTED_TABLES_SSO["pairwise"]
        # Better, but the IdP still couples: NOT decoupled.
        assert not run.analyzer.verdict().decoupled

    def test_only_the_idp_couples(self):
        run = run_sso("pairwise")
        coalitions = run.analyzer.minimal_recoupling_coalitions(max_size=1)
        assert coalitions == (frozenset({"idp-org"}),)

    def test_services_cannot_join_their_logs(self):
        """Distinct pairwise pseudonyms at each service do not join."""
        run = run_sso("pairwise")
        assert not run.analyzer.coalition_couples(
            ["service-a-org", "service-b-org"]
        )

    def test_services_never_see_the_account(self):
        run = run_sso("pairwise")
        for service in ("Service A", "Service B"):
            for obs in run.world.ledger.by_entity(service):
                assert obs.description != "global subject id"
                assert not (obs.label.is_identity and obs.label.is_sensitive)


class TestAnonymousTickets:
    def test_table_and_verdict(self):
        run = run_sso("anonymous")
        assert run.table().as_mapping() == EXPECTED_TABLES_SSO["anonymous"]
        assert run.analyzer.verdict().decoupled

    def test_no_coalition_recouples(self):
        run = run_sso("anonymous")
        assert run.analyzer.minimal_recoupling_coalitions() == ()

    def test_idp_never_learns_the_destination(self):
        run = run_sso("anonymous")
        for obs in run.world.ledger.by_entity("IdP"):
            assert obs.description != "login destination"

    def test_tickets_are_single_use(self):
        run = run_sso("anonymous", logins_per_service=1)
        # replay the last ticket directly against the IdP's checker
        serial = next(iter(run.idp.spent_tickets))
        assert not run.idp.verify_ticket(serial, 12345)

    def test_all_logins_succeed(self):
        run = run_sso("anonymous", logins_per_service=3)
        assert run.logins == 6


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_sso("federated-magic")
