"""Differential goldens: the batched drive path against its slow reference.

The fast delivery pipeline (``Network._deliver_fast`` +
``Ledger.record_fast``) must be *semantically invisible*: flipping
``repro.fastpath`` between the default fast mode and the
``REPRO_SLOW_PATH=1`` reference may change wall clock only, never one
byte of an exported artifact.  Three layers of evidence:

1. full-registry differential goldens -- ``demo <id> --json`` for every
   registered scenario, plus ``tables`` and the span/provenance JSONL
   export, byte-identical between modes (the JSONL modulo the
   ``wall_ms`` attribute, which differs between any two runs);
2. Hypothesis invariants -- batched ``Ledger.record_fast`` produces the
   same observations and query-visible state as sequential ``record``,
   and ``collect_values`` equals ``list(walk_values)`` on arbitrary
   nested payloads;
3. precondition assertions -- no fast-path delivery is ever taken when
   observability or a fault injector is active, so PR 1/PR 5 semantics
   cannot be bypassed.
"""

import io
import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, strategies as st

from repro import fastpath, obs
from repro.cli import _register_demos, main
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.ledger import Ledger
from repro.core.values import (
    LabeledValue,
    Sealed,
    Subject,
    collect_values,
    walk_values,
)
from repro.faults.plan import FaultPlan
from repro.faults.runtime import FaultRuntime
from repro.net.network import Network
from repro.obs import export as obs_export
from repro.obs import runtime as obs_runtime
from repro.scenario import all_specs, run_scenario

_register_demos()

ALL_SPEC_IDS = sorted(spec.id for spec in all_specs())


def _run_cli(args, slow):
    """Run the in-process CLI in the requested mode; always restore.

    Restores the *prior* mode (not hard-coded fast) so the whole file
    also runs under an ambient ``REPRO_SLOW_PATH=1`` environment -- CI
    executes it under both settings.
    """
    out = io.StringIO()
    previous = fastpath.SLOW_PATH
    fastpath.set_slow_path(slow)
    try:
        code = main(list(args), out=out)
    finally:
        fastpath.set_slow_path(previous)
    assert code == 0, f"{args} exited {code} (slow={slow})"
    return out.getvalue()


# ---------------------------------------------------------------- goldens


@pytest.mark.parametrize("name", ALL_SPEC_IDS)
def test_demo_json_identical_between_modes(name):
    """`demo <id> --json` is byte-identical for every registered scenario."""
    fast = _run_cli(["demo", name, "--json"], slow=False)
    slow = _run_cli(["demo", name, "--json"], slow=True)
    assert fast == slow


def test_tables_identical_between_modes():
    fast = _run_cli(["tables"], slow=False)
    slow = _run_cli(["tables"], slow=True)
    assert fast == slow


def _run_cli_subprocess(args, slow):
    """Run the CLI in a fresh interpreter, selecting the mode via env.

    A fresh process per run matters twice over: it exercises the
    ``REPRO_SLOW_PATH=1`` import-time wiring (not just the in-process
    ``set_slow_path`` seam), and it sidesteps cross-run global serials
    (key-id counters) that make *any* two same-process runs -- fast or
    slow -- disagree on a handful of ``value_digest`` fields.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    env.pop("REPRO_SLOW_PATH", None)
    if slow:
        env["REPRO_SLOW_PATH"] = "1"
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        env=env,
        check=True,
    )
    return result.stdout


def _normalized_jsonl(path):
    """Trace JSONL lines, wall clock dropped and digests alpha-renamed.

    Two fields are nondeterministic between *any* two runs of the seed
    code (fast or slow, fresh process or not), so the differential
    normalizes exactly those and nothing else:

    - ``wall_ms`` is host wall clock;
    - ``value_digest`` hashes payloads that can embed HPKE encapsulation
      bytes, and ephemeral X25519 keys draw from ``secrets`` (odoh).
      Renaming each distinct digest to its first-appearance index keeps
      the *linkage structure* -- which observations carry the same
      value -- pinned while ignoring the random bytes underneath.
    """
    lines = []
    rename = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            record.pop("wall_ms", None)
            digest = record.get("value_digest")
            if digest is not None:
                record["value_digest"] = rename.setdefault(
                    digest, f"digest-{len(rename)}"
                )
            lines.append(json.dumps(record, sort_keys=True))
    return lines


@pytest.mark.parametrize("name", ["odoh", "mixnet", "odns"])
def test_trace_export_identical_between_modes(name, tmp_path):
    fast_path = tmp_path / "fast.jsonl"
    slow_path = tmp_path / "slow.jsonl"
    _run_cli_subprocess(["trace", name, "--out", str(fast_path)], slow=False)
    _run_cli_subprocess(["trace", name, "--out", str(slow_path)], slow=True)
    assert _normalized_jsonl(fast_path) == _normalized_jsonl(slow_path)


def test_demo_json_identical_between_processes():
    """`REPRO_SLOW_PATH=1` in the environment reproduces fast output."""
    fast = _run_cli_subprocess(["demo", "odoh", "--json"], slow=False)
    slow = _run_cli_subprocess(["demo", "odoh", "--json"], slow=True)
    assert fast == slow


def test_tables_identical_between_processes():
    fast = _run_cli_subprocess(["tables"], slow=False)
    slow = _run_cli_subprocess(["tables"], slow=True)
    assert fast == slow


@pytest.mark.parametrize("name", ["privcount", "privcount-sharded"])
def test_privcount_demo_json_pinned_across_modes(name):
    """The PrivCount demos, explicitly: repeated runs are byte-stable
    and the slow-path differential reproduces the fast output.

    ALL_SPEC_IDS already sweeps these through the in-process parity
    test; this pins the two additional guarantees the P-series issue
    demands -- same-mode repeatability (all rng draws flow from the
    seed, Laplace noise included) and cross-process slow-path identity
    (import-time ``REPRO_SLOW_PATH=1`` wiring).
    """
    fast_a = _run_cli(["demo", name, "--json"], slow=False)
    fast_b = _run_cli(["demo", name, "--json"], slow=False)
    assert fast_a == fast_b
    slow_a = _run_cli_subprocess(["demo", name, "--json"], slow=True)
    slow_b = _run_cli_subprocess(["demo", name, "--json"], slow=False)
    assert slow_a == slow_b


# ------------------------------------------------- fast-path preconditions


def _mini_network():
    world = World()
    network = Network()
    identity = LabeledValue(
        "198.51.100.1", SENSITIVE_IDENTITY, Subject("alice"), "ip"
    )
    user = network.add_host(
        "user", world.entity("User", "device", trusted_by_user=True),
        identity=identity,
    )
    server = network.add_host("server", world.entity("Server", "server-org"))
    server.register("echo", lambda packet: None)
    return network, user, server


def _drive_once(network, user, server):
    value = LabeledValue("hello", SENSITIVE_DATA, Subject("alice"), "msg")
    user.send(server.address, value, "echo")
    network.run()


def test_fast_path_taken_by_default():
    if fastpath.SLOW_PATH:
        pytest.skip("ambient REPRO_SLOW_PATH=1: the fast path is off")
    network, user, server = _mini_network()
    _drive_once(network, user, server)
    assert network.fast_deliveries == 1


def test_no_fast_path_under_observability():
    network, user, server = _mini_network()
    obs_runtime.enable()
    try:
        _drive_once(network, user, server)
    finally:
        obs_runtime.disable()
    assert network.fast_deliveries == 0
    assert network.messages_delivered == 1


def test_no_fast_path_with_fault_injector():
    network, user, server = _mini_network()
    # An empty plan: the injector is a pass-through, but its mere
    # presence must force the fully instrumented path.
    FaultRuntime(FaultPlan(), network).install()
    _drive_once(network, user, server)
    assert network.fast_deliveries == 0
    assert network.messages_delivered == 1


def test_no_fast_path_under_slow_toggle():
    network, user, server = _mini_network()
    previous = fastpath.SLOW_PATH
    fastpath.set_slow_path(True)
    try:
        _drive_once(network, user, server)
    finally:
        fastpath.set_slow_path(previous)
    assert network.fast_deliveries == 0
    assert network.messages_delivered == 1


def test_observability_enabled_mid_flight_respected():
    """Precondition is re-checked at fire time, not just send time."""
    network, user, server = _mini_network()
    value = LabeledValue("hello", SENSITIVE_DATA, Subject("alice"), "msg")
    user.send(server.address, value, "echo")
    obs_runtime.enable()
    try:
        network.run()
    finally:
        obs_runtime.disable()
    assert network.fast_deliveries == 0
    assert network.messages_delivered == 1


# ----------------------------------------------- obs tiers vs fast path


def test_fast_path_retained_in_counters_mode():
    """counters mode batches metrics without leaving the fast path."""
    if fastpath.SLOW_PATH:
        pytest.skip("ambient REPRO_SLOW_PATH=1: the fast path is off")
    network, user, server = _mini_network()
    with obs.capture(mode="counters") as (tracer, registry):
        _drive_once(network, user, server)
    assert network.fast_deliveries == 1
    assert tracer.spans == []
    # The batch folded into the capture registry on exit.
    assert registry.counter_value("net.messages") == 1
    assert registry.counter_value("sim.events") >= 1
    assert registry.counter_value("ledger.observations") >= 1


def test_fast_path_retained_in_sampled_mode():
    """sampled mode traces a subset while unsampled deliveries stay fast."""
    if fastpath.SLOW_PATH:
        pytest.skip("ambient REPRO_SLOW_PATH=1: the fast path is off")
    sampler = obs.SpanSampler(rate=0.4, seed=0)
    with obs.capture(mode="sampled", sampler=sampler) as (tracer, registry):
        run = run_scenario("mixnet")
    network = run.network
    deliver_spans = [s for s in tracer.spans if s.name == "deliver"]
    assert network.fast_deliveries > 0
    assert deliver_spans, "a 0.4 sampler over a mixnet run must trace some"
    assert network.fast_deliveries + len(deliver_spans) == (
        network.messages_delivered
    )
    # Batched metrics still cover *every* delivery, traced or not.
    assert registry.counter_value("net.messages") == network.messages_delivered


def test_counters_mode_totals_byte_equal_full_mode():
    """A counters-mode registry snapshot == the full-mode one, bit for bit.

    The batch observes values in delivery order and folds each total
    exactly once into zeroed instruments, so even the float histogram
    sums come out identical.  (``snapshot()`` sorts by name, so the
    differing instrument-creation order cannot show through.)
    """
    with obs.capture(mode="counters") as (_tracer, counters_registry):
        counters_run = run_scenario("mixnet")
    with obs.capture(mode="full") as (_tracer, full_registry):
        full_run = run_scenario("mixnet")
    assert counters_run.network.messages_delivered == (
        full_run.network.messages_delivered
    )
    if not fastpath.SLOW_PATH:
        assert counters_run.network.fast_deliveries > 0
    assert full_run.network.fast_deliveries == 0
    assert json.dumps(counters_registry.snapshot(), sort_keys=True) == (
        json.dumps(full_registry.snapshot(), sort_keys=True)
    )


def _sampled_span_lines(seed):
    """Normalized span JSONL for one sampled mixnet run at ``seed``."""
    sampler = obs.SpanSampler(rate=0.4, seed=seed)
    with obs.capture(mode="sampled", sampler=sampler) as (tracer, _registry):
        run_scenario("mixnet")
    lines = []
    for span in tracer.spans:
        record = obs_export.span_to_dict(span)
        record.pop("wall_ms", None)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def test_sampler_same_seed_reproduces_span_set():
    """Same seed => byte-identical sampled JSONL; new seed => new set."""
    first = _sampled_span_lines(seed=0)
    second = _sampled_span_lines(seed=0)
    other = _sampled_span_lines(seed=7)
    assert first, "a 0.4 sampler over a mixnet run must trace some spans"
    assert first == second
    assert first != other


# ------------------------------------------------ record_fast invariants

_SUBJECTS = st.sampled_from([Subject("alice"), Subject("bob"), Subject("eve")])
_LABELS = st.sampled_from(
    [SENSITIVE_IDENTITY, SENSITIVE_DATA, NONSENSITIVE_DATA]
)


@st.composite
def _labeled_values(draw):
    return LabeledValue(
        payload=draw(st.text(max_size=8)),
        label=draw(_LABELS),
        subject=draw(_SUBJECTS),
        description=draw(st.sampled_from(["ip", "query", "token", ""])),
    )


@st.composite
def _batches(draw):
    """A handful of (entity, org, values, channel, session) batches."""
    batches = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["Resolver", "Proxy", "Target"]),
                st.sampled_from(["org-a", "org-b"]),
                st.lists(_labeled_values(), min_size=0, max_size=4),
                st.sampled_from(["message", "dns", "network-header"]),
                st.sampled_from(["", "pkt:1", "pkt:2"]),
            ),
            min_size=1,
            max_size=5,
        )
    )
    return batches


def _visible_state(ledger):
    """Everything a query or the analyzer can see, version excluded."""
    return {
        "observations": ledger.observations,
        "subjects": ledger.subjects(),
        "by_subject": {
            s.name: ledger.by_subject(s) for s in ledger.subjects()
        },
        "entities": {
            o.entity: ledger.by_entity(o.entity) for o in ledger.observations
        },
        "labels": {
            (o.entity, o.subject.name): ledger.labels_of(o.entity, o.subject)
            for o in ledger.observations
        },
    }


@given(_batches())
def test_record_fast_equivalent_to_sequential_record(batches):
    """Batched append == value-at-a-time append, bit for bit.

    The *only* sanctioned difference is the version counter's step
    size: ``record_fast`` bumps once per batch, ``record`` once per
    value.  Analyzer memo keys only require that an unchanged version
    implies unchanged contents, which a coarser counter preserves.
    """
    batched, sequential = Ledger(), Ledger()
    time = 0.0
    for entity, org, values, channel, session in batches:
        time += 0.1
        before = batched.version
        batched.record_fast(
            entity, org, list(values), time=time, channel=channel,
            session=session, packet_id=None,
        )
        # One version bump per non-empty batch, none for empty ones.
        expected_bumps = 1 if values else 0
        assert batched.version == before + expected_bumps
        for value in values:
            sequential.record(
                entity, org, value, time=time, channel=channel,
                session=session, packet_id=None,
            )
    assert _visible_state(batched) == _visible_state(sequential)
    assert len(batched) == len(sequential)


@st.composite
def _payload_trees(draw, depth=3):
    leaf = st.one_of(
        _labeled_values(),
        st.text(max_size=4),
        st.integers(-10, 10),
        st.none(),
    )
    if depth == 0:
        return draw(leaf)
    child = _payload_trees(depth=depth - 1)
    branch = st.one_of(
        leaf,
        st.lists(child, max_size=3).map(tuple),
        st.lists(child, max_size=3),
        st.dictionaries(st.text(max_size=3), child, max_size=2),
        st.tuples(st.sampled_from(["k1", "k2"]), child).map(
            lambda pair: Sealed.wrap(pair[0], (pair[1],))
        ),
    )
    return draw(branch)


@given(_payload_trees(), st.sets(st.sampled_from(["k1", "k2"]), max_size=2))
def test_collect_values_equals_walk_values(tree, keys):
    keyring = frozenset(keys)
    assert collect_values(tree, keyring) == list(walk_values(tree, keyring))
