"""Unit tests for the sensitivity-label lattice."""

import pytest

from repro.core.labels import (
    Facet,
    Kind,
    Label,
    NONSENSITIVE_DATA,
    NONSENSITIVE_HUMAN_IDENTITY,
    NONSENSITIVE_IDENTITY,
    NONSENSITIVE_NETWORK_IDENTITY,
    PARTIAL_SENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_HUMAN_IDENTITY,
    SENSITIVE_IDENTITY,
    SENSITIVE_NETWORK_IDENTITY,
    Sensitivity,
)


class TestGlyphs:
    def test_paper_notation_for_the_four_base_marks(self):
        assert SENSITIVE_IDENTITY.glyph == "▲"
        assert NONSENSITIVE_IDENTITY.glyph == "△"
        assert SENSITIVE_DATA.glyph == "●"
        assert NONSENSITIVE_DATA.glyph == "⊙"

    def test_partial_data_renders_as_the_paper_pair(self):
        assert PARTIAL_SENSITIVE_DATA.glyph == "⊙/●"

    def test_faceted_identity_glyphs(self):
        assert SENSITIVE_HUMAN_IDENTITY.glyph == "▲_H"
        assert NONSENSITIVE_HUMAN_IDENTITY.glyph == "△_H"
        assert SENSITIVE_NETWORK_IDENTITY.glyph == "▲_N"
        assert NONSENSITIVE_NETWORK_IDENTITY.glyph == "△_N"

    def test_str_is_glyph(self):
        assert str(SENSITIVE_DATA) == "●"


class TestValidation:
    def test_data_labels_cannot_carry_facets(self):
        with pytest.raises(ValueError):
            Label(Kind.DATA, Sensitivity.SENSITIVE, Facet.HUMAN)

    def test_partial_requires_sensitive_data(self):
        with pytest.raises(ValueError):
            Label(Kind.DATA, Sensitivity.NONSENSITIVE, partial=True)
        with pytest.raises(ValueError):
            Label(Kind.IDENTITY, Sensitivity.SENSITIVE, partial=True)


class TestOrderAndTransforms:
    def test_rank_order(self):
        assert NONSENSITIVE_DATA.rank == 0
        assert PARTIAL_SENSITIVE_DATA.rank == 1
        assert SENSITIVE_DATA.rank == 2

    def test_dominates_within_kind_and_facet(self):
        assert SENSITIVE_DATA.dominates(PARTIAL_SENSITIVE_DATA)
        assert PARTIAL_SENSITIVE_DATA.dominates(NONSENSITIVE_DATA)
        assert not NONSENSITIVE_DATA.dominates(SENSITIVE_DATA)
        assert SENSITIVE_IDENTITY.dominates(NONSENSITIVE_IDENTITY)

    def test_dominates_is_false_across_kinds(self):
        assert not SENSITIVE_DATA.dominates(SENSITIVE_IDENTITY)
        assert not SENSITIVE_IDENTITY.dominates(SENSITIVE_DATA)

    def test_dominates_is_false_across_facets(self):
        assert not SENSITIVE_HUMAN_IDENTITY.dominates(SENSITIVE_NETWORK_IDENTITY)

    def test_downgrade_strips_sensitivity_and_partial(self):
        assert SENSITIVE_DATA.downgraded() == NONSENSITIVE_DATA
        assert PARTIAL_SENSITIVE_DATA.downgraded() == NONSENSITIVE_DATA
        assert SENSITIVE_HUMAN_IDENTITY.downgraded() == NONSENSITIVE_HUMAN_IDENTITY

    def test_upgrade_and_partially(self):
        assert NONSENSITIVE_DATA.upgraded() == SENSITIVE_DATA
        assert NONSENSITIVE_DATA.partially() == PARTIAL_SENSITIVE_DATA

    def test_downgrade_then_upgrade_round_trips_full_sensitivity(self):
        assert SENSITIVE_DATA.downgraded().upgraded() == SENSITIVE_DATA

    def test_labels_are_hashable_and_comparable(self):
        assert len({SENSITIVE_DATA, SENSITIVE_DATA, NONSENSITIVE_DATA}) == 2


class TestPredicates:
    def test_kind_predicates(self):
        assert SENSITIVE_IDENTITY.is_identity
        assert not SENSITIVE_IDENTITY.is_data
        assert SENSITIVE_DATA.is_data

    def test_sensitivity_predicates(self):
        assert SENSITIVE_DATA.is_sensitive
        assert PARTIAL_SENSITIVE_DATA.is_sensitive
        assert not NONSENSITIVE_DATA.is_sensitive
