"""System tests: T1, Chaum digital cash (paper section 3.1.1)."""

import pytest

from repro.blindsig import PAPER_TABLE_T1, run_digital_cash


@pytest.fixture(scope="module")
def run():
    return run_digital_cash(coins=3)


class TestPaperTable:
    def test_derived_table_matches_the_paper(self, run):
        assert run.table().as_mapping() == PAPER_TABLE_T1

    def test_system_is_decoupled(self, run):
        assert run.analyzer.verdict().decoupled

    def test_all_coins_spent(self, run):
        assert run.coins_spent == 3
        assert run.seller.sales == 3
        assert run.bank.deposits_accepted == 3


class TestCryptographicProperties:
    def test_no_coalition_can_recouple(self, run):
        """Blinding is information-theoretic: even signer+verifier+seller
        pooling all logs cannot attribute a purchase to the account."""
        assert run.analyzer.minimal_recoupling_coalitions() == ()

    def test_every_organization_is_breach_proof(self, run):
        for report in run.analyzer.breach_reports():
            assert report.breach_proof, report.organization

    def test_double_spend_is_rejected(self):
        run = run_digital_cash(coins=1)
        coin = run.buyer.coins[0]
        receipt = run.buyer.pay(run.seller, coin, "second attempt")
        assert not receipt.accepted
        assert run.bank.deposits_rejected == 1

    def test_signer_saw_only_blinded_values(self, run):
        signer_observations = run.world.ledger.by_entity("Signer (Bank)")
        data = [o for o in signer_observations if o.label.is_data]
        assert data and all(not o.label.is_sensitive for o in data)

    def test_verifier_never_saw_the_account(self, run):
        verifier_observations = run.world.ledger.by_entity("Verifier (Bank)")
        assert all(
            not (o.label.is_identity and o.label.is_sensitive)
            for o in verifier_observations
        )


class TestScaling:
    def test_more_coins_preserve_the_table(self):
        run = run_digital_cash(coins=6)
        assert run.table().as_mapping() == PAPER_TABLE_T1
        assert run.analyzer.verdict().decoupled
