"""The streaming trace pipeline and the tiered obs runtime.

PR 8 turned observability from a boolean into four tiers and replaced
the unbounded ``Tracer.spans`` list with an optional streaming sink.
These tests pin the new machinery itself (the differential evidence
that the tiers keep the drive fast path lives in
``test_drive_fastpath.py``):

* ``StreamingWriter`` -- segmented JSONL with bounded peak memory and
  an optional last-N ring;
* ``SpanSampler`` -- seeded per-kind decision streams;
* ``obs.capture(mode=...)`` -- mode resolution, nesting, restoration;
* the ``repro profile`` verb end to end, in process.
"""

import io
import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import export as obs_export
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import BATCH, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.scenario import run_scenario


# ------------------------------------------------------- StreamingWriter


def _emit_spans(tracer, count):
    for index in range(count):
        with tracer.span(f"work-{index}", kind="test", sim_time=float(index)):
            pass


def test_streaming_writer_bounds_span_memory(tmp_path):
    """Segments spill to disk; the tracer holds nothing; peak is bounded."""
    writer = obs_export.StreamingWriter(
        str(tmp_path), segment_spans=20, ring=5
    )
    tracer = Tracer(enabled=True, sink=writer)
    _emit_spans(tracer, 53)
    manifest = writer.close()
    assert tracer.spans == []
    assert writer.spans_written == 53
    assert writer.peak_buffered <= 20
    assert manifest["spans"] == 53
    assert len(manifest["segments"]) == 3  # 20 + 20 + 13
    lines = []
    for path in manifest["segments"]:
        with open(path, encoding="utf-8") as handle:
            lines.extend(json.loads(line) for line in handle)
    assert len(lines) == 53
    assert [record["name"] for record in lines[:3]] == [
        "work-0",
        "work-1",
        "work-2",
    ]
    tail = writer.tail()
    assert [span.name for span in tail] == [
        f"work-{index}" for index in range(48, 53)
    ]


def test_streaming_writer_metrics_segment(tmp_path):
    writer = obs_export.StreamingWriter(str(tmp_path), segment_spans=10)
    tracer = Tracer(enabled=True, sink=writer)
    _emit_spans(tracer, 3)
    registry = MetricsRegistry()
    registry.counter("sim.events").inc(5)
    manifest = writer.close(registry)
    metrics_paths = [p for p in manifest["segments"] if "-metrics" in p]
    assert len(metrics_paths) == 1
    with open(metrics_paths[0], encoding="utf-8") as handle:
        rows = [json.loads(line) for line in handle]
    assert rows == [{"type": "counter", "name": "sim.events", "value": 5}]


def test_streaming_writer_rejects_emit_after_close(tmp_path):
    writer = obs_export.StreamingWriter(str(tmp_path))
    writer.close()
    tracer = Tracer(enabled=True, sink=writer)
    with pytest.raises(RuntimeError):
        with tracer.span("late", kind="test", sim_time=0.0):
            pass


def test_capture_with_sink_streams_spans(tmp_path):
    """``capture(sink=...)`` wires the writer into the capture tracer."""
    writer = obs_export.StreamingWriter(str(tmp_path), segment_spans=4)
    with obs.capture(mode="full", sink=writer) as (tracer, registry):
        run_scenario("mixnet")
    manifest = writer.close(registry)
    assert tracer.spans == []
    assert manifest["spans"] > 0
    assert writer.peak_buffered <= 4


# ----------------------------------------------------------- SpanSampler


def test_sampler_streams_are_deterministic_per_kind():
    first = obs.SpanSampler(rate=0.5, seed=3)
    second = obs.SpanSampler(rate=0.5, seed=3)
    decisions = [first.decide("deliver") for _ in range(64)]
    assert decisions == [second.decide("deliver") for _ in range(64)]
    assert 0 < sum(decisions) < 64
    # A different kind draws from an independent stream.
    third = obs.SpanSampler(rate=0.5, seed=3)
    assert decisions != [third.decide("transact") for _ in range(64)]


def test_sampler_edge_rates_and_per_kind_overrides():
    always = obs.SpanSampler(rate=1.0, seed=0)
    never = obs.SpanSampler(rate=0.0, seed=0)
    assert all(always.decide("deliver") for _ in range(8))
    assert not any(never.decide("deliver") for _ in range(8))
    mixed = obs.SpanSampler(
        rate=0.0, seed=0, rates={"experiment": 1.0}
    )
    assert mixed.decide("experiment")
    assert not mixed.decide("deliver")
    assert mixed.decisions == 2 and mixed.sampled == 1


def test_sampler_fresh_rewinds_the_streams():
    sampler = obs.SpanSampler(rate=0.3, seed=11, rates={"transact": 0.9})
    run_one = [sampler.decide("deliver") for _ in range(32)]
    clone = sampler.fresh()
    assert clone.seed == sampler.seed
    assert clone.rates == sampler.rates
    assert clone.decisions == 0
    assert run_one == [clone.decide("deliver") for _ in range(32)]


def test_sampler_rejects_out_of_range_rates():
    with pytest.raises(ValueError):
        obs.SpanSampler(rate=1.5)
    with pytest.raises(ValueError):
        obs.SpanSampler(rate=0.5, rates={"deliver": -0.1})


# ------------------------------------------------------ modes & nesting


def test_capture_resolves_and_restores_modes():
    assert obs_runtime.MODE == "off"
    with obs.capture(mode="counters"):
        assert obs_runtime.MODE == "counters"
        assert obs_runtime.COUNTERS and not obs_runtime.TRACING
        assert not obs_runtime.ENABLED
    assert obs_runtime.MODE == "off"
    # The no-argument default stays the pre-tier behaviour: full.
    with obs.capture():
        assert obs_runtime.MODE == "full"
        assert obs_runtime.ENABLED and obs_runtime.TRACING
    assert obs_runtime.MODE == "off"


def test_capture_rejects_unknown_mode():
    with pytest.raises(ValueError):
        with obs.capture(mode="verbose"):
            pass


def test_nested_capture_settles_enclosing_batch():
    """Entering a nested capture must not lose the outer batch's counts."""
    with obs.capture(mode="counters") as (_t, outer_registry):
        BATCH.events += 3
        with obs.capture(mode="counters") as (_t2, inner_registry):
            BATCH.events += 2
        assert inner_registry.counter_value("sim.events") == 2
        # The outer events were flushed into the outer registry when the
        # nested capture began, not dropped.
        assert outer_registry.counter_value("sim.events") == 3
    assert outer_registry.counter_value("sim.events") == 3
    assert BATCH.events == 0


def test_sampled_mode_installs_and_clears_sampler():
    sampler = obs.SpanSampler(rate=0.2, seed=1)
    with obs.capture(mode="sampled", sampler=sampler):
        assert obs_runtime.SAMPLER is sampler
        assert obs_runtime.TRACING and not obs_runtime.ENABLED
    assert obs_runtime.SAMPLER is None


def test_runtime_sample_is_open_outside_sampled_mode():
    assert obs_runtime.sample("experiment")
    sampler = obs.SpanSampler(rate=0.0, seed=0)
    with obs.capture(mode="sampled", sampler=sampler):
        assert not obs_runtime.sample("experiment")


# -------------------------------------------------------- `repro profile`


def _run_profile_cli(args):
    out = io.StringIO()
    code = main(["profile", *args], out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


def test_profile_cli_counters_smoke():
    text = _run_profile_cli(["mixnet", "--obs-mode", "counters"])
    assert "obs-mode=counters" in text
    for phase in ("build", "drive", "settle", "analyze", "total"):
        assert phase in text


def test_profile_cli_json_deterministic_digest(tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    for path in (first, second):
        _run_profile_cli(
            [
                "mixnet",
                "--obs-mode",
                "sampled",
                "--obs-sample",
                "0.4",
                "--json",
                "--out",
                str(path),
            ]
        )
    a = json.loads(first.read_text())
    b = json.loads(second.read_text())
    assert a["trace_digest"] == b["trace_digest"]
    assert a["spans"] > 0
    assert a["sampler"]["rate"] == 0.4
    assert a["phase_ms"].keys() == {"build", "drive", "settle", "analyze"}


def test_profile_cli_trace_out_segments(tmp_path):
    trace_dir = tmp_path / "segments"
    out = _run_profile_cli(
        [
            "mixnet",
            "--obs-mode",
            "full",
            "--trace-out",
            str(trace_dir),
        ]
    )
    assert "segments under" in out
    segment_files = sorted(trace_dir.glob("spans-*.jsonl"))
    assert segment_files
    spans = [
        json.loads(line)
        for path in segment_files
        if "-metrics" not in path.name
        for line in path.read_text().splitlines()
    ]
    assert spans and all(record["type"] == "span" for record in spans)


def test_profile_cli_unknown_scenario():
    out = io.StringIO()
    assert main(["profile", "no-such-demo"], out=out) == 2
    assert "unknown scenario" in out.getvalue()
