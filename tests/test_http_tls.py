"""Unit tests for the HTTP and TLS substrates."""

import pytest

from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    PARTIAL_SENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Sealed, Subject
from repro.http.messages import fqdn_value, make_request
from repro.http.origin import (
    HTTP_PROTOCOL,
    OriginDirectory,
    OriginServer,
    TLS_HTTP_PROTOCOL,
)
from repro.http.proxy import CONNECT_PROTOCOL, ConnectProxy, ConnectRequest
from repro.net.network import Network
from repro.tls.handshake import TlsClientHello, TlsClientSession, TlsServer

ALICE = Subject("alice")


def _client(world, network):
    entity = world.entity("Client", "device", trusted_by_user=True)
    identity = LabeledValue("198.51.100.1", SENSITIVE_IDENTITY, ALICE, "ip")
    return network.add_host("client", entity, identity=identity)


class TestHttpMessages:
    def test_request_labels(self):
        request = make_request("example.com", "/p", ALICE, body="data")
        assert request.fqdn.label == PARTIAL_SENSITIVE_DATA
        assert request.content.label == SENSITIVE_DATA
        assert request.host == "example.com"
        assert "GET /p data" == request.path_and_body

    def test_fqdn_value(self):
        value = fqdn_value("example.com", ALICE)
        assert value.subject == ALICE and value.label.partial


class TestOrigin:
    def test_plain_request_response(self):
        world, network = World(), Network()
        client = _client(world, network)
        origin = OriginServer(
            network, world.entity("Origin", "origin-org"), "example.com"
        )
        response = client.transact(
            origin.address, make_request("example.com", "/x", ALICE), HTTP_PROTOCOL
        )
        assert response.ok and "example.com" in str(response.body.payload)
        assert origin.requests_served == 1

    def test_tls_request_is_sealed_both_ways(self):
        world, network = World(), Network()
        client = _client(world, network)
        origin = OriginServer(
            network, world.entity("Origin", "origin-org"), "example.com"
        )
        client.entity.grant_key(origin.tls_key_id)
        sealed = Sealed.wrap(
            origin.tls_key_id, [make_request("example.com", "/x", ALICE)], subject=ALICE
        )
        reply = client.transact(origin.address, sealed, TLS_HTTP_PROTOCOL)
        (response,) = client.entity.unseal(reply)
        assert response.ok

    def test_directory_lookup(self):
        world, network = World(), Network()
        directory = OriginDirectory()
        origin = OriginServer(
            network, world.entity("Origin", "o"), "example.com", directory=directory
        )
        assert directory.address_of("EXAMPLE.com") == origin.address
        with pytest.raises(LookupError):
            directory.address_of("missing.test")


class TestConnectProxy:
    def test_single_hop_tunnel(self):
        world, network = World(), Network()
        client = _client(world, network)
        directory = OriginDirectory()
        origin = OriginServer(
            network, world.entity("Origin", "o"), "example.com", directory=directory
        )
        proxy = ConnectProxy(
            network, world.entity("Proxy", "p"), "proxy", "tun-1", directory
        )
        client.entity.grant_key("tun-1")
        client.entity.grant_key(origin.tls_key_id)
        request = make_request("example.com", "/x", ALICE)
        inner = Sealed.wrap(origin.tls_key_id, [request], subject=ALICE)
        hop = ConnectRequest(
            target="example.com",
            inner=inner,
            inner_protocol=TLS_HTTP_PROTOCOL,
            target_fqdn=fqdn_value("example.com", ALICE),
        )
        tunneled = Sealed.wrap("tun-1", [hop], subject=ALICE)
        reply = client.transact(proxy.address, tunneled, CONNECT_PROTOCOL)
        (tls_reply,) = client.entity.unseal(reply)
        (response,) = client.entity.unseal(tls_reply)
        assert response.ok
        assert proxy.connections_relayed == 1
        # The proxy saw the FQDN (partial) but never the request (full).
        proxy_labels = world.ledger.labels_of("Proxy")
        assert PARTIAL_SENSITIVE_DATA in proxy_labels
        assert SENSITIVE_DATA not in proxy_labels

    def test_proxy_without_directory_cannot_resolve_names(self):
        world, network = World(), Network()
        client = _client(world, network)
        proxy = ConnectProxy(network, world.entity("Proxy", "p"), "proxy", "tun-1")
        client.entity.grant_key("tun-1")
        hop = ConnectRequest(target="nowhere.test", inner=b"x", inner_protocol="p")
        client.send(proxy.address, Sealed.wrap("tun-1", [hop], subject=ALICE), CONNECT_PROTOCOL)
        with pytest.raises(LookupError):
            network.run()

    def test_non_connect_payload_rejected(self):
        world, network = World(), Network()
        client = _client(world, network)
        proxy = ConnectProxy(network, world.entity("Proxy", "p"), "proxy", "tun-1")
        client.entity.grant_key("tun-1")
        client.send(proxy.address, Sealed.wrap("tun-1", ["junk"], subject=ALICE), CONNECT_PROTOCOL)
        with pytest.raises(TypeError):
            network.run()


class TestTls:
    def _run(self, use_ech):
        world, network = World(), Network()
        client = _client(world, network)
        server = TlsServer(network, world.entity("Server", "s"), "site.example")
        session = TlsClientSession(client, server, ALICE, use_ech=use_ech)
        response = session.request(make_request("site.example", "/x", ALICE))
        return world, server, response

    def test_handshake_and_request(self):
        world, server, response = self._run(use_ech=False)
        assert response.ok and server.requests_served == 1

    def test_server_sees_request_either_way(self):
        for use_ech in (False, True):
            world, server, _ = self._run(use_ech)
            assert SENSITIVE_DATA in world.ledger.labels_of("Server")

    def test_hello_requires_exactly_one_sni_form(self):
        with pytest.raises(ValueError):
            TlsClientHello(session_hint=1)
        with pytest.raises(ValueError):
            TlsClientHello(
                session_hint=1,
                sni=fqdn_value("a.example", ALICE),
                ech=Sealed.wrap("k", [fqdn_value("a.example", ALICE)]),
            )

    def test_sessions_use_distinct_keys(self):
        world, network = World(), Network()
        client = _client(world, network)
        server = TlsServer(network, world.entity("Server", "s"), "site.example")
        one = TlsClientSession(client, server, ALICE)
        two = TlsClientSession(client, server, ALICE)
        one.handshake()
        two.handshake()
        assert one.session_key_id != two.session_key_id
