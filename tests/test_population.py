"""The population engine: determinism, coverage, churn, and wiring."""

import math

import pytest

from repro.population import (
    DEFAULT_PROFILES,
    PopulationEngine,
    PopulationSpec,
)


def _engine(**overrides) -> PopulationEngine:
    spec = PopulationSpec(
        users=overrides.pop("users", 200), **overrides
    )
    return PopulationEngine(spec)


class TestDeterminism:
    def test_same_seed_same_arrivals(self):
        first = list(_engine(seed=11).arrivals(limit=500))
        second = list(_engine(seed=11).arrivals(limit=500))
        assert first == second

    def test_different_seed_different_stream(self):
        first = list(_engine(seed=11).arrivals(limit=200))
        second = list(_engine(seed=12).arrivals(limit=200))
        assert first != second

    def test_arrivals_resets_between_calls(self):
        engine = _engine(seed=5)
        first = list(engine.arrivals(limit=300))
        second = list(engine.arrivals(limit=300))
        assert first == second

    def test_arrival_times_increase(self):
        times = [a.time for a in _engine().arrivals(limit=400)]
        assert times == sorted(times)
        assert times[0] >= 0.0


class TestCoverage:
    def test_stride_walk_covers_every_user(self):
        """The coprime stride is bijective: a long enough stream
        touches the whole population, not a lucky subset."""
        engine = _engine(users=97, seed=3)
        seen = {a.user for a in engine.arrivals(limit=4_000)}
        assert len(seen) == 97

    def test_user_names_are_stable_and_bounded(self):
        engine = _engine(users=50)
        names = engine.user_names(50)
        assert names[0] == "user-0"
        assert names[-1] == "user-49"
        with pytest.raises(ValueError):
            engine.user_names(51)

    def test_profile_assignment_is_deterministic_and_mixed(self):
        engine = _engine(users=1_000)
        profiles = [engine.profile_of(i).name for i in range(1_000)]
        assert profiles == [engine.profile_of(i).name for i in range(1_000)]
        counts = {name: profiles.count(name) for name in set(profiles)}
        # All three default cohorts appear; light dominates (weight 6).
        assert set(counts) == {p.name for p in DEFAULT_PROFILES}
        assert counts["light"] > counts["mobile"]

    def test_linkability_population_is_uniform(self):
        population = _engine(users=10).linkability_population()
        assert population == {f"user-{i}": 1.0 for i in range(10)}


class TestChurnAndShape:
    def test_sessions_churn(self):
        engine = _engine(users=50, session_lifetime=10.0, base_rate=50.0)
        arrivals = list(engine.arrivals(limit=2_000))
        assert engine.sessions_opened > 50
        assert any(not a.new_session for a in arrivals)

    def test_duration_bound(self):
        engine = _engine(base_rate=20.0)
        arrivals = list(engine.arrivals(duration=100.0))
        assert arrivals
        assert all(a.time <= 100.0 for a in arrivals)

    def test_requires_a_bound(self):
        with pytest.raises(ValueError):
            list(_engine().arrivals())

    def test_diurnal_thinning_modulates_rate(self):
        """With near-full-amplitude diurnal shape, troughs are quiet."""
        engine = _engine(
            base_rate=100.0,
            diurnal_amplitude=0.95,
            diurnal_period=1_000.0,
        )
        arrivals = list(engine.arrivals(duration=1_000.0))
        phase = [0, 0]
        for arrival in arrivals:
            half = int((arrival.time % 1_000.0) >= 500.0)
            phase[half] += 1
        # One half-period is the peak, the other the trough.
        assert max(phase) > 2 * max(1, min(phase))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PopulationSpec(users=0)
        with pytest.raises(ValueError):
            PopulationSpec(users=10, base_rate=0.0)
        with pytest.raises(ValueError):
            PopulationSpec(users=10, diurnal_amplitude=1.5)


class TestScenarioWiring:
    def test_pgpp_subjects_come_from_engine(self):
        from repro.scenario import run_scenario

        engine = _engine(users=64)
        run = run_scenario("pgpp", users=3, population=engine)
        assert run.population_engine is engine
        subject_names = set(run.world.ledger.subject_names())
        assert {"user-0", "user-1", "user-2"} <= subject_names

    def test_engine_less_run_is_unchanged(self):
        from repro.scenario import run_scenario

        baseline = run_scenario("pgpp", users=3)
        assert baseline.population_engine is None
        assert {"user-0", "user-1", "user-2"} <= set(
            baseline.world.ledger.subject_names()
        )

    def test_spec_coerces_to_engine(self):
        from repro.scenario import run_scenario

        run = run_scenario(
            "ppm-naive", clients=3, population=PopulationSpec(users=32)
        )
        assert run.population_engine is not None
        assert run.population_engine.spec.users == 32

    def test_score_run_uses_engine_population(self):
        from repro.risk import score_run
        from repro.scenario import run_scenario

        engine = _engine(users=500)
        run = run_scenario("pgpp", users=3, population=engine)
        scored = score_run(run)
        baseline = score_run(run_scenario("pgpp", users=3))
        # The ambient population is 500 users, not 3: every subject's
        # linkability (and so the pair risks) drops against the baseline.
        assert scored.mean_pair_risk() < baseline.mean_pair_risk()


def test_profile_weights_shape_the_mix():
    """A heavily-weighted profile dominates arrival counts."""
    from repro.population import BehaviorProfile

    spec = PopulationSpec(
        users=300,
        profiles=(
            BehaviorProfile("busy", weight=9.0, activity=1.0),
            BehaviorProfile("idle", weight=1.0, activity=1.0),
        ),
    )
    engine = PopulationEngine(spec)
    names = [engine.profile_of(i).name for i in range(300)]
    busy = names.count("busy")
    assert busy > 200
    assert 0 < names.count("idle") < 100


def test_poisson_rate_is_approximately_honoured():
    engine = _engine(users=1_000, base_rate=50.0, diurnal_amplitude=0.0)
    arrivals = list(engine.arrivals(duration=40.0))
    # Mean activity across default profiles is near 1.0; allow wide
    # tolerance -- this guards magnitude, not the third decimal.
    expected = 50.0 * 40.0
    assert math.isclose(len(arrivals), expected, rel_tol=0.5)
