"""System tests: T4, plain DNS / ODNS / ODoH (paper section 3.2.2)."""

import pytest

from repro.core.labels import SENSITIVE_DATA
from repro.odns import (
    PAPER_TABLE_T4_ODNS,
    PAPER_TABLE_T4_ODOH,
    run_odns,
    run_odoh,
    run_plain_dns,
)


@pytest.fixture(scope="module")
def odns_run():
    return run_odns()


@pytest.fixture(scope="module")
def odoh_run():
    return run_odoh()


class TestPlainDnsBaseline:
    def test_resolver_couples_identity_and_queries(self):
        run = run_plain_dns()
        verdict = run.analyzer.verdict()
        assert not verdict.decoupled
        assert any(v.entity == "Resolver" for v in verdict.violations)

    def test_single_org_breach_exposes_the_user(self):
        run = run_plain_dns()
        assert run.analyzer.minimal_recoupling_coalitions()[0] == frozenset(
            {"resolver-org"}
        )


class TestOdns:
    def test_derived_table_matches_the_paper(self, odns_run):
        assert odns_run.table().as_mapping() == PAPER_TABLE_T4_ODNS

    def test_system_is_decoupled(self, odns_run):
        assert odns_run.analyzer.verdict().decoupled

    def test_answers_are_correct(self, odns_run):
        assert odns_run.answers == ["93.184.216.34"] * 3

    def test_minimal_coalition_is_resolver_plus_oblivious(self, odns_run):
        coalitions = odns_run.analyzer.minimal_recoupling_coalitions(max_size=2)
        assert frozenset({"resolver-org", "oblivious-org"}) in coalitions

    def test_recursive_resolver_never_saw_a_qname(self, odns_run):
        for obs in odns_run.world.ledger.by_entity("Resolver"):
            assert obs.description != "dns qname"


class TestOdoh:
    def test_derived_table_matches_the_paper(self, odoh_run):
        assert odoh_run.table().as_mapping() == PAPER_TABLE_T4_ODOH

    def test_system_is_decoupled(self, odoh_run):
        assert odoh_run.analyzer.verdict().decoupled

    def test_real_hpke_decryption_produced_answers(self, odoh_run):
        assert odoh_run.answers == ["93.184.216.34"] * 3
        assert odoh_run.fetches == 3

    def test_proxy_never_saw_plaintext(self, odoh_run):
        labels = odoh_run.world.ledger.labels_of("Oblivious Proxy")
        assert SENSITIVE_DATA not in labels
        assert all(not label.is_sensitive for label in labels if label.is_data)

    def test_minimal_coalition_is_proxy_plus_target(self, odoh_run):
        coalitions = odoh_run.analyzer.minimal_recoupling_coalitions(max_size=2)
        assert frozenset({"proxy-org", "target-org"}) in coalitions

    def test_target_is_individually_breach_proof(self, odoh_run):
        assert odoh_run.analyzer.breach("target-org").breach_proof
        assert odoh_run.analyzer.breach("proxy-org").breach_proof
