"""Smoke-run every CLI demo: all scenario paths execute end to end."""

import io

import pytest

from repro.cli import _DEMOS, _register_demos, main

_register_demos()


@pytest.mark.parametrize("name", sorted(_DEMOS))
def test_demo_runs_and_reports(name):
    out = io.StringIO()
    code = main(["demo", name], out=out)
    text = out.getvalue()
    assert code == 0
    # Every demo prints a knowledge table, a verdict, and breach lines.
    assert "DECOUPLED" in text
    assert "breach of" in text
    assert "What " in text  # the explain() narration


EXPECTED_VERDICTS = {
    # The cautionary tales and partial designs are NOT decoupled ...
    "vpn": False,
    "plain-dns": False,
    "doh": False,
    "pgpp-baseline": False,
    "ppm-naive": False,
    "sso-global": False,
    "sso-pairwise": False,
    "phoenix": False,  # conservative reading (trust_attested=False)
    # ... the decoupled systems are.
    "digital-cash": True,
    "mixnet": True,
    "privacy-pass": True,
    "odns": True,
    "odoh": True,
    "pgpp": True,
    "mpr": True,
    "ppm-ohttp": True,
    "prio": True,
    "cacti": True,
    "sso-anonymous": True,
}


@pytest.mark.parametrize("name", sorted(EXPECTED_VERDICTS))
def test_demo_verdicts_match_expectations(name):
    run = _DEMOS[name]()
    assert run.analyzer.verdict().decoupled == EXPECTED_VERDICTS[name], name
