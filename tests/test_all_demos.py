"""Full-registry demo coverage: every registered scenario, text and JSON.

The parametrization is driven by the scenario registry itself, and a
completeness check pins the verdict table to the registry: adding a
scenario without recording its expected verdict fails loudly instead
of silently shrinking coverage.
"""

import io
import json

import pytest

from repro.cli import _DEMOS, _register_demos, main
from repro.scenario import all_specs

_register_demos()

ALL_SPEC_IDS = sorted(spec.id for spec in all_specs())

#: Keys every ``demo <id> --json`` document must carry.
DEMO_JSON_SCHEMA_KEYS = (
    "scenario_id",
    "title",
    "params",
    "table",
    "verdict_decoupled",
    "coalitions",
    "observations",
    "sim_seconds",
    "events",
    "messages",
    "bytes",
)

EXPECTED_VERDICTS = {
    # The cautionary tales and partial designs are NOT decoupled ...
    "vpn": False,
    "plain-dns": False,
    "doh": False,
    "ech": False,  # the CDN terminates TLS: encryption without decoupling
    "pgpp-baseline": False,
    "ppm-naive": False,
    "sso-global": False,
    "sso-pairwise": False,
    "phoenix": False,  # conservative reading (trust_attested=False)
    # ... the decoupled systems are.
    "digital-cash": True,
    "mixnet": True,
    "privacy-pass": True,
    "odns": True,
    "odoh": True,
    "pgpp": True,
    "mpr": True,
    "ppm-ohttp": True,
    "prio": True,
    "prio-histogram": True,
    "cacti": True,
    "sso-anonymous": True,
    "privcount": True,
    "privcount-sharded": True,
}


def test_registry_fully_covered():
    """Every registered spec has a demo and a pinned verdict."""
    assert sorted(_DEMOS) == ALL_SPEC_IDS
    assert sorted(EXPECTED_VERDICTS) == ALL_SPEC_IDS


@pytest.mark.parametrize("name", ALL_SPEC_IDS)
def test_demo_runs_and_reports(name):
    out = io.StringIO()
    code = main(["demo", name], out=out)
    text = out.getvalue()
    assert code == 0
    # Every demo prints a knowledge table, a verdict, and breach lines.
    assert "DECOUPLED" in text
    assert "breach of" in text
    assert "What " in text  # the explain() narration


@pytest.mark.parametrize("name", ALL_SPEC_IDS)
def test_demo_json_schema(name):
    out = io.StringIO()
    code = main(["demo", name, "--json"], out=out)
    assert code == 0
    document = json.loads(out.getvalue())
    for key in DEMO_JSON_SCHEMA_KEYS:
        assert key in document, f"{name}: missing {key!r}"
    assert document["scenario_id"] == name
    assert document["verdict_decoupled"] == EXPECTED_VERDICTS[name]
    assert document["table"], f"{name}: empty knowledge table"
    assert all(isinstance(cell, str) for cell in document["table"].values())
    assert isinstance(document["params"], dict)
    assert document["observations"] >= 0
    # Fault-free runs carry no fault section (golden parity).
    assert "faults" not in document


@pytest.mark.parametrize("name", sorted(EXPECTED_VERDICTS))
def test_demo_verdicts_match_expectations(name):
    run = _DEMOS[name]()
    assert run.analyzer.verdict().decoupled == EXPECTED_VERDICTS[name], name
