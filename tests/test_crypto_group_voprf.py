"""Unit and property tests for the Schnorr group and the VOPRF."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.group import GROUP_256, GROUP_512, SchnorrGroup, default_group
from repro.crypto.voprf import (
    DleqProof,
    VoprfServer,
    verify_dleq,
    voprf_blind,
    voprf_finalize,
)


class TestSchnorrGroup:
    def test_fixed_groups_are_valid(self):
        for group in (GROUP_256, GROUP_512):
            assert group.is_element(group.generator)
            assert group.exp(group.generator, group.order) == 1

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ValueError):
            SchnorrGroup(15)
        with pytest.raises(ValueError):
            SchnorrGroup(13)  # prime but 6 is not prime -> not safe

    def test_membership_euler_criterion(self):
        group = GROUP_256
        element = group.exp(group.generator, 12345)
        assert group.is_element(element)
        assert not group.is_element(0)
        assert not group.is_element(group.p)

    def test_hash_to_group_lands_in_subgroup(self):
        group = GROUP_256
        for message in (b"", b"a", b"privacy pass", b"\x00" * 40):
            assert group.is_element(group.hash_to_group(message))

    def test_hash_to_group_distinct_inputs_distinct_outputs(self):
        group = GROUP_256
        assert group.hash_to_group(b"a") != group.hash_to_group(b"b")

    def test_encode_decode_roundtrip(self):
        group = GROUP_256
        element = group.exp(group.generator, 99)
        assert group.decode_element(group.encode_element(element)) == element

    def test_decode_rejects_non_elements(self):
        group = GROUP_256
        with pytest.raises(ValueError):
            group.decode_element((0).to_bytes(group.element_bytes, "big"))

    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=15)
    def test_scalar_inverse(self, scalar):
        group = GROUP_256
        inv = group.scalar_inv(scalar)
        element = group.exp(group.generator, scalar)
        assert group.exp(element, inv) == group.generator

    def test_exp_mul_consistency(self):
        group = GROUP_256
        g = group.generator
        assert group.mul(group.exp(g, 3), group.exp(g, 4)) == group.exp(g, 7)


class TestVoprf:
    def test_blind_evaluate_finalize_matches_direct(self):
        server = VoprfServer(rng=random.Random(1))
        state = voprf_blind(b"input", rng=random.Random(2))
        evaluated, proof = server.evaluate(state.blinded_element)
        output = voprf_finalize(state, evaluated, proof, server.public_key)
        assert output == server.evaluate_unblinded(b"input")

    def test_different_inputs_different_outputs(self):
        server = VoprfServer(rng=random.Random(3))
        assert server.evaluate_unblinded(b"a") != server.evaluate_unblinded(b"b")

    def test_different_keys_different_outputs(self):
        one = VoprfServer(rng=random.Random(4))
        two = VoprfServer(rng=random.Random(5))
        assert one.evaluate_unblinded(b"x") != two.evaluate_unblinded(b"x")

    def test_dleq_proof_verifies(self):
        server = VoprfServer(rng=random.Random(6))
        state = voprf_blind(b"x", rng=random.Random(7))
        evaluated, proof = server.evaluate(state.blinded_element)
        assert verify_dleq(
            server.group, server.public_key, state.blinded_element, evaluated, proof
        )

    def test_tampered_proof_rejected(self):
        server = VoprfServer(rng=random.Random(8))
        state = voprf_blind(b"x", rng=random.Random(9))
        evaluated, proof = server.evaluate(state.blinded_element)
        bad = DleqProof(challenge=proof.challenge, response=proof.response + 1)
        with pytest.raises(ValueError):
            voprf_finalize(state, evaluated, bad, server.public_key)

    def test_key_substitution_rejected(self):
        """A server trying to segregate users by key fails the DLEQ."""
        honest = VoprfServer(rng=random.Random(10))
        rogue = VoprfServer(rng=random.Random(11))
        state = voprf_blind(b"x", rng=random.Random(12))
        evaluated, proof = rogue.evaluate(state.blinded_element)
        with pytest.raises(ValueError):
            voprf_finalize(state, evaluated, proof, honest.public_key)

    def test_rejects_non_group_blinded_element(self):
        server = VoprfServer(rng=random.Random(13))
        with pytest.raises(ValueError):
            server.evaluate(0)

    def test_server_view_is_blinded(self):
        """The blinded element differs from the hashed input element."""
        server = VoprfServer(rng=random.Random(14))
        state = voprf_blind(b"x", rng=random.Random(15))
        assert state.blinded_element != server.group.hash_to_group(b"x")

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=10)
    def test_unlinkability_blinds_uniformly(self, input_data):
        """Two blindings of the same input are distinct group elements."""
        one = voprf_blind(input_data, rng=random.Random(16))
        two = voprf_blind(input_data, rng=random.Random(17))
        assert one.blinded_element != two.blinded_element
