"""Fault-injection runtime: plan semantics, golden parity, and the
fault-induced verdict flip the issue's acceptance criterion demands.

Three layers of guarantee:

1. **Plan algebra** — validation, JSON round-trips, nullity.
2. **Differential parity** — an empty (or all-zero-rate) plan is a
   no-op: per-scenario ``demo --json`` documents and the golden
   ``tables`` / ``report --json`` outputs stay byte-identical.
3. **Acceptance** — crashing the ODoH proxy flips the decoupling
   verdict via the direct-DoH fallback, the breach chain attributes
   the coupling to that fallback path, and identical seeds reproduce
   the faulty run byte-for-byte.
"""

import functools
import io
import json
from pathlib import Path

import pytest

import repro.harness as harness
from repro.cli import main
from repro.faults import (
    FaultPlan,
    FaultPlanError,
    FaultRuntime,
    HostCrash,
    LinkFault,
    Partition,
    ResiliencePolicy,
    coerce_plan,
)
from repro.net.network import TransactTimeout
from repro.scenario import all_specs, run_scenario

GOLDEN = Path(__file__).parent / "golden"
PROXY_CRASH_PLAN = (
    Path(__file__).parent.parent / "examples" / "faults" / "odoh_proxy_crash.json"
)

ALL_SPEC_IDS = sorted(spec.id for spec in all_specs())


def _demo_json(name, *extra_args):
    out = io.StringIO()
    code = main(["demo", name, "--json", *extra_args], out=out)
    assert code == 0
    return out.getvalue()


class TestFaultPlanAlgebra:
    def test_empty_plan_is_null(self):
        assert FaultPlan().is_null()
        assert not FaultPlan().can_drop()

    def test_zero_rate_links_are_null(self):
        plan = FaultPlan(links=(LinkFault(), LinkFault(src="a", dst="b")))
        assert plan.is_null()

    def test_any_impairment_is_not_null(self):
        assert not FaultPlan(links=(LinkFault(loss=0.1),)).is_null()
        assert not FaultPlan(crashes=(HostCrash(host="x"),)).is_null()
        assert not FaultPlan(partitions=(Partition(a=("a",), b=("b",)),)).is_null()
        assert not FaultPlan(curious=("relay",)).is_null()

    def test_rates_validated(self):
        with pytest.raises(FaultPlanError):
            LinkFault(loss=1.0)
        with pytest.raises(FaultPlanError):
            LinkFault(duplicate=-0.1)
        with pytest.raises(FaultPlanError):
            LinkFault(jitter=-1.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(timeout=0.0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=9,
            links=(LinkFault(src="client", dst="*", loss=0.2, jitter=0.01),),
            crashes=(HostCrash(host="proxy", at=0.5),),
            partitions=(Partition(a=("a",), b=("b",), start=0.1, end=0.9),),
            curious=("relay",),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 0, "chaos": True})
        with pytest.raises(FaultPlanError):
            coerce_plan({"links": [{"loss": 0.1, "color": "red"}]})

    def test_coerce_accepts_plan_and_dict(self):
        plan = FaultPlan.uniform_loss(0.2, seed=3)
        assert coerce_plan(plan) is plan
        assert coerce_plan(plan.to_dict()) == plan

    def test_example_plan_file_parses(self):
        plan = FaultPlan.from_json(PROXY_CRASH_PLAN.read_text())
        assert plan.crashes[0].host == "oblivious-proxy"
        assert not plan.is_null()


class TestNullPlanParity:
    """A null plan must not move a single byte of any golden output."""

    @pytest.mark.parametrize("scenario_id", ALL_SPEC_IDS)
    def test_demo_json_unchanged_by_null_plan(self, scenario_id, tmp_path):
        plan_path = tmp_path / "null.json"
        plan_path.write_text(
            FaultPlan(links=(LinkFault(loss=0.0, duplicate=0.0),)).to_json()
        )
        baseline = _demo_json(scenario_id)
        with_plan = _demo_json(scenario_id, "--faults", str(plan_path))
        assert with_plan == baseline
        assert "faults" not in json.loads(baseline)

    def test_tables_unchanged_by_null_plan(self, monkeypatch):
        original = harness._table_specs

        def faulted_specs():
            return [
                (eid, title, expected, functools.partial(runner, faults=FaultPlan()))
                for eid, title, expected, runner in original()
            ]

        monkeypatch.setattr(harness, "_table_specs", faulted_specs)
        out = io.StringIO()
        assert main(["tables"], out=out) == 0
        assert out.getvalue() == (GOLDEN / "tables.txt").read_text()

    def test_report_json_unchanged_by_null_plan(self, monkeypatch):
        original = harness._table_specs

        def faulted_specs():
            return [
                (eid, title, expected, functools.partial(runner, faults=FaultPlan()))
                for eid, title, expected, runner in original()
            ]

        monkeypatch.setattr(harness, "_table_specs", faulted_specs)
        out = io.StringIO()
        assert main(["report", "--json"], out=out) == 0
        assert out.getvalue() == (GOLDEN / "report.json").read_text()


class TestFaultSemantics:
    def test_uniform_loss_drops_and_counts(self):
        run = run_scenario("odns", faults=FaultPlan.uniform_loss(0.35, seed=3))
        summary = run.fault_summary
        net = summary["network"]
        assert net["packets_dropped"] > 0
        assert net["packets_in_flight"] == 0
        assert (
            net["packets_sent"] + net["packets_duplicated"]
            == net["packets_delivered"] + net["packets_dropped"]
        )
        assert summary["stats"]["loss_drops"] == net["packets_dropped"]

    def test_curious_relay_taps_without_dropping(self):
        baseline = run_scenario("odoh")
        curious = run_scenario("odoh", faults=FaultPlan(curious=("oblivious-proxy",)))
        assert curious.fault_summary["stats"]["curious_taps"] == 1
        # Delivery is untouched; the tap only adds wire observations.
        assert curious.fault_summary["network"]["packets_dropped"] == 0
        assert len(curious.world.ledger) > len(baseline.world.ledger)
        # Sealed queries keep the verdict: watching ciphertext decouples nothing.
        assert (
            curious.analyzer.verdict().decoupled
            == baseline.analyzer.verdict().decoupled
        )

    def test_partition_severs_matching_links(self):
        plan = FaultPlan(
            partitions=(
                Partition(a=("client",), b=("recursive-resolver",), start=0.0, end=None),
            )
        )
        run = run_scenario("plain-dns", faults=plan)
        stats = run.fault_summary["stats"]
        assert stats["partition_drops"] > 0

    def test_transact_timeout_is_runtime_error(self):
        assert issubclass(TransactTimeout, RuntimeError)


class TestAcceptanceOdohProxyCrash:
    """The issue's acceptance criterion, end to end through the CLI."""

    def test_verdict_flips_under_proxy_crash(self):
        baseline = run_scenario("odoh")
        faulted = run_scenario(
            "odoh", faults=FaultPlan.crash("oblivious-proxy", at=0.0, seed=1)
        )
        assert baseline.analyzer.verdict().decoupled is True
        assert faulted.analyzer.verdict().decoupled is False
        stats = faulted.fault_summary["stats"]
        assert stats["fallbacks"] == 3
        assert stats["failures"] == 0
        assert all("resolve" in label for label in stats["fallback_labels"])
        # The fallback still answers every query -- resilience worked,
        # privacy paid for it.
        assert faulted.answers == baseline.answers

    def test_cli_demo_reports_flip_and_fallback(self):
        baseline = _demo_json("odoh")
        faulted = _demo_json("odoh", "--faults", str(PROXY_CRASH_PLAN))
        assert json.loads(baseline)["verdict_decoupled"] is True
        document = json.loads(faulted)
        assert document["verdict_decoupled"] is False
        assert document["faults"]["stats"]["fallbacks"] == 3

    def test_breach_chain_attributes_fallback(self):
        out = io.StringIO()
        code = main(
            ["explain", "odoh", "--breach", "--faults", str(PROXY_CRASH_PLAN)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "breach of target-org" in text
        assert "network-header" in text  # identity witness: client IP on the wire
        assert "dns" in text  # data witness: plaintext qname on the same packet

    def test_same_seed_reproduces_faulty_run_byte_for_byte(self):
        first = _demo_json("odoh", "--faults", str(PROXY_CRASH_PLAN))
        second = _demo_json("odoh", "--faults", str(PROXY_CRASH_PLAN))
        assert first == second


class TestResilienceSweep:
    def test_single_point_verdict_stability(self):
        point = harness.resilience_point("odoh", 0.0)
        assert point.rate == 0.0
        assert point.verdict_stable is True
        assert point.delivery_rate == 1.0

    def test_sweep_covers_requested_grid(self):
        points = harness.resilience_sweep(
            rates=(0.0, 0.35), scenario_ids=["vpn", "odns"], seed=0
        )
        assert [(p.scenario, p.rate) for p in points] == [
            ("vpn", 0.0),
            ("vpn", 0.35),
            ("odns", 0.0),
            ("odns", 0.35),
        ]
        for point in points:
            assert 0.0 <= point.delivery_rate <= 1.0
            payload = point.to_dict()
            assert payload["scenario"] == point.scenario

    def test_resilience_cli_json(self, tmp_path):
        out_path = tmp_path / "resilience.json"
        out = io.StringIO()
        code = main(
            [
                "resilience",
                "--scenarios",
                "vpn",
                "--rates",
                "0.0,0.35",
                "--json",
                "--out",
                str(out_path),
            ],
            out=out,
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["series"] == "R"
        assert document["rates"] == [0.0, 0.35]
        assert len(document["points"]) == 2

    def test_resilience_cli_rejects_unknown_scenario(self):
        out = io.StringIO()
        assert main(["resilience", "--scenarios", "nope"], out=out) == 2
