"""System tests for the traffic-analysis adversary (D3 substrate)."""

import statistics

import pytest

from repro.adversary import PassiveCorrelator, correlation_accuracy
from repro.mixnet import run_mixnet


def _attack(run, kind):
    correlator = PassiveCorrelator(run.network.trace)
    entry = run.mixes[0].address
    exit_src = run.mixes[-1].address
    exit_dst = run.receiver.address
    if kind == "fifo":
        guesses = correlator.fifo_guesses(entry, exit_src, exit_dst)
    else:
        guesses = correlator.size_guesses(entry, exit_src, exit_dst)
    return correlation_accuracy(guesses, run.ground_truth())


class TestFifoAttack:
    def test_unbatched_relay_is_fully_correlatable(self):
        run = run_mixnet(mixes=2, senders=6, batch_size=1)
        assert _attack(run, "fifo") == pytest.approx(1.0)

    def test_batching_destroys_fifo_accuracy(self):
        accuracies = [
            _attack(run_mixnet(mixes=2, senders=8, batch_size=8, seed=seed), "fifo")
            for seed in range(5)
        ]
        assert statistics.mean(accuracies) < 0.5

    def test_larger_batches_are_stronger(self):
        small = statistics.mean(
            _attack(run_mixnet(mixes=2, senders=4, batch_size=2, seed=s), "fifo")
            for s in range(5)
        )
        large = statistics.mean(
            _attack(run_mixnet(mixes=2, senders=16, batch_size=16, seed=s), "fifo")
            for s in range(5)
        )
        assert large < small


class TestSizeAttack:
    def test_size_attack_defeats_batching_without_padding(self):
        run = run_mixnet(mixes=2, senders=8, batch_size=8, use_padding=False)
        assert _attack(run, "size") == pytest.approx(1.0)

    def test_padding_restores_batch_protection(self):
        accuracies = [
            _attack(
                run_mixnet(mixes=2, senders=8, batch_size=8, use_padding=True, seed=s),
                "size",
            )
            for s in range(5)
        ]
        assert statistics.mean(accuracies) < 0.5


class TestApiBehaviour:
    def test_accuracy_of_no_guesses_is_zero(self):
        assert correlation_accuracy([], {}) == 0.0

    def test_guesses_pair_every_message(self):
        run = run_mixnet(mixes=2, senders=5, batch_size=5)
        correlator = PassiveCorrelator(run.network.trace)
        guesses = correlator.fifo_guesses(
            run.mixes[0].address, run.mixes[-1].address, run.receiver.address
        )
        assert len(guesses) == 5
