"""Property tests for the risk-score invariants.

The score's contract (``src/repro/risk/score.py``) promises four
things no matter what a protocol run looks like:

* recording more observations never lowers a cell's or a pair's risk;
* growing the anonymity population never raises any subject's
  linkability;
* every score stays inside [0, 1] with no clamping anywhere;
* the decomposition terms sum to the pair score byte-exactly.
"""

from io import StringIO

from hypothesis import given, strategies as st

from repro.cli import main
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Subject
from repro.risk import score_run, subject_linkability

SUBJECTS = {"alice": Subject("alice"), "bob": Subject("bob")}

#: The linkability population is held fixed across every comparison in
#: this module so only the observation pool varies.
POPULATION = {"alice": 1.0, "bob": 1.0}

LABELS = {
    "id": SENSITIVE_IDENTITY,
    "data": SENSITIVE_DATA,
    "pseudo": NONSENSITIVE_IDENTITY,
    "blob": NONSENSITIVE_DATA,
}

#: One recorded observation: (label kind, subject, session, payload).
#: Payloads repeat across events so shared values can bridge sessions,
#: exercising the union-find coupling path, and sessions repeat so
#: same-session coupling fires too.
EVENTS = st.tuples(
    st.sampled_from(sorted(LABELS)),
    st.sampled_from(sorted(SUBJECTS)),
    st.sampled_from(["s1", "s2", "s3"]),
    st.integers(min_value=0, max_value=4),
)


def _score_events(events):
    world = World()
    world.entity("User", "device", trusted_by_user=True)
    server = world.entity("Server", "org-server")
    for kind, subject, session, payload in events:
        value = LabeledValue(
            f"v{payload}", LABELS[kind], SUBJECTS[subject], f"{kind} fact"
        )
        server.observe(value, session=session)
    return score_run(world=world, population=POPULATION)


class TestMonotonicity:
    @given(st.lists(EVENTS, min_size=1, max_size=12), st.integers(1, 11))
    def test_adding_observations_never_lowers_pair_risk(self, events, cut):
        cut = min(cut, len(events))
        before = _score_events(events[:cut])
        after = _score_events(events)
        for pair in before.pairs:
            grown = after.pair(pair.entity, pair.subject)
            assert grown.score >= pair.score
            assert grown.sensitivity >= pair.sensitivity
            assert grown.inferability >= pair.inferability

    @given(st.lists(EVENTS, min_size=1, max_size=12), st.integers(1, 11))
    def test_adding_observations_never_lowers_cell_risk(self, events, cut):
        cut = min(cut, len(events))
        before = _score_events(events[:cut])
        after = _score_events(events)
        grown = {
            (c.entity, c.subject, c.glyph, c.description): c.score
            for c in after.cells
        }
        for cell in before.cells:
            key = (cell.entity, cell.subject, cell.glyph, cell.description)
            assert grown[key] >= cell.score

    @given(st.integers(2, 32), st.integers(0, 16))
    def test_growing_anonymity_set_never_raises_linkability(self, k, extra):
        smaller = {f"u{i}": 1.0 for i in range(k)}
        larger = {f"u{i}": 1.0 for i in range(k + extra)}
        assert subject_linkability(larger, "u0") <= subject_linkability(
            smaller, "u0"
        )

    @given(
        st.dictionaries(
            st.sampled_from([f"u{i}" for i in range(6)]),
            st.floats(min_value=0.01, max_value=10),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=0.01, max_value=10),
    )
    def test_weight_on_other_subjects_never_raises_linkability(
        self, population, extra
    ):
        before = subject_linkability(population, "u0")
        grown = dict(population)
        grown["other"] = grown.get("other", 0.0) + extra
        assert subject_linkability(grown, "u0") <= before + 1e-12


class TestBounds:
    @given(st.lists(EVENTS, min_size=1, max_size=12))
    def test_every_score_stays_in_unit_interval(self, events):
        report = _score_events(events)
        for pair in report.pairs:
            assert 0.0 <= pair.score <= 1.0
        for cell in report.cells:
            assert 0.0 <= cell.score <= 1.0
        assert 0.0 <= report.system_risk() <= 1.0
        for name in report.subjects:
            assert 0.0 <= report.subject_exposure(name) <= 1.0

    @given(st.lists(EVENTS, min_size=1, max_size=12))
    def test_terms_sum_exactly_to_the_score(self, events):
        report = _score_events(events)
        for pair in report.pairs:
            assert sum(t.value for t in pair.terms) == pair.score

    @given(
        st.dictionaries(
            st.text(
                alphabet="abcdef", min_size=1, max_size=3
            ),
            st.floats(min_value=0.0, max_value=10),
            max_size=8,
        ),
        st.sampled_from(["a", "b", "stranger"]),
    )
    def test_linkability_stays_in_unit_interval(self, population, subject):
        assert 0.0 <= subject_linkability(population, subject) <= 1.0


class TestDeterminism:
    def _risk_json(self, argv):
        out = StringIO()
        assert main(argv, out=out) == 0
        return out.getvalue()

    def test_fixed_seed_risk_json_is_byte_identical(self):
        argv = ["risk", "--scenarios", "odoh,prio,vpn", "--json"]
        assert self._risk_json(argv) == self._risk_json(argv)

    def test_parallel_risk_json_matches_serial(self):
        base = ["risk", "--scenarios", "odoh,prio,mixnet", "--json"]
        serial = self._risk_json(base)
        parallel = self._risk_json(base + ["--jobs", "2"])
        assert serial == parallel
