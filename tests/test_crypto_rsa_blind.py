"""Unit and property tests for RSA-FDH and Chaum blind signatures."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.blind import BlindSigner, blind, sign_blinded, unblind
from repro.crypto.numtheory import modinv
from repro.crypto.rsa import generate_rsa_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(512, rng=random.Random(20221114))


class TestRsaFdh:
    def test_sign_verify_roundtrip(self, keypair):
        signature = keypair.sign(b"hello")
        assert keypair.public.verify(b"hello", signature)

    def test_wrong_message_fails(self, keypair):
        signature = keypair.sign(b"hello")
        assert not keypair.public.verify(b"goodbye", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = keypair.sign(b"hello")
        assert not keypair.public.verify(b"hello", signature ^ 1)

    def test_out_of_range_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"hello", keypair.public.n + 5)

    def test_crt_signing_matches_plain_exponentiation(self, keypair):
        value = 0x1234567890ABCDEF
        assert keypair.raw_sign_value(value) == pow(
            value, keypair.d, keypair.public.n
        )

    def test_keygen_rejects_tiny_moduli(self):
        with pytest.raises(ValueError):
            generate_rsa_keypair(64)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=10)
    def test_fdh_is_stable_and_in_range(self, message):
        pk = _MODULE_KEY.public
        h1 = pk.hash_to_modulus(message)
        h2 = pk.hash_to_modulus(message)
        assert h1 == h2 and 0 <= h1 < pk.n


_MODULE_KEY = generate_rsa_keypair(512, rng=random.Random(20221114))


class TestBlindSignatures:
    def test_blind_sign_unblind_verifies(self, keypair):
        rng = random.Random(5)
        state = blind(keypair.public, b"coin", rng)
        signature = unblind(keypair.public, state, sign_blinded(keypair, state.blinded_value))
        assert keypair.public.verify(b"coin", signature)

    def test_cheating_signer_is_detected(self, keypair):
        rng = random.Random(6)
        state = blind(keypair.public, b"coin", rng)
        bogus = sign_blinded(keypair, (state.blinded_value + 1) % keypair.public.n)
        with pytest.raises(ValueError):
            unblind(keypair.public, state, bogus)

    def test_blinded_value_differs_from_hash(self, keypair):
        state = blind(keypair.public, b"coin", random.Random(7))
        assert state.blinded_value != keypair.public.hash_to_modulus(b"coin")

    def test_two_blindings_of_same_message_differ(self, keypair):
        rng = random.Random(8)
        first = blind(keypair.public, b"coin", rng)
        second = blind(keypair.public, b"coin", rng)
        assert first.blinded_value != second.blinded_value

    def test_information_theoretic_unlinkability(self, keypair):
        """Every signing session is consistent with every final signature.

        For any (blinded value b, message m) pair there exists a unit u
        with b = H(m) * u mod n, so the signer's log carries zero
        linkage information -- the algebraic heart of section 3.1.1.
        """
        rng = random.Random(9)
        n = keypair.public.n
        messages = [b"coin-a", b"coin-b", b"coin-c"]
        states = [blind(keypair.public, m, rng) for m in messages]
        for state in states:
            for message in messages:
                hashed = keypair.public.hash_to_modulus(message)
                connecting = (state.blinded_value * modinv(hashed, n)) % n
                # the connecting factor exists and round-trips
                assert (hashed * connecting) % n == state.blinded_value

    def test_signer_session_log_cannot_link(self, keypair):
        signer = BlindSigner(keypair)
        rng = random.Random(10)
        states = [blind(keypair.public, f"c{i}".encode(), rng) for i in range(3)]
        signatures = [
            unblind(keypair.public, s, signer.sign(s.blinded_value)) for s in states
        ]
        assert len(signer.sessions) == 3
        for message, signature in zip([b"c0", b"c1", b"c2"], signatures):
            assert keypair.public.verify(message, signature)
            assert not signer.could_link(message, signature)
