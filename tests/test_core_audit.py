"""Tests for the one-call audit report."""

import pytest

from repro.core import audit
from repro.blindsig import run_digital_cash
from repro.mpr import run_mpr
from repro.tee import run_phoenix
from repro.vpn import run_vpn


class TestGrades:
    def test_strong_grade_for_blind_signatures(self):
        run = run_digital_cash(coins=1)
        report = audit(run.world, "digital cash")
        assert report.grade == "strong"
        assert report.verdict.decoupled
        assert report.coalitions == ()

    def test_decoupled_grade_for_mpr(self):
        run = run_mpr(relays=2, requests=1)
        report = audit(run.world, "multi-party relay")
        assert report.grade == "decoupled"
        assert report.coalitions

    def test_coupled_grade_for_vpn(self):
        run = run_vpn(requests=1)
        report = audit(run.world, "vpn")
        assert report.grade == "coupled"


class TestRendering:
    def test_text_render_contains_every_section(self):
        run = run_mpr(relays=2, requests=1)
        report = audit(
            run.world, "mpr", entities=["User", "Relay 1", "Relay 2", "Origin"]
        )
        text = report.render()
        assert "Decoupling audit: mpr" in text
        assert "(▲, ●)" in text
        assert "Minimal re-coupling coalitions" in text
        assert "breach-proof" in text
        assert "Grade: DECOUPLED" in text
        assert "What User learned" in text

    def test_markdown_render(self):
        run = run_vpn(requests=1)
        report = audit(run.world, "vpn")
        markdown = report.to_markdown()
        assert markdown.startswith("## Decoupling audit: vpn")
        assert "| organization | breach exposure |" in markdown
        assert "exposes users" in markdown

    def test_narration_can_be_disabled(self):
        run = run_vpn(requests=1)
        report = audit(run.world, "vpn", narrate=False)
        assert report.narrations == ()
        assert "learned" not in report.render()

    def test_tee_trust_note_appears(self):
        run = run_phoenix(requests=1)
        report = audit(
            run.world, "phoenix",
            entities=["Client", "CDN Operator", "CDN Enclave"],
        )
        assert not report.verdict.decoupled
        assert report.verdict_trusting_attested.decoupled
        assert "attested TEEs are trusted" in report.render()
