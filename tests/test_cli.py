"""Tests for the ``python -m repro`` command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_demos(self):
        code, output = _run(["list"])
        assert code == 0
        for name in ("mixnet", "odoh", "pgpp", "prio", "vpn", "phoenix"):
            assert name in output


class TestDemo:
    def test_demo_prints_table_and_verdict(self):
        code, output = _run(["demo", "digital-cash"])
        assert code == 0
        assert "(▲, ●)" in output
        assert "DECOUPLED" in output
        assert "breach of" in output

    def test_unknown_demo_fails_gracefully(self):
        code, output = _run(["demo", "nonexistent"])
        assert code == 2
        assert "unknown demo" in output

    def test_vpn_demo_shows_the_violation(self):
        code, output = _run(["demo", "vpn"])
        assert code == 0
        assert "NOT DECOUPLED" in output
        assert "EXPOSED" in output


class TestFigures:
    def test_figures_render_flow_steps(self):
        code, output = _run(["figures"])
        assert code == 0
        assert "Figure 1" in output and "Figure 2" in output
        assert "Mix 1" in output and "Issuer" in output


class TestTables:
    def test_all_tables_match(self):
        code, output = _run(["tables"])
        assert code == 0
        assert output.count("MATCH") >= 11
        assert "MISMATCH" not in output


class TestTrace:
    def test_trace_mixnet_exports_valid_jsonl(self, tmp_path):
        import json

        path = tmp_path / "spans.jsonl"
        code, output = _run(["trace", "mixnet", "--out", str(path)])
        assert code == 0
        assert "traced demo 'mixnet'" in output
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        spans = {row["span_id"]: row for row in rows if row["type"] == "span"}
        assert spans, "no span records exported"
        # Acceptance: every packet-delivery span nests under a transact
        # span, and sim times stay within the demo root's window.
        roots = [s for s in spans.values() if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["demo"]
        sim_end = roots[0]["sim_end"]
        delivers = [s for s in spans.values() if s["name"] == "deliver"]
        assert delivers
        for deliver in delivers:
            node = deliver
            while node["parent_id"] is not None and node["name"] != "transact":
                node = spans[node["parent_id"]]
            assert node["name"] == "transact"
            assert 0.0 <= deliver["sim_start"] <= deliver["sim_end"] <= sim_end
        # Metrics ride along in the same file.
        assert any(row["type"] == "counter" for row in rows)

    def test_trace_unknown_demo_fails_gracefully(self, tmp_path):
        code, output = _run(["trace", "nope", "--out", str(tmp_path / "x.jsonl")])
        assert code == 2
        assert "unknown demo" in output

    def test_tracing_is_off_after_trace_run(self, tmp_path):
        from repro.obs import runtime

        _run(["trace", "vpn", "--out", str(tmp_path / "x.jsonl")])
        assert runtime.ENABLED is False


class TestReportTrace:
    def test_report_trace_prints_timing_for_all_experiments(self):
        code, output = _run(["report", "--trace"])
        assert code == 0
        assert "Per-experiment timing / metrics" in output
        section = output[output.index("Per-experiment timing") :]
        for experiment_id in (
            "T1", "T2", "T3", "T4a", "T4b", "T5", "T6", "T7", "T8",
            "E1a", "E1b", "E2a", "E2b", "E2c",
        ):
            assert f"  {experiment_id} " in section
        assert "events=" in section and "messages=" in section
        assert "bytes=" in section and "spans=" in section
        assert "ALL PAPER TABLES REPRODUCED EXACTLY" in output


class TestReportJson:
    def test_report_json_is_machine_readable(self):
        import json

        code, output = _run(["report", "--json"])
        assert code == 0
        document = json.loads(output)
        assert document["all_match"] is True
        assert len(document["experiments"]) == 14
        first = document["experiments"][0]
        assert first["experiment_id"] == "T1"
        assert first["matches"] is True
        assert first["expected"] and first["measured"]
        assert set(document["sweeps"]) == {"D1", "D2", "D3", "D4", "D5", "D6"}
        assert document["sweeps"]["D1"]["points"][0]["degree"] == 1
        assert document["figures"]["F1"]

    def test_report_json_carries_audit_grades(self):
        import json

        code, output = _run(["report", "--json"])
        assert code == 0
        document = json.loads(output)
        grades = {row["experiment_id"]: row["grade"]
                  for row in document["experiments"]}
        assert set(grades.values()) <= {"strong", "decoupled", "coupled"}
        assert grades["T8"] == "coupled"  # the plain-VPN baseline couples
        assert any(grade != "coupled" for grade in grades.values())


class TestExplain:
    def test_explain_prints_causal_chain(self):
        code, output = _run(["explain", "odoh", "--entity", "Oblivious Target"])
        assert code == 0
        assert "why 'Oblivious Target' holds" in output
        assert "pkt#" in output
        assert "=> observed via" in output
        assert "origin: sent from" in output

    def test_entity_resolution_by_substring(self):
        code, output = _run(["explain", "odoh", "--entity", "target"])
        assert code == 0
        assert "Oblivious Target" in output

    def test_unknown_entity_lists_known_ones(self):
        code, output = _run(["explain", "odoh", "--entity", "resolver"])
        assert code == 2
        assert "unknown entity" in output
        assert "Oblivious Target" in output  # the helpful listing

    def test_fact_not_held_is_a_clear_error(self):
        code, output = _run(
            ["explain", "odoh", "--entity", "Oblivious Proxy", "--fact", "●"]
        )
        assert code == 1
        assert "error:" in output
        assert "does not hold" in output

    def test_unknown_demo_fails_gracefully(self):
        code, output = _run(["explain", "nonexistent", "--entity", "x"])
        assert code == 2
        assert "unknown demo" in output


class TestTimeline:
    def test_timeline_prints_growth_steps(self):
        code, output = _run(["timeline", "odns"])
        assert code == 0
        assert "knowledge timeline of demo 'odns'" in output
        assert "growth steps" in output
        assert "pkt#" in output

    def test_unknown_demo_fails_gracefully(self):
        code, output = _run(["timeline", "nonexistent"])
        assert code == 2
        assert "unknown demo" in output


class TestSweepsTrace:
    def test_sweeps_trace_prints_per_sweep_timing(self):
        code, output = _run(["sweeps", "--trace"])
        assert code == 0
        assert "Per-sweep timing" in output
        for sweep in ("D1", "D2", "D3", "D4", "D5", "D6"):
            assert f"  {sweep}: points=" in output


class TestScale:
    def test_scale_point_prints_summary(self):
        code, output = _run(
            ["scale", "--users", "200", "--observations", "1600",
             "--segment-rows", "256", "--checkpoints", "2"]
        )
        assert code == 0
        assert "T-series" in output
        assert "200 users" in output
        assert "mid-run ok" in output

    def test_scale_json_document(self, tmp_path):
        import json

        path = tmp_path / "scale.json"
        code, output = _run(
            ["scale", "--users", "150", "--observations", "1200",
             "--segment-rows", "256", "--out", str(path)]
        )
        assert code == 0
        document = json.loads(path.read_text())
        assert document["series"] == "T"
        (point,) = document["points"]
        assert point["users"] == 150
        assert point["mid_run_matches"] is True
        assert point["segments_spilled"] > 0

    def test_scale_sweep_over_comma_list(self):
        code, output = _run(
            ["scale", "--users", "100,200", "--json"]
        )
        assert code == 0
        import json

        document = json.loads(output)
        assert [p["users"] for p in document["points"]] == [100, 200]

    def test_scale_rejects_empty_users(self):
        code, output = _run(["scale", "--users", ","])
        assert code == 2
        assert "at least one" in output


class TestNoCommand:
    def test_help_on_no_command(self):
        code, output = _run([])
        assert code == 2
        assert "usage" in output.lower()
