"""Tests for the ``python -m repro`` command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_demos(self):
        code, output = _run(["list"])
        assert code == 0
        for name in ("mixnet", "odoh", "pgpp", "prio", "vpn", "phoenix"):
            assert name in output


class TestDemo:
    def test_demo_prints_table_and_verdict(self):
        code, output = _run(["demo", "digital-cash"])
        assert code == 0
        assert "(▲, ●)" in output
        assert "DECOUPLED" in output
        assert "breach of" in output

    def test_unknown_demo_fails_gracefully(self):
        code, output = _run(["demo", "nonexistent"])
        assert code == 2
        assert "unknown demo" in output

    def test_vpn_demo_shows_the_violation(self):
        code, output = _run(["demo", "vpn"])
        assert code == 0
        assert "NOT DECOUPLED" in output
        assert "EXPOSED" in output


class TestFigures:
    def test_figures_render_flow_steps(self):
        code, output = _run(["figures"])
        assert code == 0
        assert "Figure 1" in output and "Figure 2" in output
        assert "Mix 1" in output and "Issuer" in output


class TestTables:
    def test_all_tables_match(self):
        code, output = _run(["tables"])
        assert code == 0
        assert output.count("MATCH") >= 11
        assert "MISMATCH" not in output


class TestNoCommand:
    def test_help_on_no_command(self):
        code, output = _run([])
        assert code == 2
        assert "usage" in output.lower()
