"""Unit and property tests for the number-theory primitives."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.numtheory import (
    crt_pair,
    egcd,
    is_probable_prime,
    modinv,
    random_below,
    random_prime,
    random_safe_prime,
    random_unit,
)


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 7919, 2**127 - 1):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for n in (0, 1, 4, 561, 1105, 6601, 2**128):  # includes Carmichaels
            assert not is_probable_prime(n)

    def test_negative_numbers_are_not_prime(self):
        assert not is_probable_prime(-7)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert is_probable_prime(n) == by_trial


class TestGeneration:
    def test_random_prime_has_exact_bit_length(self):
        rng = random.Random(1)
        for bits in (16, 32, 64):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits and is_probable_prime(p)

    def test_random_safe_prime_structure(self):
        rng = random.Random(2)
        p = random_safe_prime(32, rng)
        assert is_probable_prime(p) and is_probable_prime((p - 1) // 2)

    def test_seeded_generation_is_deterministic(self):
        assert random_prime(32, random.Random(7)) == random_prime(32, random.Random(7))


class TestModularArithmetic:
    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=10**9))
    def test_egcd_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    @given(st.integers(min_value=2, max_value=10**6))
    def test_modinv_inverts_coprime_values(self, m):
        for a in (1, m - 1, 7):
            if egcd(a, m)[0] == 1:
                assert (a * modinv(a, m)) % m == 1

    def test_modinv_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    @given(
        st.integers(min_value=0, max_value=10**4),
        st.integers(min_value=0, max_value=10**4),
    )
    def test_crt_pair(self, r1, r2):
        m1, m2 = 10007, 10009  # distinct primes
        x = crt_pair(r1 % m1, m1, r2 % m2, m2)
        assert x % m1 == r1 % m1 and x % m2 == r2 % m2

    def test_crt_rejects_common_factor(self):
        with pytest.raises(ValueError):
            crt_pair(1, 6, 2, 9)


class TestRandomHelpers:
    def test_random_below_range(self):
        rng = random.Random(3)
        for _ in range(100):
            assert 0 <= random_below(17, rng) < 17

    def test_random_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            random_below(0)

    def test_random_unit_is_coprime(self):
        rng = random.Random(4)
        modulus = 2 * 3 * 5 * 7
        for _ in range(50):
            unit = random_unit(modulus, rng)
            assert egcd(unit, modulus)[0] == 1
