"""Tests for Prio histogram (one-hot vector) aggregation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.secretshare import (
    check_histogram_shares,
    make_histogram_proof,
    reconstruct_additive,
)
from repro.ppm import PAPER_TABLE_T7, run_prio_histogram


class TestHistogramProofs:
    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=10)
    def test_honest_one_hot_passes(self, bucket, parties):
        proofs = make_histogram_proof(bucket, 4, parties, rng=random.Random(1))
        assert check_histogram_shares(proofs)

    def test_shares_reconstruct_the_one_hot_vector(self):
        proofs = make_histogram_proof(2, 4, 3, rng=random.Random(2))
        for entry_index in range(4):
            value = reconstruct_additive(
                [p.entries[entry_index].x_share for p in proofs]
            )
            assert value == (1 if entry_index == 2 else 0)

    def test_two_hot_vector_fails_the_sum_check(self):
        """Forge: combine entries from two different one-hot proofs."""
        a = make_histogram_proof(0, 3, 2, rng=random.Random(3))
        b = make_histogram_proof(1, 3, 2, rng=random.Random(4))
        from repro.crypto.secretshare import HistogramProof

        forged = [
            HistogramProof(
                entries=(a[i].entries[0], b[i].entries[1], a[i].entries[2])
            )
            for i in range(2)
        ]
        assert not check_histogram_shares(forged)

    def test_out_of_range_bucket_rejected(self):
        with pytest.raises(ValueError):
            make_histogram_proof(5, 4, 2)

    def test_inconsistent_widths_rejected(self):
        a = make_histogram_proof(0, 3, 2, rng=random.Random(5))
        b = make_histogram_proof(0, 4, 2, rng=random.Random(6))
        with pytest.raises(ValueError):
            check_histogram_shares([a[0], b[1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_histogram_shares([])


class TestHistogramProtocol:
    @pytest.fixture(scope="class")
    def run(self):
        return run_prio_histogram(clients=6, aggregators=2, buckets=4)

    def test_histogram_is_exact(self, run):
        assert run.reported_histogram == run.true_histogram
        assert sum(run.reported_histogram) == run.clients

    def test_table_still_matches_the_paper(self, run):
        assert run.table().as_mapping() == PAPER_TABLE_T7

    def test_decoupled_and_aggregate_only(self, run):
        assert run.analyzer.verdict().decoupled
        assert not run.collector_sees_individual_values()

    def test_collusion_still_needs_all_aggregators(self, run):
        (coalition,) = run.analyzer.minimal_recoupling_coalitions()
        assert coalition == frozenset({"aggregator-org-1", "aggregator-org-2"})

    def test_three_aggregators(self):
        run = run_prio_histogram(clients=5, aggregators=3, buckets=3)
        assert run.reported_histogram == run.true_histogram
        assert run.analyzer.collusion_resistance() == 3
