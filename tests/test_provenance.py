"""Tests for the provenance graph and trace analytics.

The acceptance scenario is a three-host relay: a client sends a sealed
query through a forwarding relay to a server that holds the key.  Every
edge of the expected chain -- originating send, forwarding hop, final
delivery, observation -- is pinned exactly, including packet ids and
the value's derivation steps.
"""

import json
from types import SimpleNamespace

import pytest

from repro import obs
from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Sealed, Subject
from repro.net.network import Network
from repro.obs import analyze
from repro.obs import export as obs_export
from repro.obs.provenance import (
    ProvenanceError,
    ProvenanceGraph,
    build_provenance,
    knowledge_timeline,
    render_timeline,
)

ALICE = Subject("alice")


def _relay_run():
    """Client --fwd--> Relay --inner--> Server (which holds the key)."""
    world = World()
    network = Network()
    client_ip = LabeledValue("10.9.0.1", SENSITIVE_IDENTITY, ALICE, "client ip")
    client = network.add_host(
        "client", world.entity("Client", "user", trusted_by_user=True),
        identity=client_ip,
    )
    relay = network.add_host("relay", world.entity("Relay", "relay-org"))
    server = network.add_host(
        "server", world.entity("Server", "server-org", keys={"k-server"})
    )
    query = LabeledValue("example.com", SENSITIVE_DATA, ALICE, "query")
    envelope = Sealed.wrap("k-server", [query.derived("example.com", step="encode")])

    relay.register(
        "fwd", lambda packet: (relay.send(server.address, packet.payload, "inner"), None)[1]
    )
    server.register("inner", lambda packet: None)
    client.send(relay.address, envelope, "fwd")
    network.run()
    return SimpleNamespace(world=world, network=network), client, relay, server


def _traced_relay_run():
    with obs.capture() as (tracer, _registry):
        run, client, relay, server = _relay_run()
    return build_provenance(run, tracer), run, client, relay, server


class TestEndToEndChain:
    def test_exact_chain_send_hop_delivery_observation(self):
        graph, run, client, relay, server = _traced_relay_run()
        chains = graph.why("Server")
        assert len(chains) == 1
        chain = chains[0]
        # The fact: the sensitive query, with its derivation steps.
        assert chain.glyph == "●"
        assert chain.observation["description"] == "query"
        assert chain.derivation == ("encode",)
        # The wire: packet 1 (client -> relay) forwarded as packet 2
        # (relay -> server), exactly.
        assert [hop.packet_id for hop in chain.hops] == [1, 2]
        assert chain.hops[0].src == str(client.address)
        assert chain.hops[0].dst == str(relay.address)
        assert chain.hops[1].src == str(relay.address)
        assert chain.hops[1].dst == str(server.address)
        assert chain.origin == f"sent from {client.address}"
        # The observation: the final delivery produced it.
        assert chain.observation["channel"] == "inner"
        assert chain.observation["packet_id"] == 2
        rendered = chain.render()
        assert "pkt#1" in rendered and "pkt#2" in rendered
        assert "derivation: encode" in rendered

    def test_relay_knows_identity_via_first_packet_only(self):
        graph, *_ = _traced_relay_run()
        (chain,) = graph.why("Relay")
        assert chain.glyph == "▲"
        assert [hop.packet_id for hop in chain.hops] == [1]
        assert chain.observation["channel"] == "network-header"

    def test_without_spans_chain_degrades_to_final_packet(self):
        run, *_ = _relay_run()
        graph = build_provenance(run)  # no tracer: no forwarding edges
        (chain,) = graph.why("Server")
        assert [hop.packet_id for hop in chain.hops] == [2]
        assert chain.hops[0].src is not None  # wire trace still present

    def test_local_acts_have_no_hops(self):
        run, *_ = _relay_run()
        run.world.get("Server").observe(
            LabeledValue("note", SENSITIVE_DATA, ALICE, "local note"),
            channel="self",
        )
        graph = build_provenance(run)
        chains = graph.why("Server", "local note")
        assert chains[0].hops == ()
        assert "local act" in chains[0].origin


class TestWhyErrors:
    def test_unknown_entity_lists_known_ones(self):
        graph, *_ = _traced_relay_run()
        with pytest.raises(ProvenanceError) as excinfo:
            graph.why("Nobody")
        assert "Relay" in str(excinfo.value) and "Server" in str(excinfo.value)

    def test_fact_not_held_lists_held_facts(self):
        graph, *_ = _traced_relay_run()
        with pytest.raises(ProvenanceError) as excinfo:
            graph.why("Relay", "●")  # the relay never sees the query
        message = str(excinfo.value)
        assert "does not hold" in message
        assert "▲[client ip]" in message  # what it does hold

    def test_unknown_subject(self):
        graph, *_ = _traced_relay_run()
        with pytest.raises(ProvenanceError):
            graph.why("Server", subject=Subject("bob"))


class TestFactMatching:
    def test_glyph_kind_and_description_matching(self):
        graph, *_ = _traced_relay_run()
        by_glyph = graph.why("Server", "●")
        by_description = graph.why("Server", "QUERY")
        assert by_glyph[0].observation["id"] == by_description[0].observation["id"]
        # Kind words match every label of that kind, sensitive or not:
        # the server also sees the ⊙ ciphertext exterior.
        by_kind = graph.why("Server", "data")
        assert {chain.glyph for chain in by_kind} == {"⊙", "●"}

    def test_label_object_matching(self):
        graph, *_ = _traced_relay_run()
        (chain,) = graph.why("Relay", SENSITIVE_IDENTITY)
        assert chain.glyph == "▲"


class TestTimeline:
    def test_events_grow_monotonically_and_dedup(self):
        graph, *_ = _traced_relay_run()
        events = graph.knowledge_timeline()
        times = [event.time for event in events]
        assert times == sorted(times)
        keys = [(e.entity, e.subject, e.glyph) for e in events]
        assert len(keys) == len(set(keys))  # one growth step per new mark
        relay_event = next(e for e in events if e.entity == "Relay" and e.glyph == "▲")
        assert relay_event.packet_id == 1
        assert "pkt#1" in render_timeline(events)

    def test_convenience_accepts_world_and_graph(self):
        run, *_ = _relay_run()
        from_world = knowledge_timeline(run.world)
        from_graph = knowledge_timeline(build_provenance(run))
        assert [e.entity for e in from_world] == [e.entity for e in from_graph]


class TestBreachChain:
    def test_coupling_traced_to_shared_session_packet(self):
        world = World()
        network = Network()
        client_ip = LabeledValue("10.9.0.1", SENSITIVE_IDENTITY, ALICE, "client ip")
        client = network.add_host(
            "client", world.entity("Client", "user", trusted_by_user=True),
            identity=client_ip,
        )
        server = network.add_host("server", world.entity("Server", "server-org"))
        server.register("q", lambda packet: None)
        with obs.capture() as (tracer, _):
            client.send(
                server.address,
                LabeledValue("example.com", SENSITIVE_DATA, ALICE, "query"),
                "q",
            )
            network.run()
        run = SimpleNamespace(world=world, network=network)
        breach = DecouplingAnalyzer(world).breach("server-org")
        assert breach.coupled_subjects == (ALICE,)
        graph = build_provenance(run, tracer)
        (chain,) = graph.breach_chain(breach)
        assert chain.subject == "alice"
        assert chain.link == "shared session 'pkt:1'"
        assert [h.packet_id for h in chain.identity_chain.hops] == [1]
        assert [h.packet_id for h in chain.data_chain.hops] == [1]
        assert "breach of server-org couples alice" in chain.render()

    def test_breach_proof_org_yields_no_chains(self):
        graph, run, *_ = _traced_relay_run()
        breach = DecouplingAnalyzer(run.world).breach("relay-org")
        assert breach.breach_proof
        assert graph.breach_chain(breach) == []


class TestRoundTrip:
    def test_graph_round_trips_through_jsonl(self):
        graph, *_ = _traced_relay_run()
        rebuilt = ProvenanceGraph.from_jsonl(graph.to_jsonl())
        assert set(rebuilt.nodes) == set(graph.nodes)
        assert rebuilt.edges == graph.edges
        original = graph.why("Server")[0]
        restored = rebuilt.why("Server")[0]
        assert [h.packet_id for h in restored.hops] == [
            h.packet_id for h in original.hops
        ]
        assert restored.derivation == original.derivation
        assert restored.render() == original.render()

    def test_rows_are_typed_provenance_records(self):
        graph, *_ = _traced_relay_run()
        rows = graph.to_dicts()
        assert all(row["type"] == "provenance" for row in rows)
        assert {row["record"] for row in rows} == {"node", "edge"}

    def test_export_embeds_and_recovers_the_graph(self, tmp_path):
        with obs.capture() as (tracer, registry):
            run, *_ = _relay_run()
        graph = build_provenance(run, tracer)
        text = obs_export.to_jsonl(tracer, registry, graph)
        rows = [json.loads(line) for line in text.splitlines()]
        assert {"span", "counter", "provenance"} <= {row["type"] for row in rows}
        recovered = obs_export.provenance_from_jsonl(text)
        assert set(recovered.nodes) == set(graph.nodes)
        (chain,) = recovered.why("Server")
        assert [h.packet_id for h in chain.hops] == [1, 2]

    def test_summary_counts_nodes_and_edges(self):
        graph, *_ = _traced_relay_run()
        summary = graph.summary()
        assert summary["nodes.packet"] == 2
        assert summary["edges.forwarded"] == 1
        assert summary["edges.observed"] == len(
            [n for n in graph.nodes.values() if n["node"] == "observation"
             if n.get("packet_id") is not None]
        )


def _fake_span(span_id, parent_id, name, wall_s, sim_s):
    return SimpleNamespace(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        wall_seconds=wall_s,
        sim_duration=sim_s,
    )


class TestAnalyze:
    SPANS = [
        _fake_span(1, None, "transact", 0.010, 0.05),
        _fake_span(2, 1, "deliver", 0.006, 0.02),
        _fake_span(3, 2, "deliver", 0.004, 0.01),
        _fake_span(4, 1, "deliver", 0.001, 0.01),
    ]

    def test_span_stats_aggregates_both_clocks(self):
        stats = {s.name: s for s in analyze.span_stats(self.SPANS)}
        deliver = stats["deliver"]
        assert deliver.count == 3
        assert deliver.wall_total_ms == pytest.approx(11.0)
        assert deliver.wall_mean_ms == pytest.approx(11.0 / 3)
        assert deliver.wall_max_ms == pytest.approx(6.0)
        assert deliver.sim_total == pytest.approx(0.04)
        assert deliver.sim_max == pytest.approx(0.02)
        # Sorted by wall total, descending.
        assert [s.name for s in analyze.span_stats(self.SPANS)] == [
            "deliver",
            "transact",
        ]

    def test_critical_path_descends_heaviest_children(self):
        path = analyze.critical_path(self.SPANS, clock="wall")
        assert [s.span_id for s in path] == [1, 2, 3]
        sim_path = analyze.critical_path(self.SPANS, clock="sim")
        assert [s.span_id for s in sim_path] == [1, 2, 3]

    def test_critical_path_rejects_unknown_clock(self):
        with pytest.raises(ValueError):
            analyze.critical_path(self.SPANS, clock="lunar")
        assert analyze.critical_path([], clock="wall") == []

    def test_renderers(self):
        stats_text = analyze.render_span_stats(analyze.span_stats(self.SPANS))
        assert "deliver" in stats_text and "count" in stats_text
        path_text = analyze.render_critical_path(
            analyze.critical_path(self.SPANS), "wall"
        )
        assert "-> transact" in path_text
        assert analyze.render_span_stats([]) == "(no spans recorded)"
        assert analyze.render_critical_path([]) == "(no spans recorded)"

    def test_stats_over_real_capture(self):
        with obs.capture() as (tracer, _):
            _relay_run()
        stats = {s.name: s for s in analyze.span_stats(tracer.spans)}
        assert stats["deliver"].count == 2
        path = analyze.critical_path(tracer.spans, clock="sim")
        assert path and path[0].name == "transact"
