"""System tests: T6 (MPR), T7 (PPM), T8 (VPN/ECH)."""

import pytest

from repro.core.labels import SENSITIVE_DATA
from repro.mpr import PAPER_TABLE_T6, paper_table_t6, run_mpr
from repro.ppm import (
    PAPER_TABLE_T7,
    run_naive_aggregation,
    run_ohttp_aggregation,
    run_prio,
)
from repro.vpn import PAPER_TABLE_T8, run_ech, run_vpn


@pytest.fixture(scope="module")
def mpr_run():
    return run_mpr(relays=2, requests=3)


@pytest.fixture(scope="module")
def prio_run():
    return run_prio(clients=5, aggregators=2)


class TestMpr:
    def test_derived_table_matches_the_paper(self, mpr_run):
        assert mpr_run.table().as_mapping() == PAPER_TABLE_T6

    def test_system_is_decoupled(self, mpr_run):
        assert mpr_run.analyzer.verdict().decoupled

    def test_generalized_tables(self):
        for relays in (2, 3, 4):
            run = run_mpr(relays=relays, requests=1)
            assert run.table().as_mapping() == paper_table_t6(relays)

    def test_single_relay_is_the_vpn_anti_pattern(self):
        run = run_mpr(relays=1, requests=1)
        assert not run.analyzer.verdict().decoupled

    def test_minimal_coalition_is_both_relays(self, mpr_run):
        (coalition,) = mpr_run.analyzer.minimal_recoupling_coalitions()
        assert coalition == frozenset({"relay-org-1", "relay-org-2"})

    def test_collusion_resistance_scales_with_relays(self):
        assert run_mpr(relays=3, requests=1).analyzer.collusion_resistance() == 3

    def test_latency_grows_with_relays(self):
        fast = run_mpr(relays=2, requests=2).mean_latency
        slow = run_mpr(relays=5, requests=2).mean_latency
        assert fast < slow

    def test_relay1_never_sees_fqdn_or_content(self, mpr_run):
        for obs in mpr_run.world.ledger.by_entity("Relay 1"):
            assert obs.description not in ("target fqdn", "http request")

    def test_geo_hint_reaches_origin(self):
        run = run_mpr(relays=2, requests=1, geo_hint="US-CA")
        assert run.origin_knows_location()
        baseline = run_mpr(relays=2, requests=1)
        assert not baseline.origin_knows_location()


class TestPpm:
    def test_naive_single_server_couples(self):
        run = run_naive_aggregation()
        assert not run.analyzer.verdict().decoupled
        assert run.collector_sees_individual_values()
        assert run.reported_total == run.true_total

    def test_ohttp_decouples_identity_but_not_values(self):
        run = run_ohttp_aggregation()
        assert run.analyzer.verdict().decoupled
        assert run.collector_sees_individual_values()
        assert run.reported_total == run.true_total

    def test_prio_table_matches_the_paper(self, prio_run):
        assert prio_run.table().as_mapping() == PAPER_TABLE_T7

    def test_prio_is_decoupled_and_aggregate_only(self, prio_run):
        assert prio_run.analyzer.verdict().decoupled
        assert not prio_run.collector_sees_individual_values()

    def test_prio_total_is_exact(self, prio_run):
        assert prio_run.reported_total == prio_run.true_total

    def test_prio_collusion_needs_all_aggregators(self, prio_run):
        (coalition,) = prio_run.analyzer.minimal_recoupling_coalitions()
        assert coalition == frozenset({"aggregator-org-1", "aggregator-org-2"})

    def test_more_aggregators_raise_collusion_resistance(self):
        assert run_prio(aggregators=3).analyzer.collusion_resistance() == 3

    def test_invalid_report_is_excluded(self):
        """A cheating client submitting x=5 fails the Beaver check."""
        from repro.core.values import Subject
        from repro.crypto.secretshare import make_boolean_proof
        import random

        run = run_prio(clients=3, aggregators=2)
        # verify through the protocol-level primitive: a non-boolean
        # submission cannot pass the validity check the aggregators ran
        proofs = make_boolean_proof(5, 2, rng=random.Random(1))
        from repro.crypto.secretshare import check_boolean_shares

        assert not check_boolean_shares(proofs)


class TestVpnAndEch:
    def test_vpn_table_matches_the_paper(self):
        run = run_vpn()
        assert run.table().as_mapping() == PAPER_TABLE_T8

    def test_vpn_is_not_decoupled(self):
        run = run_vpn()
        verdict = run.analyzer.verdict()
        assert not verdict.decoupled
        assert any(v.entity == "VPN Server" for v in verdict.violations)
        (coalition,) = run.analyzer.minimal_recoupling_coalitions()
        assert coalition == frozenset({"vpn-provider"})

    def test_ech_hides_sni_from_the_network(self):
        without = run_ech(use_ech=False)
        with_ech = run_ech(use_ech=True)
        assert without.observer_saw_sni()
        assert not with_ech.observer_saw_sni()

    def test_ech_does_not_change_what_the_server_sees(self):
        without = run_ech(use_ech=False)
        with_ech = run_ech(use_ech=True)
        server_cell_without = without.table().as_mapping()["TLS Server"]
        server_cell_with = with_ech.table().as_mapping()["TLS Server"]
        assert server_cell_without == server_cell_with == "(▲, ●)"
        assert not with_ech.analyzer.verdict().decoupled
