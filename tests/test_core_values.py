"""Unit tests for labeled values, sealed envelopes, and the walker."""

from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import (
    Aggregate,
    LabeledValue,
    Sealed,
    ShareInfo,
    Subject,
    digest,
    walk_values,
)

ALICE = Subject("alice")


def _value(payload="secret", label=SENSITIVE_DATA, description="d"):
    return LabeledValue(payload=payload, label=label, subject=ALICE, description=description)


class TestLabeledValue:
    def test_derived_extends_provenance(self):
        original = _value()
        derived = original.derived("other", step="transform")
        assert derived.provenance == ("transform",)
        assert derived.subject == ALICE
        assert derived.label == original.label

    def test_blinded_downgrades(self):
        blinded = _value().blinded(12345)
        assert blinded.label == NONSENSITIVE_DATA
        assert "blind" in blinded.provenance

    def test_pseudonym_is_nonsensitive_identity(self):
        identity = _value(label=SENSITIVE_IDENTITY)
        pseudonym = identity.pseudonym("tok-1")
        assert pseudonym.label == NONSENSITIVE_IDENTITY

    def test_uids_are_unique(self):
        assert _value().uid != _value().uid

    def test_str_shows_glyph_and_subject(self):
        assert "●" in str(_value())
        assert "alice" in str(_value())


class TestSealed:
    def test_wrap_builds_opaque_exterior_with_subject(self):
        envelope = Sealed.wrap("k1", [_value()])
        assert envelope.exterior is not None
        assert envelope.exterior.label == NONSENSITIVE_DATA
        assert envelope.exterior.subject == ALICE

    def test_wrap_subject_override(self):
        bob = Subject("bob")
        envelope = Sealed.wrap("k1", [_value()], subject=bob)
        assert envelope.exterior.subject == bob

    def test_wrap_of_nothing_labeled_gets_placeholder_subject(self):
        envelope = Sealed.wrap("k1", ["just bytes"])
        assert envelope.exterior.subject == Subject("nobody")

    def test_wrap_exterior_extends_inner_provenance(self):
        """Regression: sealing must not drop the inner derivation chain.

        An observer of the ciphertext should still see how the enclosed
        value was produced -- the provenance graph relies on the
        exterior carrying ``inner + ("seal",)``.
        """
        inner = _value().derived("encoded", step="encode")
        envelope = Sealed.wrap("k1", [inner])
        assert envelope.exterior.provenance == ("encode", "seal")

    def test_wrap_of_unlabeled_contents_starts_fresh_seal_chain(self):
        envelope = Sealed.wrap("k1", ["just bytes"])
        assert envelope.exterior.provenance == ("seal",)

    def test_nested_wrap_accumulates_seal_steps(self):
        inner = Sealed.wrap("k2", [_value().derived("x", step="encode")])
        outer = Sealed.wrap("k1", [inner])
        assert outer.exterior.provenance == ("encode", "seal", "seal")


class TestWalkValues:
    def test_without_key_only_exterior_is_visible(self):
        envelope = Sealed.wrap("k1", [_value()])
        seen = list(walk_values(envelope, set()))
        assert [v.label for v in seen] == [NONSENSITIVE_DATA]

    def test_with_key_exterior_and_interior_are_visible(self):
        envelope = Sealed.wrap("k1", [_value()])
        labels = {v.label for v in walk_values(envelope, {"k1"})}
        assert labels == {NONSENSITIVE_DATA, SENSITIVE_DATA}

    def test_nested_envelopes_stop_at_missing_key(self):
        inner = Sealed.wrap("k2", [_value()])
        outer = Sealed.wrap("k1", [inner])
        seen = list(walk_values(outer, {"k1"}))
        # outer exterior + inner exterior, never the secret
        assert all(v.label == NONSENSITIVE_DATA for v in seen)
        assert len(seen) == 2

    def test_full_keyring_reaches_the_core(self):
        inner = Sealed.wrap("k2", [_value()])
        outer = Sealed.wrap("k1", [inner])
        labels = [v.label for v in walk_values(outer, {"k1", "k2"})]
        assert SENSITIVE_DATA in labels

    def test_walks_containers_and_dataclasses(self):
        @dataclass(frozen=True)
        class Message:
            body: LabeledValue
            note: str

        item = {"x": [Message(body=_value(), note="n")], "y": (1, 2)}
        seen = list(walk_values(item, set()))
        assert len(seen) == 1 and seen[0].label == SENSITIVE_DATA

    def test_bare_payloads_yield_nothing(self):
        assert list(walk_values("string", set())) == []
        assert list(walk_values(42, set())) == []
        assert list(walk_values(None, set())) == []

    def test_aggregate_yields_one_nonsensitive_item_per_contributor(self):
        agg = Aggregate(payload=17, contributors=(ALICE, Subject("bob")))
        seen = list(walk_values(agg, set()))
        assert len(seen) == 2
        assert all(v.label == NONSENSITIVE_DATA for v in seen)
        assert {v.subject for v in seen} == {ALICE, Subject("bob")}

    def test_aggregate_exterior_extends_contribution_provenance(self):
        """Regression: aggregation must not drop the contributions' chain."""
        agg = Aggregate(
            payload=17,
            contributors=(ALICE,),
            provenance=("measurement", "share"),
        )
        (exterior,) = agg.exterior_values()
        assert exterior.provenance == ("measurement", "share", "aggregate")

    def test_aggregate_without_provenance_yields_bare_aggregate_step(self):
        agg = Aggregate(payload=17, contributors=(ALICE,))
        (exterior,) = agg.exterior_values()
        assert exterior.provenance == ("aggregate",)


class TestShareInfo:
    def test_share_info_travels_on_the_value(self):
        share = LabeledValue(
            payload=7,
            label=NONSENSITIVE_DATA,
            subject=ALICE,
            share_info=ShareInfo(group="g", index=0, total=2),
        )
        (seen,) = walk_values(share, set())
        assert seen.share_info.group == "g"


class TestDigest:
    def test_digest_is_stable_and_short(self):
        assert digest("abc") == digest("abc")
        assert len(digest("abc")) == 16

    @given(st.one_of(st.text(), st.integers(), st.binary()))
    def test_digest_handles_arbitrary_payloads(self, payload):
        assert isinstance(digest(payload), str)

    def test_distinct_payloads_get_distinct_digests(self):
        assert digest("a") != digest("b")
