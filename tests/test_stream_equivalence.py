"""Streaming ≡ batch: the incremental analyzer against the naive oracle.

The streaming ledger (PR 9) shards storage into sealable, spillable
segments and lets :class:`DecouplingAnalyzer` answer mid-run.  The
contract is byte-identity: at *any* ledger version, whatever
interleaving of ``record``/``record_fast``/``seal_active_segment``/
``spill_sealed_segments`` produced the rows, the streaming analyzer's
``verdict()``, ``table()``, and ``minimal_recoupling_coalitions()``
render identically to the ``naive=True`` full-scan reference -- and to
a *fresh* analyzer over a replay of the same row prefix.
"""

from hypothesis import given, strategies as st

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, ShareInfo, Subject

SUBJECTS = {"alice": Subject("alice"), "bob": Subject("bob")}

LABELS = {
    "id": SENSITIVE_IDENTITY,
    "data": SENSITIVE_DATA,
    "pseudo": NONSENSITIVE_IDENTITY,
    "blob": NONSENSITIVE_DATA,
}

SERVERS = ("Server A", "Server B")
ORGS = {"Server A": "org-a", "Server B": "org-b"}

#: One ledger mutation or control action.  Payload integers repeat so
#: shared digests bridge sessions (the union-find path); sessions
#: repeat so same-session coupling fires; ``seal``/``spill`` force the
#: segment lifecycle mid-stream; ``check`` takes a mid-run checkpoint.
_VALUE = st.tuples(
    st.sampled_from(sorted(LABELS)),
    st.sampled_from(sorted(SUBJECTS)),
    st.integers(min_value=0, max_value=4),
)
OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("record"),
            st.sampled_from(SERVERS),
            _VALUE,
            st.sampled_from(["s1", "s2", "s3"]),
        ),
        st.tuples(
            st.just("fast"),
            st.sampled_from(SERVERS),
            st.lists(_VALUE, min_size=1, max_size=3),
            st.sampled_from(["s1", "s2", "s3"]),
        ),
        st.tuples(
            st.just("share"),
            st.sampled_from(sorted(SUBJECTS)),
            st.integers(min_value=0, max_value=2),
        ),
        st.tuples(st.just("seal")),
        st.tuples(st.just("spill")),
        st.tuples(st.just("check")),
    ),
    min_size=1,
    max_size=30,
)


def _build_world() -> World:
    world = World()
    world.entity("User", "device", trusted_by_user=True)
    for server in SERVERS:
        world.entity(server, ORGS[server])
    return world


def _labeled(spec) -> LabeledValue:
    kind, subject, payload = spec
    return LabeledValue(
        f"v{payload}", LABELS[kind], SUBJECTS[subject], f"{kind} fact"
    )


def _apply(world: World, op) -> None:
    ledger = world.ledger
    if op[0] == "record":
        _, server, spec, session = op
        ledger.record(server, ORGS[server], _labeled(spec), session=session)
    elif op[0] == "fast":
        _, server, specs, session = op
        ledger.record_fast(
            server, ORGS[server], [_labeled(s) for s in specs], session=session
        )
    elif op[0] == "share":
        _, subject, group = op
        # One share per server: the pair can reconstruct, neither
        # alone can -- the Prio-shaped coalition path.
        for index, server in enumerate(SERVERS):
            ledger.record(
                server,
                ORGS[server],
                LabeledValue(
                    f"share-{group}-{index}",
                    NONSENSITIVE_DATA,
                    SUBJECTS[subject],
                    "secret share",
                    share_info=ShareInfo(group=f"g{group}", index=index, total=2),
                ),
                session=f"sh{index}",
            )
    elif op[0] == "seal":
        ledger.seal_active_segment()
    elif op[0] == "spill":
        ledger.seal_active_segment()
        ledger.spill_sealed_segments()


def _coalitions(analyzer):
    return sorted(
        (sorted(coalition) for coalition in analyzer.minimal_recoupling_coalitions()),
    )


def _assert_matches_naive(world: World, streaming: DecouplingAnalyzer) -> None:
    naive = DecouplingAnalyzer(world, naive=True)
    assert str(streaming.verdict()) == str(naive.verdict())
    assert str(streaming.table()) == str(naive.table())
    assert _coalitions(streaming) == _coalitions(naive)


@given(ops=OPS, segment_rows=st.sampled_from([2, 3, 1000]), spill=st.booleans())
def test_streaming_equals_naive_at_every_checkpoint(ops, segment_rows, spill):
    """Any interleaving, any segment policy: byte-identical answers."""
    world = _build_world()
    world.ledger.configure_segments(rows=segment_rows, spill=spill)
    streaming = DecouplingAnalyzer(world)
    for op in ops:
        _apply(world, op)
        if op[0] == "check":
            _assert_matches_naive(world, streaming)
    _assert_matches_naive(world, streaming)


@given(ops=OPS, segment_rows=st.sampled_from([2, 5]))
def test_mid_run_answers_equal_replay_of_prefix(ops, segment_rows):
    """A mid-run answer at version v == a fresh analyzer over the
    first v observations, replayed into a brand-new ledger."""
    world = _build_world()
    world.ledger.configure_segments(rows=segment_rows, spill=True)
    streaming = DecouplingAnalyzer(world)
    checkpoints = []
    for op in ops:
        _apply(world, op)
        if op[0] == "check":
            checkpoints.append(
                (
                    len(world.ledger),
                    str(streaming.verdict()),
                    str(streaming.table()),
                    _coalitions(streaming),
                )
            )
    checkpoints.append(
        (
            len(world.ledger),
            str(streaming.verdict()),
            str(streaming.table()),
            _coalitions(streaming),
        )
    )
    all_rows = list(world.ledger)
    for rows, verdict_text, table_text, coalitions in checkpoints:
        replay = _build_world()
        replay.ledger.ingest(all_rows[:rows])
        fresh = DecouplingAnalyzer(replay)
        assert str(fresh.verdict()) == verdict_text
        assert str(fresh.table()) == table_text
        assert _coalitions(fresh) == coalitions


@given(ops=OPS)
def test_memo_survives_clear(ops):
    """``clear()`` bumps the generation: stale incremental state must
    never leak into answers over the rebuilt ledger."""
    world = _build_world()
    world.ledger.configure_segments(rows=3, spill=True)
    streaming = DecouplingAnalyzer(world)
    for op in ops:
        _apply(world, op)
    streaming.verdict()  # prime the incremental state
    world.ledger.clear()
    _assert_matches_naive(world, streaming)
    # Refill after the clear: the analyzer re-syncs from scratch.
    for op in ops[: len(ops) // 2]:
        _apply(world, op)
    _assert_matches_naive(world, streaming)


def test_scale_workload_checkpoints_match_with_violations():
    """The T-series workload's own checkpoint comparison, on the
    violating variant (the target sees client addresses too)."""
    from repro.population.workload import run_scale_workload

    result = run_scale_workload(
        users=60,
        observations=1_200,
        segment_rows=128,
        checkpoints=5,
        coupled_fraction=0.1,
    )
    assert result.all_checkpoints_match
    final = result.checkpoints[-1]
    assert not final.decoupled
    assert final.violations > 0
    assert final.collusion_resistance == 1


def test_scale_workload_mid_run_equals_naive_oracle():
    """Small-N scale workload: every checkpoint verdict also matches
    the ``naive=True`` oracle, not just the fresh streaming analyzer."""
    from repro.population.workload import run_scale_workload

    seen = []

    def check(_checkpoint):
        seen.append(_checkpoint)

    result = run_scale_workload(
        users=40,
        observations=400,
        segment_rows=64,
        checkpoints=4,
        on_checkpoint=check,
    )
    assert seen == result.checkpoints
    naive = DecouplingAnalyzer(result.world, naive=True)
    streaming = DecouplingAnalyzer(result.world)
    assert str(streaming.verdict()) == str(naive.verdict())
    assert streaming.collusion_resistance() == naive.collusion_resistance() == 2
