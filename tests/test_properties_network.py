"""Property-based tests of network/simulator invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA
from repro.core.values import LabeledValue, Subject
from repro.net.network import Network

ALICE = Subject("alice")


class TestDeliveryInvariants:
    @given(
        hosts=st.integers(min_value=2, max_value=6),
        messages=st.integers(min_value=0, max_value=30),
        latency=st.floats(min_value=0.001, max_value=0.5),
        data=st.data(),
    )
    @settings(max_examples=20)
    def test_lossless_networks_conserve_messages(self, hosts, messages, latency, data):
        """Every sent packet is delivered exactly once, in time order."""
        world = World()
        network = Network(default_latency=latency)
        endpoints = []
        for index in range(hosts):
            entity = world.entity(f"H{index}", f"org-{index}")
            host = network.add_host(f"h{index}", entity)
            host.register("p", lambda pkt: None)
            endpoints.append(host)
        for message_index in range(messages):
            src = data.draw(st.integers(min_value=0, max_value=hosts - 1))
            dst = data.draw(st.integers(min_value=0, max_value=hosts - 1))
            if src == dst:
                dst = (dst + 1) % hosts
            endpoints[src].send(
                endpoints[dst].address, f"m{message_index}", "p"
            )
        network.run()
        assert network.messages_delivered == messages
        assert len(network.trace) == messages
        times = [record.time for record in network.trace]
        assert times == sorted(times)

    @given(
        loss=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15)
    def test_lossy_networks_never_duplicate(self, loss, seed):
        """delivered + dropped == sent, always."""
        world = World()
        network = Network(loss_rate=loss, loss_rng=random.Random(seed))
        a = network.add_host("a", world.entity("A", "a-org"))
        b = network.add_host("b", world.entity("B", "b-org"))
        b.register("p", lambda pkt: None)
        sent = 25
        for index in range(sent):
            a.send(b.address, index, "p")
        network.run()
        assert network.messages_delivered + network.packets_dropped == sent

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=10)
    def test_observation_count_scales_with_labeled_values(self, count):
        """Each delivered labeled value produces exactly one observation."""
        world = World()
        network = Network()
        a = network.add_host("a", world.entity("A", "a-org"))
        b = network.add_host("b", world.entity("B", "b-org"))
        b.register("p", lambda pkt: None)
        payload = [
            LabeledValue(f"v{i}", SENSITIVE_DATA, ALICE, f"item {i}")
            for i in range(count)
        ]
        a.send(b.address, payload, "p")
        network.run()
        assert len(world.ledger.by_entity("B")) == count

    @given(
        latency_ab=st.floats(min_value=0.001, max_value=0.2),
        latency_ba=st.floats(min_value=0.001, max_value=0.2),
    )
    @settings(max_examples=10)
    def test_transact_rtt_is_sum_of_one_way_latencies(self, latency_ab, latency_ba):
        world = World()
        network = Network()
        a = network.add_host("a", world.entity("A", "a-org"))
        b = network.add_host("b", world.entity("B", "b-org"))
        b.register("p", lambda pkt: "pong")
        # A symmetric override (one pair key) models the link.
        network.set_latency(a.address, b.address, latency_ab)
        start = network.simulator.now
        a.transact(b.address, "ping", "p")
        elapsed = network.simulator.now - start
        assert abs(elapsed - 2 * latency_ab) < 1e-9
