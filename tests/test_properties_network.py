"""Property-based tests of network/simulator invariants.

The second half targets the fault runtime: packet conservation under
arbitrary fault plans (checked at every simulator event, not just at
quiescence), duplication bounds, and seed determinism down to the
byte-exact wire trace.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.entities import World
from repro.core.labels import SENSITIVE_DATA
from repro.core.values import LabeledValue, Subject
from repro.faults import FaultPlan, FaultRuntime, HostCrash, LinkFault, Partition
from repro.net.network import Network

ALICE = Subject("alice")

_HOST_NAMES = ("h0", "h1", "h2")

_rates = st.floats(min_value=0.0, max_value=0.9)

_link_faults = st.builds(
    LinkFault,
    src=st.sampled_from(("*",) + _HOST_NAMES),
    dst=st.sampled_from(("*",) + _HOST_NAMES),
    loss=_rates,
    duplicate=_rates,
    reorder=_rates,
    jitter=st.floats(min_value=0.0, max_value=0.05),
)

_crashes = st.builds(
    HostCrash,
    host=st.sampled_from(_HOST_NAMES),
    at=st.floats(min_value=0.0, max_value=0.5),
)

_partitions = st.builds(
    Partition,
    a=st.just(("h0",)),
    b=st.sampled_from((("h1",), ("h2",), ("h1", "h2"))),
    start=st.floats(min_value=0.0, max_value=0.3),
    end=st.just(None),
)

_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=999),
    links=st.lists(_link_faults, max_size=3).map(tuple),
    crashes=st.lists(_crashes, max_size=2).map(tuple),
    partitions=st.lists(_partitions, max_size=1).map(tuple),
)


def _run_under_plan(plan, messages, workload_seed, check_hook=None):
    """Drive a 3-host one-way workload under ``plan``; return the network."""
    world = World()
    network = Network()
    endpoints = []
    for index, name in enumerate(_HOST_NAMES):
        entity = world.entity(f"H{index}", f"org-{index}")
        host = network.add_host(name, entity)
        host.register("p", lambda pkt: None)
        endpoints.append(host)
    FaultRuntime(plan, network).install()
    if check_hook is not None:
        network.simulator.add_hook(check_hook(network))
    rng = random.Random(workload_seed)
    for message_index in range(messages):
        src, dst = rng.sample(range(len(endpoints)), 2)
        endpoints[src].send(endpoints[dst].address, f"m{message_index}", "p")
    network.run()
    return network


class TestDeliveryInvariants:
    @given(
        hosts=st.integers(min_value=2, max_value=6),
        messages=st.integers(min_value=0, max_value=30),
        latency=st.floats(min_value=0.001, max_value=0.5),
        data=st.data(),
    )
    @settings(max_examples=20)
    def test_lossless_networks_conserve_messages(self, hosts, messages, latency, data):
        """Every sent packet is delivered exactly once, in time order."""
        world = World()
        network = Network(default_latency=latency)
        endpoints = []
        for index in range(hosts):
            entity = world.entity(f"H{index}", f"org-{index}")
            host = network.add_host(f"h{index}", entity)
            host.register("p", lambda pkt: None)
            endpoints.append(host)
        for message_index in range(messages):
            src = data.draw(st.integers(min_value=0, max_value=hosts - 1))
            dst = data.draw(st.integers(min_value=0, max_value=hosts - 1))
            if src == dst:
                dst = (dst + 1) % hosts
            endpoints[src].send(
                endpoints[dst].address, f"m{message_index}", "p"
            )
        network.run()
        assert network.messages_delivered == messages
        assert len(network.trace) == messages
        times = [record.time for record in network.trace]
        assert times == sorted(times)

    @given(
        loss=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15)
    def test_lossy_networks_never_duplicate(self, loss, seed):
        """delivered + dropped == sent, always."""
        world = World()
        network = Network(loss_rate=loss, loss_rng=random.Random(seed))
        a = network.add_host("a", world.entity("A", "a-org"))
        b = network.add_host("b", world.entity("B", "b-org"))
        b.register("p", lambda pkt: None)
        sent = 25
        for index in range(sent):
            a.send(b.address, index, "p")
        network.run()
        assert network.messages_delivered + network.packets_dropped == sent

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=10)
    def test_observation_count_scales_with_labeled_values(self, count):
        """Each delivered labeled value produces exactly one observation."""
        world = World()
        network = Network()
        a = network.add_host("a", world.entity("A", "a-org"))
        b = network.add_host("b", world.entity("B", "b-org"))
        b.register("p", lambda pkt: None)
        payload = [
            LabeledValue(f"v{i}", SENSITIVE_DATA, ALICE, f"item {i}")
            for i in range(count)
        ]
        a.send(b.address, payload, "p")
        network.run()
        assert len(world.ledger.by_entity("B")) == count

    @given(
        latency_ab=st.floats(min_value=0.001, max_value=0.2),
        latency_ba=st.floats(min_value=0.001, max_value=0.2),
    )
    @settings(max_examples=10)
    def test_transact_rtt_is_sum_of_one_way_latencies(self, latency_ab, latency_ba):
        world = World()
        network = Network()
        a = network.add_host("a", world.entity("A", "a-org"))
        b = network.add_host("b", world.entity("B", "b-org"))
        b.register("p", lambda pkt: "pong")
        # A symmetric override (one pair key) models the link.
        network.set_latency(a.address, b.address, latency_ab)
        start = network.simulator.now
        a.transact(b.address, "ping", "p")
        elapsed = network.simulator.now - start
        assert abs(elapsed - 2 * latency_ab) < 1e-9


class TestFaultRuntimeInvariants:
    """Conservation, bounds, and determinism under arbitrary fault plans."""

    @given(plan=_plans, messages=st.integers(min_value=0, max_value=25))
    @settings(max_examples=25)
    def test_conservation_holds_at_every_event(self, plan, messages):
        """sent + duplicated == delivered + dropped + in-flight, always.

        The invariant is asserted before *every* simulator event, not
        just at quiescence, so a counter that momentarily drifts (e.g. a
        drop recorded without retiring the in-flight copy) fails fast.
        """

        def check_hook(network):
            def check(time, callback):
                assert (
                    network.packets_sent + network.packets_duplicated
                    == network.messages_delivered
                    + network.packets_dropped
                    + network.packets_in_flight
                )

            return check

        network = _run_under_plan(plan, messages, workload_seed=7, check_hook=check_hook)
        assert network.packets_in_flight == 0
        assert (
            network.packets_sent + network.packets_duplicated
            == network.messages_delivered + network.packets_dropped
        )

    @given(plan=_plans, messages=st.integers(min_value=0, max_value=25))
    @settings(max_examples=25)
    def test_duplication_bounds(self, plan, messages):
        """One send yields at most one extra copy; deliveries never exceed copies."""
        network = _run_under_plan(plan, messages, workload_seed=11)
        assert network.packets_sent == messages
        assert network.packets_duplicated <= network.packets_sent
        assert (
            network.messages_delivered
            <= network.packets_sent + network.packets_duplicated
        )
        if plan.is_null():
            assert network.messages_delivered == messages
            assert network.packets_dropped == 0
            assert network.packets_duplicated == 0

    @given(plan=_plans, messages=st.integers(min_value=1, max_value=25))
    @settings(max_examples=20)
    def test_same_seed_same_wire_trace(self, plan, messages):
        """Identical plan + workload ⇒ byte-identical event order."""
        first = _run_under_plan(plan, messages, workload_seed=13)
        second = _run_under_plan(plan, messages, workload_seed=13)
        assert first.trace.to_jsonl() == second.trace.to_jsonl()
        assert first.messages_delivered == second.messages_delivered
        assert first.packets_dropped == second.packets_dropped
        assert first.packets_duplicated == second.packets_duplicated

    @given(seed_a=st.integers(0, 500), seed_b=st.integers(501, 1000))
    @settings(max_examples=10)
    def test_plan_seed_is_independent_of_global_rng(self, seed_a, seed_b):
        """The fault RNG is plan-owned: global random state cannot perturb it."""
        plan = FaultPlan(seed=42, links=(LinkFault(loss=0.4, duplicate=0.3),))
        random.seed(seed_a)
        first = _run_under_plan(plan, 20, workload_seed=3)
        random.seed(seed_b)
        second = _run_under_plan(plan, 20, workload_seed=3)
        assert first.trace.to_jsonl() == second.trace.to_jsonl()
