"""Unit tests for the observation ledger and entities/world."""

import pytest

from repro.core.entities import Entity, Organization, World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.ledger import Ledger
from repro.core.values import LabeledValue, Sealed, Subject

ALICE = Subject("alice")
BOB = Subject("bob")


def _value(payload="p", label=SENSITIVE_DATA, subject=ALICE):
    return LabeledValue(payload=payload, label=label, subject=subject, description="v")


class TestLedger:
    def test_record_and_iterate(self):
        ledger = Ledger()
        ledger.record("E", "org", _value(), time=1.0, channel="c", session="s")
        assert len(ledger) == 1
        (obs,) = list(ledger)
        assert obs.entity == "E" and obs.session == "s" and obs.time == 1.0

    def test_entities_and_subjects_preserve_first_seen_order(self):
        ledger = Ledger()
        ledger.record("B", "org", _value(subject=BOB))
        ledger.record("A", "org", _value(subject=ALICE))
        ledger.record("B", "org", _value(subject=ALICE))
        assert ledger.entities() == ("B", "A")
        assert ledger.subjects() == (BOB, ALICE)

    def test_labels_of_filters_by_subject_and_channel(self):
        ledger = Ledger()
        ledger.record("E", "org", _value(label=SENSITIVE_IDENTITY), channel="wire")
        ledger.record("E", "org", _value(subject=BOB), channel="message")
        assert ledger.labels_of("E", ALICE) == {SENSITIVE_IDENTITY}
        assert ledger.labels_of("E", channels=["message"]) == {SENSITIVE_DATA}

    def test_merged_orders_by_time(self):
        a, b = Ledger(), Ledger()
        a.record("E", "org", _value(), time=2.0)
        b.record("F", "org", _value(), time=1.0)
        merged = a.merged(b)
        assert [o.time for o in merged] == [1.0, 2.0]

    def test_by_queries(self):
        ledger = Ledger()
        ledger.record("E", "org1", _value())
        ledger.record("F", "org2", _value(subject=BOB))
        assert len(ledger.by_entity("E")) == 1
        assert len(ledger.by_organization("org2")) == 1
        assert len(ledger.by_subject(BOB)) == 1

    def test_clear(self):
        ledger = Ledger()
        ledger.record("E", "org", _value())
        ledger.clear()
        assert len(ledger) == 0


class TestWorld:
    def test_entity_creation_and_lookup(self):
        world = World()
        entity = world.entity("Mix", "mix-org")
        assert world.get("Mix") is entity
        with pytest.raises(KeyError):
            world.get("nonexistent")

    def test_duplicate_entity_names_rejected(self):
        world = World()
        world.entity("Mix", "org")
        with pytest.raises(ValueError):
            world.entity("Mix", "other-org")

    def test_organization_reuse_is_consistent(self):
        world = World()
        a = world.entity("A", "shared-org")
        b = world.entity("B", "shared-org")
        assert a.organization is b.organization
        with pytest.raises(ValueError):
            world.organization("shared-org", trusted_by_user=True)

    def test_user_split(self):
        world = World()
        world.entity("User", "device", trusted_by_user=True)
        world.entity("Server", "org")
        assert [e.name for e in world.user_entities()] == ["User"]
        assert [e.name for e in world.non_user_entities()] == ["Server"]


class TestEntityObservation:
    def test_observe_respects_keyring(self):
        world = World()
        entity = world.entity("E", "org")
        envelope = Sealed.wrap("k", [_value()])
        entity.observe(envelope)
        assert world.ledger.labels_of("E") == {NONSENSITIVE_DATA}
        entity.grant_key("k")
        entity.observe(envelope)
        assert SENSITIVE_DATA in world.ledger.labels_of("E")

    def test_revoke_key(self):
        world = World()
        entity = world.entity("E", "org", keys=["k"])
        entity.revoke_key("k")
        entity.observe(Sealed.wrap("k", [_value()]))
        assert world.ledger.labels_of("E") == {NONSENSITIVE_DATA}

    def test_unseal_requires_key(self):
        world = World()
        entity = world.entity("E", "org")
        envelope = Sealed.wrap("k", [_value()])
        with pytest.raises(PermissionError):
            entity.unseal(envelope)
        entity.grant_key("k")
        (inner,) = entity.unseal(envelope)
        assert inner.payload == "p"

    def test_visible_values_does_not_record(self):
        world = World()
        entity = world.entity("E", "org")
        values = entity.visible_values(_value())
        assert len(values) == 1
        assert len(world.ledger) == 0
