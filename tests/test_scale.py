"""Scale/soak tests: the framework at population sizes beyond the demos.

These keep the analyzer and simulator honest about complexity: the
linkage analysis is per-subject, so large runs must stay tractable.
"""

import time

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
from repro.net.network import Network
from repro.odns.odoh import ObliviousProxy, ObliviousTarget, OdohClient
from repro.ppm import run_prio


class TestOdohAtScale:
    def test_fifty_clients_three_queries_each(self):
        world, network = World(), Network()
        registry = ZoneRegistry()
        zone = Zone("example.com")
        for index in range(10):
            zone.add(f"s{index}.example.com", "203.0.113.1")
        AuthoritativeServer(network, world.entity("Auth", "dns-infra"), zone, registry)
        target = ObliviousTarget(
            network, world.entity("Target", "target-org"), registry,
            key_seed=b"\x55" * 32,
        )
        proxy = ObliviousProxy(
            network, world.entity("Proxy", "proxy-org"), target.address
        )
        clients = []
        for index in range(50):
            subject = Subject(f"user-{index}")
            entity = world.entity(
                f"Client {index}", f"device-{index}", trusted_by_user=True
            )
            host = network.add_host(
                f"c{index}", entity,
                identity=LabeledValue(
                    f"198.51.{index // 250}.{index % 250 + 1}",
                    SENSITIVE_IDENTITY, subject, "client ip",
                ),
            )
            clients.append(OdohClient(host, proxy, target, subject))

        started = time.monotonic()
        for index, client in enumerate(clients):
            for query in range(3):
                answer = client.lookup(f"s{(index + query) % 10}.example.com")
                assert answer.rdata == "203.0.113.1"
        elapsed = time.monotonic() - started
        assert elapsed < 30, f"150 oblivious queries took {elapsed:.1f}s"

        analyzer = DecouplingAnalyzer(world)
        assert analyzer.verdict().decoupled
        # Ledger volume sanity: hundreds of observations analyzed.
        assert len(world.ledger) > 800

    def test_verdict_time_scales_with_ledger(self):
        """The per-subject linkage analysis stays near-linear."""
        run = run_prio(clients=20, aggregators=2)
        started = time.monotonic()
        verdict = run.analyzer.verdict()
        elapsed = time.monotonic() - started
        assert verdict.decoupled
        assert elapsed < 10


class TestPrioAtScale:
    def test_forty_clients_three_aggregators(self):
        run = run_prio(clients=40, aggregators=3)
        assert run.reported_total == run.true_total
        assert run.analyzer.verdict().decoupled
        (coalition,) = run.analyzer.minimal_recoupling_coalitions()
        assert len(coalition) == 3


class TestScalePoint:
    def test_scale_point_shape_and_invariants(self):
        from repro import harness

        point = harness.scale_point(
            300, 3_000, segment_rows=256, checkpoints=3
        )
        assert point.users == 300
        assert point.observations >= 2_996  # 4 rows per arrival
        assert point.mid_run_matches
        assert point.decoupled
        assert point.collusion_resistance == 2
        assert point.segments_sealed > 0
        assert point.segments_spilled > 0
        assert point.resident_rows < point.observations
        assert point.peak_rss_mb > 0
        document = point.to_dict()
        assert document["users"] == 300
        assert document["mid_run_matches"] is True

    def test_scale_sweep_parallel_spill_does_not_collide(self):
        """Regression (satellite 6): sweep workers each spill sealed
        segments to temp files; with ``jobs=2`` the per-process spill
        directories must never collide on paths."""
        from repro import harness

        points = harness.scale_sweep(
            (120, 240), observations_per_user=8, segment_rows=128, jobs=2
        )
        assert [p.users for p in points] == [120, 240]
        for point in points:
            assert point.segments_spilled > 0
            assert point.mid_run_matches
            assert point.collusion_resistance == 2

    def test_workload_observation_floor(self):
        from repro.population.workload import run_scale_workload

        with pytest.raises(ValueError):
            run_scale_workload(users=10, observations=3)
