"""Tests for dynamic provider striping (paper section 5.1)."""

import pytest

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.http.origin import OriginDirectory, OriginServer
from repro.mpr.relay import MprClient, build_relay_chain
from repro.mpr.striping import ProviderStriper
from repro.net.network import Network

ALICE = Subject("alice")


def _build(providers=2):
    world, network = World(), Network()
    user = world.entity("User", "user-device", trusted_by_user=True)
    directory = OriginDirectory()
    origin = OriginServer(
        network, world.entity("Origin", "origin-org"), "www.example.com",
        directory=directory,
    )
    identity = LabeledValue("203.0.113.9", SENSITIVE_IDENTITY, ALICE, "client ip")
    host = network.add_host("striping-client", user, identity=identity)
    user.observe(identity, channel="self", session="self")

    clients = []
    for provider in range(providers):
        entities = [
            world.entity(
                f"P{provider} Relay {hop}", f"provider-{provider}-org-{hop}"
            )
            for hop in (1, 2)
        ]
        chain = build_relay_chain(network, entities, directory)
        clients.append(MprClient(host=host, relays=chain, subject=ALICE))
    return world, network, origin, ProviderStriper(clients=clients)


class TestStriping:
    def test_round_robin_is_even(self):
        world, network, origin, striper = _build(providers=2)
        for index in range(8):
            response = striper.fetch(origin, f"/page/{index}")
            assert response.ok
        assert striper.max_provider_share() == pytest.approx(0.5)
        assert striper.flow_entropy_bits() == pytest.approx(1.0)

    def test_more_providers_lower_the_share(self):
        shares = []
        for providers in (1, 2, 4):
            world, network, origin, striper = _build(providers=providers)
            for index in range(8):
                striper.fetch(origin, f"/page/{index}")
            shares.append(striper.max_provider_share())
        assert shares[0] > shares[1] > shares[2]

    def test_each_provider_only_sees_its_own_fraction(self):
        world, network, origin, striper = _build(providers=2)
        for index in range(6):
            striper.fetch(origin, f"/page/{index}")
        # The ingress relay of provider 0 observed only its 3 flows.
        p0_ingress = [
            o
            for o in world.ledger.by_entity("P0 Relay 1")
            if o.channel == "network-header"
        ]
        assert len(p0_ingress) == 3

    def test_still_decoupled_per_provider(self):
        world, network, origin, striper = _build(providers=2)
        for index in range(4):
            striper.fetch(origin, f"/page/{index}")
        analyzer = DecouplingAnalyzer(world)
        assert analyzer.verdict().decoupled
        # Re-coupling still takes both hops of a single provider.
        coalitions = analyzer.minimal_recoupling_coalitions(max_size=2)
        assert frozenset({"provider-0-org-1", "provider-0-org-2"}) in coalitions
        assert frozenset({"provider-1-org-1", "provider-1-org-2"}) in coalitions

    def test_requires_a_provider(self):
        with pytest.raises(ValueError):
            ProviderStriper(clients=[])
