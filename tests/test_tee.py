"""Unit and system tests for the TEE package (CACTI, Phoenix)."""

import random

import pytest

from repro.core.entities import World
from repro.crypto.hashutil import sha256
from repro.tee import (
    AttestationAuthority,
    EXPECTED_TABLE_CACTI,
    EXPECTED_TABLE_PHOENIX,
    TeeEnclave,
    run_cacti,
    run_phoenix,
)


class TestAttestation:
    def _authority(self):
        return AttestationAuthority(rng=random.Random(1))

    def test_quote_verifies_for_the_right_measurement(self):
        authority = self._authority()
        world = World()
        enclave = TeeEnclave(world, authority, "e1", code="code-v1")
        assert AttestationAuthority.verify(
            authority.public_key, enclave.quote, enclave.measurement
        )

    def test_wrong_measurement_rejected(self):
        authority = self._authority()
        world = World()
        enclave = TeeEnclave(world, authority, "e1", code="code-v1")
        assert not AttestationAuthority.verify(
            authority.public_key, enclave.quote, sha256(b"evil-code")
        )

    def test_wrong_vendor_rejected(self):
        authority = self._authority()
        rogue = AttestationAuthority(name="rogue", rng=random.Random(2))
        world = World()
        enclave = TeeEnclave(world, authority, "e1", code="code-v1")
        assert not AttestationAuthority.verify(
            rogue.public_key, enclave.quote, enclave.measurement
        )

    def test_provision_after_verify_gates_the_key(self):
        authority = self._authority()
        world = World()
        enclave = TeeEnclave(world, authority, "e1", code="code-v1")
        assert not enclave.provision_key(
            "k", authority.public_key, sha256(b"other-code")
        )
        assert "k" not in enclave.entity.keyring
        assert enclave.provision_key("k", authority.public_key, enclave.measurement)
        assert "k" in enclave.entity.keyring

    def test_enclave_organization_is_attested(self):
        authority = self._authority()
        world = World()
        enclave = TeeEnclave(world, authority, "e1", code="c")
        assert enclave.entity.organization.attested


class TestCacti:
    def test_table_and_verdict(self):
        run = run_cacti()
        assert run.table().as_mapping() == EXPECTED_TABLE_CACTI
        assert run.analyzer.verdict().decoupled
        assert run.served == 3

    def test_enclave_rate_limit_is_enforced(self):
        run = run_cacti(requests=8, rate_limit=5)
        assert run.served == 5

    def test_origin_rejects_replayed_proofs(self):
        from repro.core.values import Subject
        from repro.net.network import Network
        from repro.tee.cacti import CactiOrigin, CactiTee, _CactiRequest, CACTI_PROTOCOL
        from repro.core.labels import SENSITIVE_DATA, NONSENSITIVE_IDENTITY
        from repro.core.values import LabeledValue

        world, network = World(), Network()
        authority = AttestationAuthority(rng=random.Random(3))
        subject = Subject("alice")
        client = world.entity("Client", "device", trusted_by_user=True)
        tee = CactiTee(world, authority, subject)
        origin = CactiOrigin(
            network,
            world.entity("Origin", "origin-org"),
            authority.public_key,
            tee.enclave.measurement,
        )
        host = network.add_host("c", client)
        proof = tee.rate_proof()
        request = _CactiRequest(
            proof=proof,
            proof_handle=LabeledValue(proof.proof_id, NONSENSITIVE_IDENTITY, subject, "id"),
            request=LabeledValue("r", SENSITIVE_DATA, subject, "req"),
        )
        assert host.transact(origin.address, request, CACTI_PROTOCOL) == "served"
        assert host.transact(origin.address, request, CACTI_PROTOCOL) == "rejected"


class TestPhoenix:
    def test_table_matches_expectation(self):
        run = run_phoenix()
        assert run.table().as_mapping() == EXPECTED_TABLE_PHOENIX

    def test_verdict_depends_on_trusting_attestation(self):
        """The paper's point: the TEE *moves* the locus of trust."""
        run = run_phoenix()
        assert not run.analyzer.verdict().decoupled
        assert run.analyzer.verdict(trust_attested=True).decoupled

    def test_operator_is_breach_proof(self):
        run = run_phoenix()
        assert run.analyzer.breach("cdn-operator").breach_proof

    def test_cache_works_inside_the_enclave(self):
        from repro.core.values import Subject
        from repro.http.messages import make_request
        from repro.net.network import Network
        from repro.tee.phoenix import PhoenixClient, PhoenixPop
        from repro.core.labels import SENSITIVE_IDENTITY
        from repro.core.values import LabeledValue

        world, network = World(), Network()
        authority = AttestationAuthority(rng=random.Random(4))
        subject = Subject("alice")
        client_entity = world.entity("Client", "device", trusted_by_user=True)
        pop = PhoenixPop(world, network, world.entity("Op", "op-org"), authority)
        host = network.add_host(
            "c", client_entity,
            identity=LabeledValue("ip", SENSITIVE_IDENTITY, subject, "ip"),
        )
        client = PhoenixClient(host, pop, authority.public_key, subject)
        client.fetch(make_request("cdn.example", "/a", subject))
        client.fetch(make_request("cdn.example", "/a", subject))
        assert pop.cache_hits == 1 and pop.cache_misses == 1

    def test_attestation_failure_blocks_the_session(self):
        from repro.core.values import Subject, LabeledValue
        from repro.core.labels import SENSITIVE_IDENTITY
        from repro.http.messages import make_request
        from repro.net.network import Network
        from repro.tee.phoenix import PhoenixClient, PhoenixPop

        world, network = World(), Network()
        authority = AttestationAuthority(rng=random.Random(5))
        rogue = AttestationAuthority(name="rogue", rng=random.Random(6))
        subject = Subject("alice")
        client_entity = world.entity("Client", "device", trusted_by_user=True)
        pop = PhoenixPop(world, network, world.entity("Op", "op-org"), authority)
        host = network.add_host(
            "c", client_entity,
            identity=LabeledValue("ip", SENSITIVE_IDENTITY, subject, "ip"),
        )
        client = PhoenixClient(host, pop, rogue.public_key, subject)
        with pytest.raises(RuntimeError):
            client.fetch(make_request("cdn.example", "/a", subject))
