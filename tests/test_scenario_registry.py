"""The scenario registry: completeness, parameter binding, goldens.

Two invariants guard the declarative runtime against drift:

* **Completeness** -- every paper-table constant defined anywhere in
  ``repro.*.scenario`` is claimed by exactly one registered spec, the
  spec's ``expected_table()`` reproduces the constant verbatim, and the
  spec's entity display order matches the table's keys.  Adding a new
  paper table without registering its scenario (or vice versa) fails
  here.

* **Golden parity** -- the registry-driven ``tables`` and ``report
  --json`` CLI paths must emit byte-identical output to the pinned
  pre-refactor goldens in ``tests/golden/``.
"""

import importlib
import importlib.util
import io
import pkgutil
import re
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.scenario import (
    Param,
    ScenarioError,
    ScenarioSpec,
    all_specs,
    experiment_specs,
    find_spec,
    get_spec,
    register,
    sweep_specs,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Module-level names that declare a paper knowledge table.
_CONSTANT_PATTERN = re.compile(r"^(PAPER_TABLE_|BASELINE_TABLE_|EXPECTED_TABLE)")


def _paper_table_constants():
    """Every paper-table constant in ``repro.*.scenario``, flattened.

    Returns ``{reference: table}`` where ``reference`` is the string a
    spec's ``table_constant`` field uses: the bare constant name, or
    ``NAME['mode']`` for dict-of-dict constants like the SSO family.
    """
    constants = {}
    for info in pkgutil.iter_modules(repro.__path__):
        if not info.ispkg:
            continue
        name = f"repro.{info.name}.scenario"
        if importlib.util.find_spec(name) is None:
            continue
        module = importlib.import_module(name)
        for attr in dir(module):
            if not _CONSTANT_PATTERN.match(attr):
                continue
            value = getattr(module, attr)
            if not isinstance(value, dict):
                continue
            if value and all(isinstance(cell, dict) for cell in value.values()):
                for mode, table in value.items():
                    constants[f"{attr}[{mode!r}]"] = table
            else:
                constants[attr] = value
    return constants


class TestCompleteness:
    def test_every_constant_has_exactly_one_spec(self):
        constants = _paper_table_constants()
        assert constants, "no paper-table constants found"
        for reference, table in constants.items():
            claimants = [
                spec for spec in all_specs() if spec.table_constant == reference
            ]
            assert len(claimants) == 1, (
                f"{reference} should be claimed by exactly one spec,"
                f" got {[spec.id for spec in claimants]}"
            )
            assert claimants[0].expected_table() == table, (
                f"spec {claimants[0].id!r} does not reproduce {reference}"
            )

    def test_every_paper_row_names_its_constant(self):
        # T2's table generalizes with the mix count, so it is a callable
        # reference rather than a module constant; everything else in
        # the report points at a real constant.
        constants = _paper_table_constants()
        for spec in experiment_specs():
            assert spec.table_constant, f"{spec.id} has no table_constant"
            if spec.id == "mixnet":
                assert spec.table_constant == "paper_table_t2(mixes)"
            else:
                assert spec.table_constant in constants

    def test_entity_order_matches_table_keys(self):
        for spec in all_specs():
            expected = spec.expected_table()
            if expected is None:
                continue
            assert spec.entity_order() == list(expected), (
                f"spec {spec.id!r}: entity order diverges from table keys"
            )

    def test_every_spec_declares_a_seed_param(self):
        for spec in all_specs():
            names = [param.name for param in spec.params]
            assert "seed" in names, f"spec {spec.id!r} has no seed parameter"

    def test_report_rows_in_paper_order(self):
        assert [spec.experiment_id for spec in experiment_specs()] == [
            "T1", "T2", "T3", "T4a", "T4b", "T5", "T6", "T7", "T8",
            "E1a", "E1b", "E2a", "E2b", "E2c",
        ]

    def test_sweeps_in_paper_order(self):
        assert [spec.key for spec in sweep_specs()] == [
            "D1", "D2", "D3u", "D3p", "D4", "D5", "D6",
        ]


class TestRegistry:
    def test_all_specs_sorted_by_id(self):
        ids = [spec.id for spec in all_specs()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_unknown_id_raises_with_hint(self):
        with pytest.raises(ScenarioError, match="unknown scenario 'nope'"):
            get_spec("nope")
        assert find_spec("nope") is None

    def test_find_spec_returns_registered(self):
        assert find_spec("mixnet") is get_spec("mixnet")

    def test_duplicate_registration_rejected(self):
        spec = get_spec("mixnet")
        clone = ScenarioSpec(id="mixnet", title="imposter", program=spec.program)
        with pytest.raises(ScenarioError, match="registered twice"):
            register(clone)
        assert get_spec("mixnet") is spec  # original untouched

    def test_bind_rejects_unknown_parameter(self):
        spec = get_spec("digital-cash")
        with pytest.raises(ScenarioError, match="no parameter 'coinz'"):
            spec.bind({"coinz": 5})

    def test_bind_overlays_defaults(self):
        spec = get_spec("digital-cash")
        bound = spec.bind({"coins": 7})
        assert bound["coins"] == 7
        assert bound["seed"] == spec.defaults()["seed"]

    def test_param_docs_present(self):
        for spec in all_specs():
            for param in spec.params:
                assert isinstance(param, Param)
                assert param.doc, f"{spec.id}.{param.name} is undocumented"


class TestGoldenParity:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        assert code == 0
        return out.getvalue()

    def test_tables_byte_identical(self):
        golden = (GOLDEN_DIR / "tables.txt").read_text(encoding="utf-8")
        assert self._run(["tables"]) == golden

    def test_report_json_byte_identical(self):
        golden = (GOLDEN_DIR / "report.json").read_text(encoding="utf-8")
        assert self._run(["report", "--json"]) == golden
