"""repro.scenario: the declarative scenario runtime.

One registry, one run loop, one run base -- every system the paper
analyzes (and every extension) is a :class:`ScenarioSpec` registered
here, executed by :func:`run_scenario` through the uniform
``build -> drive -> settle -> analyze`` lifecycle with phase hooks.

The harness derives its experiment list from :func:`experiment_specs`,
the CLI resolves its ``demo``/``trace``/``explain``/``timeline`` verbs
through :func:`get_spec`, and new scenarios join every one of those
surfaces with a single :func:`register` call -- no parallel lists.
"""

from .run import ScenarioRun
from .runtime import (
    PHASES,
    PhaseHook,
    ScenarioProgram,
    execute,
    run_scenario,
)
from .spec import (
    Param,
    ScenarioError,
    ScenarioSpec,
    SweepSpec,
    all_specs,
    discover,
    experiment_specs,
    find_spec,
    get_spec,
    register,
    register_sweep,
    sweep_specs,
)
from .topology import (
    OriginStack,
    add_origin,
    anonymized_identity,
    client_ip_identity,
    fetch_via_anonymized,
)

__all__ = [
    "PHASES",
    "Param",
    "PhaseHook",
    "ScenarioError",
    "ScenarioProgram",
    "ScenarioRun",
    "ScenarioSpec",
    "SweepSpec",
    "OriginStack",
    "add_origin",
    "anonymized_identity",
    "client_ip_identity",
    "fetch_via_anonymized",
    "all_specs",
    "discover",
    "execute",
    "experiment_specs",
    "find_spec",
    "get_spec",
    "register",
    "register_sweep",
    "run_scenario",
    "sweep_specs",
]
