"""Shared scenario topology: the HTTP-origin boilerplate, deduplicated.

The ``vpn``, ``odns``, ``mpr``, and ``tee`` scenarios all stand up the
same web-origin back end (an :class:`OriginDirectory` plus an
:class:`OriginServer`), mint the same kinds of labeled client
identities, and fetch content over an anonymized connection layer.
This module is the single home for that boilerplate; helpers preserve
the exact entity/host creation order of the scenarios they replaced,
so regenerated tables stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from repro.core.entities import Entity, World
from repro.core.labels import NONSENSITIVE_IDENTITY, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Sealed, Subject
from repro.http.messages import make_request
from repro.http.origin import OriginDirectory, OriginServer, TLS_HTTP_PROTOCOL
from repro.net.network import Network

__all__ = [
    "OriginStack",
    "add_origin",
    "client_ip_identity",
    "anonymized_identity",
    "fetch_via_anonymized",
]


@dataclass
class OriginStack:
    """One wired web origin: its entity, directory, and server."""

    entity: Entity
    directory: OriginDirectory
    server: OriginServer


def add_origin(
    world: World,
    network: Network,
    hostname: str = "www.example.com",
    entity_name: str = "Origin",
    organization: str = "origin-org",
    directory: Optional[OriginDirectory] = None,
) -> OriginStack:
    """Create the origin entity, directory, and server, in that order.

    The creation order (entity, then directory, then server/host)
    matches what every scenario previously hand-rolled, keeping
    address allocation and ledger order unchanged.
    """
    entity = world.entity(entity_name, organization)
    directory = directory if directory is not None else OriginDirectory()
    server = OriginServer(network, entity, hostname, directory=directory)
    return OriginStack(entity=entity, directory=directory, server=server)


def client_ip_identity(
    subject: Subject, ip: str, description: str = "client ip"
) -> LabeledValue:
    """A sensitive network identity (the client's real IP)."""
    return LabeledValue(
        payload=ip,
        label=SENSITIVE_IDENTITY,
        subject=subject,
        description=description,
    )


def anonymized_identity(
    subject: Subject,
    payload: str = "relay-egress-pool",
    description: str = "anonymized network identity",
    provenance: Tuple[str, ...] = ("address", "anonymize"),
) -> LabeledValue:
    """A non-sensitive network identity behind an anonymizing layer."""
    return LabeledValue(
        payload=payload,
        label=NONSENSITIVE_IDENTITY,
        subject=subject,
        description=description,
        provenance=provenance,
    )


def fetch_via_anonymized(
    world: World,
    network: Network,
    subject: Subject,
    client_entity: Entity,
    names: Iterable[str],
    hostname: str = "www.example.com",
    host_name: str = "client-anon",
    attempt: Optional[Callable[..., object]] = None,
) -> int:
    """Fetch each name from a fresh origin over an anonymized layer.

    Stands up the origin stack, attaches the client under an
    anonymized network identity, and issues one sealed (TLS-like)
    request per name; returns how many fetches got a reply.  This is
    the connection-level privacy layer the paper's section 2.1 layers
    under the T4 resolution analysis.

    ``attempt`` (a :meth:`ScenarioProgram.attempt`-shaped callable)
    routes each fetch through the caller's resilience policy, so the
    loop survives fault injection; ``None`` transacts directly.
    """
    stack = add_origin(world, network, hostname=hostname)
    anonymized = anonymized_identity(subject)
    fetch_host = network.add_host(host_name, client_entity, identity=anonymized)
    client_entity.grant_key(stack.server.tls_key_id)
    fetches = 0
    for name in names:
        request = make_request(hostname, f"/{name}", subject)
        client_entity.observe(request.content, channel="self", session="self")
        sealed = Sealed.wrap(
            stack.server.tls_key_id,
            [request],
            subject=subject,
            description="tls request",
        )
        if attempt is None:
            reply = fetch_host.transact(
                stack.server.address, sealed, TLS_HTTP_PROTOCOL
            )
        else:
            reply = attempt(
                lambda sealed=sealed: fetch_host.transact(
                    stack.server.address, sealed, TLS_HTTP_PROTOCOL
                ),
                label=f"fetch /{name}",
            )
        if reply is not None:
            fetches += 1
    return fetches
