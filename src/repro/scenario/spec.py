"""Scenario specs and the scenario registry.

Every analyzed system in the paper follows the same shape -- build a
world, wire entities onto the network, drive traffic, derive the
knowledge table.  A :class:`ScenarioSpec` declares one such system:
its id, display title, paper table, entity display order, parameter
schema (with defaults), and the program class that implements the
``build -> drive -> settle -> analyze`` lifecycle.

Specs register themselves at import time via :func:`register`;
:func:`discover` imports every ``repro.*.scenario`` module so the
registry is complete no matter which package a caller imported first.
The harness's D-series sweeps use the same pattern through
:class:`SweepSpec` / :func:`register_sweep`.
"""

from __future__ import annotations

import importlib
import importlib.util
import pkgutil
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "Param",
    "ScenarioSpec",
    "SweepSpec",
    "ScenarioError",
    "register",
    "register_sweep",
    "get_spec",
    "find_spec",
    "all_specs",
    "experiment_specs",
    "sweep_specs",
    "discover",
]


class ScenarioError(LookupError):
    """An unknown scenario id or bad parameter binding."""


@dataclass(frozen=True)
class Param:
    """One declared scenario parameter: name, default, documentation."""

    name: str
    default: Any = None
    doc: str = ""


#: A paper table: either the printed mapping or, for tables that
#: generalize with a parameter (T2's mix count), a callable from the
#: bound params to the mapping.
ExpectedTable = Union[Mapping[str, str], Callable[[Dict[str, Any]], Mapping[str, str]]]

#: Entity display order: a fixed list, or a callable from bound params
#: (mix pools and relay chains grow with their degree knob).
EntityOrder = Union[Sequence[str], Callable[[Dict[str, Any]], Sequence[str]]]


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario, declaratively.

    ``program`` is a :class:`~repro.scenario.runtime.ScenarioProgram`
    subclass; the runtime instantiates it per run and steps it through
    the lifecycle phases.  ``experiment_id`` marks specs that appear in
    the paper report (T1..E2c); ``order`` fixes their presentation
    order there.
    """

    id: str
    title: str
    program: type
    params: Tuple[Param, ...] = ()
    expected: Optional[ExpectedTable] = None
    entities: Optional[EntityOrder] = None
    #: The name of the paper-table constant this spec reproduces
    #: (``PAPER_TABLE_T1``, ``EXPECTED_TABLES_SSO['global']``, ...);
    #: purely documentary, checked by the registry-completeness test.
    table_constant: str = ""
    experiment_id: Optional[str] = None
    order: float = 1000.0
    tags: Tuple[str, ...] = ()

    def defaults(self) -> Dict[str, Any]:
        """The parameter schema's default binding."""
        return {param.name: param.default for param in self.params}

    def bind(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Defaults overlaid with ``overrides``; unknown names fail."""
        bound = self.defaults()
        for name, value in (overrides or {}).items():
            if name not in bound:
                known = ", ".join(sorted(bound)) or "(none)"
                raise ScenarioError(
                    f"scenario {self.id!r} has no parameter {name!r};"
                    f" known parameters: {known}"
                )
            bound[name] = value
        return bound

    def expected_table(
        self, params: Optional[Dict[str, Any]] = None
    ) -> Optional[Dict[str, str]]:
        """The paper table under ``params`` (defaults if omitted)."""
        if self.expected is None:
            return None
        if callable(self.expected):
            return dict(self.expected(params if params is not None else self.defaults()))
        return dict(self.expected)

    def entity_order(
        self, params: Optional[Dict[str, Any]] = None
    ) -> Optional[List[str]]:
        """The table's entity display order under ``params``."""
        if self.entities is None:
            return None
        if callable(self.entities):
            return list(self.entities(params if params is not None else self.defaults()))
        return list(self.entities)


@dataclass(frozen=True)
class SweepSpec:
    """One D-series sweep: a stable key plus a no-argument runner."""

    key: str
    runner: Callable[[], object]
    title: str = ""
    order: float = 1000.0


_REGISTRY: Dict[str, ScenarioSpec] = {}
_SWEEPS: Dict[str, SweepSpec] = {}
_DISCOVERED = False


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry (import-time; duplicate ids fail)."""
    existing = _REGISTRY.get(spec.id)
    if existing is not None and existing is not spec:
        raise ScenarioError(f"scenario id {spec.id!r} registered twice")
    _REGISTRY[spec.id] = spec
    return spec


def register_sweep(
    key: str, title: str = "", order: float = 1000.0
) -> Callable[[Callable[[], object]], Callable[[], object]]:
    """Decorator registering a D-series sweep runner under ``key``."""

    def _decorate(runner: Callable[[], object]) -> Callable[[], object]:
        if key in _SWEEPS and _SWEEPS[key].runner is not runner:
            raise ScenarioError(f"sweep key {key!r} registered twice")
        _SWEEPS[key] = SweepSpec(key=key, runner=runner, title=title, order=order)
        return runner

    return _decorate


def discover() -> None:
    """Import every ``repro.*.scenario`` module exactly once.

    Specs register at import time; this walks the ``repro`` package so
    the registry is complete regardless of what was imported before.
    """
    global _DISCOVERED
    if _DISCOVERED:
        return
    _DISCOVERED = True
    import repro

    for info in pkgutil.iter_modules(repro.__path__):
        if not info.ispkg:
            continue
        name = f"repro.{info.name}.scenario"
        if importlib.util.find_spec(name) is not None:
            importlib.import_module(name)


def get_spec(scenario_id: str) -> ScenarioSpec:
    """The spec registered under ``scenario_id`` (after discovery)."""
    discover()
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ScenarioError(
            f"unknown scenario {scenario_id!r}; try: {known}"
        ) from None


def find_spec(scenario_id: str) -> Optional[ScenarioSpec]:
    """Like :func:`get_spec` but ``None`` instead of raising."""
    discover()
    return _REGISTRY.get(scenario_id)


def all_specs() -> List[ScenarioSpec]:
    """Every registered spec, ordered by id."""
    discover()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def experiment_specs() -> List[ScenarioSpec]:
    """The T/E-series specs in the paper's presentation order."""
    discover()
    specs = [spec for spec in _REGISTRY.values() if spec.experiment_id]
    return sorted(specs, key=lambda spec: (spec.order, spec.experiment_id))


def sweep_specs() -> List[SweepSpec]:
    """The D-series sweeps in presentation order, by stable key."""
    # Sweeps register when the harness imports; make sure it has.
    importlib.import_module("repro.harness")
    return sorted(_SWEEPS.values(), key=lambda spec: (spec.order, spec.key))
