"""The declarative scenario runtime: one run loop for every scenario.

A scenario executes in four phases:

* ``build``   -- create the world, the network, every entity and
  protocol endpoint (no traffic yet);
* ``drive``   -- inject the workload (queries, purchases, logins);
* ``settle``  -- let the simulator drain (default: ``network.run()``);
* ``analyze`` -- construct the analyzer and the scenario's
  :class:`~repro.scenario.run.ScenarioRun`.

:func:`run_scenario` steps a :class:`ScenarioProgram` through those
phases, calling every registered :data:`PhaseHook` before and after
each one.  Hooks are how later layers extend *every* scenario at once
-- fault injection flips network knobs before ``drive``, sharding
splits the workload, tracing wraps phases in spans -- without touching
scenario code.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, Optional, Sequence

from repro.core.entities import World
from repro.net.network import Network

from .run import ScenarioRun
from .spec import ScenarioSpec, get_spec

__all__ = [
    "PHASES",
    "PhaseHook",
    "ScenarioProgram",
    "run_scenario",
    "execute",
]

#: The lifecycle, in order.  ``analyze`` is the only phase with a
#: return value (the finished run).
PHASES = ("build", "drive", "settle", "analyze")

#: ``hook(event, phase, program)`` with ``event`` in {"before",
#: "after"}; called around every phase of every run it is passed to.
PhaseHook = Callable[[str, str, "ScenarioProgram"], None]


class ScenarioProgram:
    """One scenario's lifecycle implementation.

    Subclasses implement :meth:`build`, :meth:`drive`, and
    :meth:`analyze`; :meth:`settle` defaults to draining the network.
    The base constructor provides the world, the network (see
    :meth:`make_network` for latency knobs), and -- when the spec's
    schema declares a ``seed`` -- a per-run ``self.rng``
    (``random.Random(seed)``, or ``None`` for ``seed=None``), so no
    scenario ever draws from module-level randomness.
    """

    #: Per-scenario resilience-policy override consulted when a fault
    #: plan is installed (``None`` -> the runtime's default policy).
    #: Class-level so a scenario can declare it declaratively.
    resilience = None

    def __init__(self, spec: ScenarioSpec, params: Dict[str, Any]) -> None:
        self.spec = spec
        self.params = params
        self.validate()
        self.world = World()
        self.network = self.make_network()
        seed = params.get("seed")
        self.rng: Optional[random.Random] = (
            random.Random(seed) if seed is not None else None
        )
        #: Set by :class:`repro.faults.FaultPlanHook` before ``drive``
        #: when the run carries a fault plan; ``None`` otherwise.
        self.fault_runtime: Optional[Any] = None
        #: Set by :meth:`populate` (via ``run_scenario(population=...)``)
        #: before ``build``; ``None`` for engine-less runs, in which
        #: case :meth:`population_names` falls back to the scenario's
        #: hand-rolled subject names and output stays byte-identical.
        self.population: Optional[Any] = None

    # -- overridable lifecycle ----------------------------------------

    def validate(self) -> None:
        """Reject bad parameter bindings before any state exists."""

    def make_network(self) -> Network:
        """The scenario's network; override for latency/loss knobs."""
        return Network()

    def build(self) -> None:
        raise NotImplementedError

    def drive(self) -> None:
        raise NotImplementedError

    def settle(self) -> None:
        self.network.run()

    def analyze(self) -> ScenarioRun:
        raise NotImplementedError

    def populate(self, engine: Any) -> None:
        """Install a population engine for this run (before ``build``).

        The base implementation just remembers the engine; scenarios
        that support ambient populations read it through
        :meth:`population_names` (and may override this to configure
        themselves from the engine's spec).
        """
        self.population = engine

    # -- conveniences shared by every program -------------------------

    def population_names(
        self, count: int, fallback: Callable[[int], str]
    ) -> list:
        """``count`` subject names: engine-assigned, or the fallback.

        Scenarios call this instead of hand-rolling
        ``[f"user-{i}" ...]`` so that a run under
        ``run_scenario(population=engine)`` draws its subjects from the
        ambient population while engine-less runs keep their historical
        names byte-for-byte.
        """
        if self.population is None:
            return [fallback(i) for i in range(count)]
        return self.population.user_names(count)

    def param(self, name: str) -> Any:
        return self.params[name]

    def attempt(
        self,
        op: Callable[[], Any],
        fallback: Optional[Callable[[], Any]] = None,
        label: str = "",
    ) -> Any:
        """Run one workload operation with fault-aware resilience.

        Under a fault plan this is the policy's timeout/retry/backoff
        loop with an optional explicit fallback (see
        :meth:`repro.faults.FaultRuntime.attempt`); without one it is
        a zero-overhead direct call.  Scenarios route each driven
        operation through here so every spec runs under
        ``run_scenario(..., faults=plan)`` unchanged.
        """
        if self.fault_runtime is None:
            return op()
        return self.fault_runtime.attempt(op, fallback=fallback, label=label)

    def run_phase(self, phase: str) -> Any:
        """Execute one lifecycle phase (fault-guarded when armed).

        ``drive`` and ``settle`` run inside the fault runtime's guard:
        a fault-induced error there is recorded and the run still
        reaches ``analyze``, because a half-driven world *is* the
        datum for resilience analysis.
        """
        fn = getattr(self, phase)
        if self.fault_runtime is not None and phase in ("drive", "settle"):
            return self.fault_runtime.guard_phase(phase, fn)
        return fn()

    def finalize_run(self, run: ScenarioRun) -> None:
        """Stamp fault accounting onto the finished run."""
        if self.fault_runtime is not None:
            run.fault_summary = self.fault_runtime.summary()


def execute(
    program: ScenarioProgram, hooks: Sequence[PhaseHook] = ()
) -> ScenarioRun:
    """Step ``program`` through the lifecycle; return the stamped run."""
    run: Optional[ScenarioRun] = None
    for phase in PHASES:
        for hook in hooks:
            hook("before", phase, program)
        result = program.run_phase(phase)
        if phase == "analyze":
            run = result
        for hook in hooks:
            hook("after", phase, program)
    if not isinstance(run, ScenarioRun):
        raise TypeError(
            f"scenario {program.spec.id!r} analyze() returned"
            f" {type(run).__name__}, not a ScenarioRun"
        )
    run.scenario_id = program.spec.id
    run.params = dict(program.params)
    if run.table_entities is None:
        run.table_entities = program.spec.entity_order(program.params)
    if program.population is not None:
        # Downstream consumers (risk scoring) read the ambient
        # population off the run rather than re-plumbing it.
        run.population_engine = program.population
    program.finalize_run(run)
    return run


def run_scenario(
    scenario_id: str,
    overrides: Optional[Dict[str, Any]] = None,
    hooks: Iterable[PhaseHook] = (),
    faults: Optional[Any] = None,
    population: Optional[Any] = None,
    **params: Any,
) -> ScenarioRun:
    """Run one registered scenario by id.

    Keyword arguments (or the ``overrides`` mapping) overlay the
    spec's parameter schema; unknown names raise
    :class:`~repro.scenario.spec.ScenarioError`.

    ``faults`` -- a :class:`repro.faults.FaultPlan` (or its mapping
    form) -- runs the scenario under fault injection.  A null plan
    installs nothing at all, so the run stays byte-identical to a
    fault-free one.

    ``population`` -- a :class:`repro.population.PopulationEngine` (or
    a :class:`~repro.population.PopulationSpec` to build one from) --
    hands the scenario an ambient user population: its subjects come
    from the engine (:meth:`ScenarioProgram.population_names`) and the
    finished run carries the engine as ``run.population_engine`` for
    the risk layer.  ``None`` (the default) changes nothing.
    """
    spec = get_spec(scenario_id)
    bound = spec.bind({**(overrides or {}), **params})
    program = spec.program(spec, bound)
    hook_list = tuple(hooks)
    if population is not None:
        # Imported lazily: the population engine is optional equipment
        # and engine-less runs must not pay for it.
        from repro.population import PopulationEngine, PopulationSpec

        engine = (
            PopulationEngine(population)
            if isinstance(population, PopulationSpec)
            else population
        )

        def _populate_hook(event: str, phase: str, prog: ScenarioProgram) -> None:
            if event == "before" and phase == "build":
                prog.populate(engine)

        hook_list = (_populate_hook,) + hook_list
    if faults is not None:
        # Imported lazily: repro.faults depends on the network layer,
        # and fault-free runs must not pay for (or be changed by) it.
        from repro.faults import FaultPlanHook, coerce_plan

        plan = coerce_plan(faults)
        if not plan.is_null():
            hook_list += (FaultPlanHook(plan),)
    return execute(program, hook_list)
