"""The declarative scenario runtime: one run loop for every scenario.

A scenario executes in four phases:

* ``build``   -- create the world, the network, every entity and
  protocol endpoint (no traffic yet);
* ``drive``   -- inject the workload (queries, purchases, logins);
* ``settle``  -- let the simulator drain (default: ``network.run()``);
* ``analyze`` -- construct the analyzer and the scenario's
  :class:`~repro.scenario.run.ScenarioRun`.

:func:`run_scenario` steps a :class:`ScenarioProgram` through those
phases, calling every registered :data:`PhaseHook` before and after
each one.  Hooks are how later layers extend *every* scenario at once
-- fault injection flips network knobs before ``drive``, sharding
splits the workload, tracing wraps phases in spans -- without touching
scenario code.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, Optional, Sequence

from repro.core.entities import World
from repro.net.network import Network

from .run import ScenarioRun
from .spec import ScenarioSpec, get_spec

__all__ = [
    "PHASES",
    "PhaseHook",
    "ScenarioProgram",
    "run_scenario",
    "execute",
]

#: The lifecycle, in order.  ``analyze`` is the only phase with a
#: return value (the finished run).
PHASES = ("build", "drive", "settle", "analyze")

#: ``hook(event, phase, program)`` with ``event`` in {"before",
#: "after"}; called around every phase of every run it is passed to.
PhaseHook = Callable[[str, str, "ScenarioProgram"], None]


class ScenarioProgram:
    """One scenario's lifecycle implementation.

    Subclasses implement :meth:`build`, :meth:`drive`, and
    :meth:`analyze`; :meth:`settle` defaults to draining the network.
    The base constructor provides the world, the network (see
    :meth:`make_network` for latency knobs), and -- when the spec's
    schema declares a ``seed`` -- a per-run ``self.rng``
    (``random.Random(seed)``, or ``None`` for ``seed=None``), so no
    scenario ever draws from module-level randomness.
    """

    def __init__(self, spec: ScenarioSpec, params: Dict[str, Any]) -> None:
        self.spec = spec
        self.params = params
        self.validate()
        self.world = World()
        self.network = self.make_network()
        seed = params.get("seed")
        self.rng: Optional[random.Random] = (
            random.Random(seed) if seed is not None else None
        )

    # -- overridable lifecycle ----------------------------------------

    def validate(self) -> None:
        """Reject bad parameter bindings before any state exists."""

    def make_network(self) -> Network:
        """The scenario's network; override for latency/loss knobs."""
        return Network()

    def build(self) -> None:
        raise NotImplementedError

    def drive(self) -> None:
        raise NotImplementedError

    def settle(self) -> None:
        self.network.run()

    def analyze(self) -> ScenarioRun:
        raise NotImplementedError

    # -- conveniences shared by every program -------------------------

    def param(self, name: str) -> Any:
        return self.params[name]


def execute(
    program: ScenarioProgram, hooks: Sequence[PhaseHook] = ()
) -> ScenarioRun:
    """Step ``program`` through the lifecycle; return the stamped run."""
    run: Optional[ScenarioRun] = None
    for phase in PHASES:
        for hook in hooks:
            hook("before", phase, program)
        result = getattr(program, phase)()
        if phase == "analyze":
            run = result
        for hook in hooks:
            hook("after", phase, program)
    if not isinstance(run, ScenarioRun):
        raise TypeError(
            f"scenario {program.spec.id!r} analyze() returned"
            f" {type(run).__name__}, not a ScenarioRun"
        )
    run.scenario_id = program.spec.id
    run.params = dict(program.params)
    if run.table_entities is None:
        run.table_entities = program.spec.entity_order(program.params)
    return run


def run_scenario(
    scenario_id: str,
    overrides: Optional[Dict[str, Any]] = None,
    hooks: Iterable[PhaseHook] = (),
    **params: Any,
) -> ScenarioRun:
    """Run one registered scenario by id.

    Keyword arguments (or the ``overrides`` mapping) overlay the
    spec's parameter schema; unknown names raise
    :class:`~repro.scenario.spec.ScenarioError`.
    """
    spec = get_spec(scenario_id)
    bound = spec.bind({**(overrides or {}), **params})
    program = spec.program(spec, bound)
    return execute(program, tuple(hooks))
