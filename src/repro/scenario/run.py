"""The shared scenario-run base: what every completed run can do.

Every scenario run carries the same core triple -- the world (hence
the observation ledger), the network, and a decoupling analyzer over
the settled world -- plus a display contract (entity order, table
title, optional tracked subject) that :meth:`ScenarioRun.table` turns
into the paper-style knowledge table.  Per-package run classes
subclass this and add only their scenario-specific extras (answer
lists, latency figures, ground-truth maps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.net.network import Network

__all__ = ["ScenarioRun"]


@dataclass
class ScenarioRun:
    """A completed scenario: world, network, analyzer, display contract.

    Subclasses provide the display contract either as class attributes
    (fixed-entity scenarios), dataclass fields (variant-dependent
    orders), or properties (titles derived from run state):

    * ``table_entities`` -- entity display order for :meth:`table`;
    * ``table_title``    -- the table's title string;
    * ``table_subject``  -- optional tracked :class:`Subject`.

    The runtime stamps ``scenario_id`` and ``params`` after the run
    completes, so any run can say which spec and binding produced it.
    """

    world: World
    network: Network
    analyzer: DecouplingAnalyzer

    # Display contract defaults; subclasses override (class attribute,
    # dataclass field, or property).  Deliberately unannotated so they
    # stay class attributes, not dataclass fields -- subclasses keep
    # the freedom to declare required fields of their own.
    table_entities = None
    table_title = ""
    table_subject = None

    #: Fault accounting (:meth:`repro.faults.FaultRuntime.summary`),
    #: stamped by the runtime when the run carried a fault plan;
    #: ``None`` for fault-free runs, and then absent from
    #: :meth:`to_dict` so fault-free output stays byte-identical.
    fault_summary = None

    #: The ambient population engine, stamped by the runtime when the
    #: run was launched with ``run_scenario(population=...)``; ``None``
    #: otherwise.  The risk layer reads its linkability population.
    population_engine = None

    def __post_init__(self) -> None:
        #: Stamped by the runtime (empty for hand-built runs).
        self.scenario_id: str = ""
        self.params: Dict[str, Any] = {}

    # -- the uniform analysis surface ----------------------------------

    def table(self):
        """The run's knowledge table in the declared display order."""
        return self.analyzer.table(
            entities=(
                list(self.table_entities)
                if self.table_entities is not None
                else None
            ),
            subject=self.table_subject,
            title=self.table_title,
        )

    def audit(self, max_coalition_size: Optional[int] = None, narrate: bool = True):
        """The full decoupling audit of this run, as one document."""
        from repro.core.audit import audit

        return audit(
            self.world,
            title=self.table_title or self.scenario_id or "scenario run",
            entities=(
                list(self.table_entities)
                if self.table_entities is not None
                else None
            ),
            max_coalition_size=max_coalition_size,
            narrate=narrate,
        )

    def verdict(self):
        """The analyzer's decoupling verdict."""
        return self.analyzer.verdict()

    def coalitions(self) -> List[frozenset]:
        """Minimal re-coupling coalitions, if any."""
        return list(self.analyzer.minimal_recoupling_coalitions())

    def observations(self) -> int:
        """How many observations the run's ledger recorded."""
        return len(self.world.ledger)

    def to_dict(self) -> Dict[str, Any]:
        """The run as a plain dict (see ``core.serialize``)."""
        from repro.core.serialize import scenario_run_to_dict

        return scenario_run_to_dict(self)
