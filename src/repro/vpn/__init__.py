"""Cautionary tales: centralized VPNs and ECH (paper section 3.3)."""

from .scenario import EchRun, PAPER_TABLE_T8, VpnRun, run_ech, run_vpn
from .vpn import VPN_PROTOCOL, VpnClient, VpnServer

__all__ = [
    "VpnServer",
    "VpnClient",
    "VPN_PROTOCOL",
    "VpnRun",
    "EchRun",
    "run_vpn",
    "run_ech",
    "PAPER_TABLE_T8",
]
