"""The centralized VPN: the paper's cautionary tale (section 3.3).

A VPN shifts trust rather than decoupling it: the tunnel hides traffic
from the local network, but the VPN server terminates the tunnel and
sees the user's identity *and* everything they do -- "a single locus of
observation", exactly the (▲, ●) cell the Decoupling Principle forbids.
"""

from __future__ import annotations

import itertools


from repro.core.entities import Entity
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Sealed, Subject
from repro.http.messages import HttpRequest, HttpResponse, make_request
from repro.http.origin import HTTP_PROTOCOL, OriginDirectory
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["VpnServer", "VpnClient", "VPN_PROTOCOL"]

VPN_PROTOCOL = "vpn-tunnel"

_tunnel_ids = itertools.count(1)


class VpnServer:
    """Terminates client tunnels and proxies requests in the clear."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        directory: OriginDirectory,
        name: str = "vpn-server",
    ) -> None:
        self.entity = entity
        self.directory = directory
        self.host: SimHost = network.add_host(name, entity)
        self.host.register(VPN_PROTOCOL, self._handle)
        self.requests_proxied = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> Sealed:
        sealed: Sealed = packet.payload
        (request,) = self.entity.unseal(sealed)
        if not isinstance(request, HttpRequest):
            raise TypeError("vpn tunnel did not contain an HTTP request")
        self.requests_proxied += 1
        upstream = self.directory.address_of(request.host)
        response: HttpResponse = self.host.transact(
            upstream, request, HTTP_PROTOCOL
        )
        return Sealed.wrap(
            sealed.key_id,
            [response],
            subject=request.content.subject,
            description="vpn tunnel response",
        )


class VpnClient:
    """A user tunneling all traffic through one provider."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        subject: Subject,
        server: VpnServer,
        client_ip: str = "203.0.113.50",
    ) -> None:
        self.entity = entity
        self.subject = subject
        self.server = server
        self.tunnel_key_id = f"vpn-tunnel-key:{next(_tunnel_ids)}"
        entity.grant_key(self.tunnel_key_id)
        server.entity.grant_key(self.tunnel_key_id)  # shared tunnel key
        self.identity = LabeledValue(
            payload=client_ip,
            label=SENSITIVE_IDENTITY,
            subject=subject,
            description="client ip",
        )
        self.host: SimHost = network.add_host(
            f"vpn-client:{subject}", entity, identity=self.identity
        )

    def fetch(self, hostname: str, path: str) -> HttpResponse:
        """One request through the tunnel."""
        request = make_request(hostname, path, self.subject)
        self.entity.observe(
            [self.identity, request.content], channel="self", session="self"
        )
        sealed = Sealed.wrap(
            self.tunnel_key_id,
            [request],
            subject=self.subject,
            description="vpn tunneled request",
        )
        reply: Sealed = self.host.transact(
            self.server.address, sealed, VPN_PROTOCOL
        )
        (response,) = self.entity.unseal(reply)
        return response
