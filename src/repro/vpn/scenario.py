"""The T8 scenarios: VPN and ECH cautionary tales (section 3.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.http.messages import make_request
from repro.http.origin import OriginDirectory, OriginServer
from repro.net.network import Network, WireObserver
from repro.tls.handshake import TlsClientSession, TlsServer

from .vpn import VpnClient, VpnServer

__all__ = [
    "VpnRun",
    "EchRun",
    "run_vpn",
    "run_ech",
    "PAPER_TABLE_T8",
]

#: The paper's section 3.3 table, exactly as printed.
PAPER_TABLE_T8: Dict[str, str] = {
    "Client": "(▲, ●)",
    "VPN Server": "(▲, ●)",
    "Origin": "(△, ●)",
}


@dataclass
class VpnRun:
    world: World
    network: Network
    analyzer: DecouplingAnalyzer
    requests: int

    def table(self):
        return self.analyzer.table(
            entities=["Client", "VPN Server", "Origin"],
            title="T8: centralized VPN",
        )


def run_vpn(requests: int = 3) -> VpnRun:
    """All traffic through one trusted provider: the anti-pattern."""
    world = World()
    network = Network()
    client_entity = world.entity("Client", "client-device", trusted_by_user=True)
    vpn_entity = world.entity("VPN Server", "vpn-provider")
    origin_entity = world.entity("Origin", "origin-org")

    directory = OriginDirectory()
    OriginServer(network, origin_entity, "www.example.com", directory=directory)
    server = VpnServer(network, vpn_entity, directory)
    client = VpnClient(network, client_entity, Subject("alice"), server)

    for index in range(requests):
        client.fetch("www.example.com", f"/private/{index}")
    network.run()
    return VpnRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        requests=requests,
    )


@dataclass
class EchRun:
    world: World
    network: Network
    analyzer: DecouplingAnalyzer
    use_ech: bool

    def table(self):
        return self.analyzer.table(
            entities=["Client", "Network Observer", "TLS Server"],
            title=f"T8b: TLS {'with' if self.use_ech else 'without'} ECH",
        )

    def observer_saw_sni(self) -> bool:
        return any(
            obs.description == "target fqdn" and obs.label.is_sensitive
            for obs in self.world.ledger.by_entity("Network Observer")
        )


def run_ech(use_ech: bool, requests: int = 2) -> EchRun:
    """TLS with/without ECH under a passive network observer.

    ECH hides the SNI from the observer but -- the paper's point --
    "does not alter what information the TLS server sees": the server
    column is (▲, ●) either way.
    """
    world = World()
    network = Network()
    client_entity = world.entity("Client", "client-device", trusted_by_user=True)
    observer_entity = world.entity("Network Observer", "transit-isp")
    server_entity = world.entity("TLS Server", "server-org")

    network.add_observer(WireObserver(observer_entity))
    server = TlsServer(network, server_entity, "secret-site.example")
    subject = Subject("alice")
    identity = LabeledValue(
        payload="198.51.100.23",
        label=SENSITIVE_IDENTITY,
        subject=subject,
        description="client ip",
    )
    host = network.add_host("tls-client", client_entity, identity=identity)
    client_entity.observe(identity, channel="self", session="self")
    session = TlsClientSession(host, server, subject, use_ech=use_ech)
    for index in range(requests):
        request = make_request("secret-site.example", f"/page/{index}", subject)
        client_entity.observe(request.content, channel="self", session="self")
        session.request(request)
    network.run()
    return EchRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        use_ech=use_ech,
    )
