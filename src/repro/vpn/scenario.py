"""The T8 scenarios: VPN and ECH cautionary tales (section 3.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.http.messages import make_request
from repro.net.network import WireObserver
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    add_origin,
    client_ip_identity,
    register,
    run_scenario,
)
from repro.tls.handshake import TlsClientSession, TlsServer

from .vpn import VpnClient, VpnServer

__all__ = [
    "VpnRun",
    "EchRun",
    "run_vpn",
    "run_ech",
    "PAPER_TABLE_T8",
]

#: The paper's section 3.3 table, exactly as printed.
PAPER_TABLE_T8: Dict[str, str] = {
    "Client": "(▲, ●)",
    "VPN Server": "(▲, ●)",
    "Origin": "(△, ●)",
}


@dataclass
class VpnRun(ScenarioRun):
    requests: int = 0

    table_title = "T8: centralized VPN"


class VpnProgram(ScenarioProgram):
    """All traffic through one trusted provider: the anti-pattern."""

    def build(self) -> None:
        client_entity = self.world.entity(
            "Client", "client-device", trusted_by_user=True
        )
        vpn_entity = self.world.entity("VPN Server", "vpn-provider")
        origin = add_origin(self.world, self.network)
        server = VpnServer(self.network, vpn_entity, origin.directory)
        self.client = VpnClient(
            self.network, client_entity, Subject("alice"), server
        )

    def drive(self) -> None:
        for index in range(self.param("requests")):
            self.client.fetch("www.example.com", f"/private/{index}")

    def analyze(self) -> VpnRun:
        return VpnRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            requests=self.param("requests"),
        )


register(
    ScenarioSpec(
        id="vpn",
        title="Centralized VPN, cautionary (3.3)",
        program=VpnProgram,
        params=(
            Param("requests", 3, "pages fetched through the VPN"),
            Param("seed", None, "unused: the scenario is deterministic"),
        ),
        expected=PAPER_TABLE_T8,
        entities=("Client", "VPN Server", "Origin"),
        table_constant="PAPER_TABLE_T8",
        experiment_id="T8",
        order=90.0,
    )
)


def run_vpn(requests: int = 3) -> VpnRun:
    """All traffic through one trusted provider: the anti-pattern."""
    return run_scenario("vpn", requests=requests)


@dataclass
class EchRun(ScenarioRun):
    use_ech: bool = False

    @property
    def table_title(self) -> str:
        return f"T8b: TLS {'with' if self.use_ech else 'without'} ECH"

    def observer_saw_sni(self) -> bool:
        return any(
            obs.description == "target fqdn" and obs.label.is_sensitive
            for obs in self.world.ledger.by_entity("Network Observer")
        )


class EchProgram(ScenarioProgram):
    """TLS with/without ECH under a passive network observer.

    ECH hides the SNI from the observer but -- the paper's point --
    "does not alter what information the TLS server sees": the server
    column is (▲, ●) either way.
    """

    def build(self) -> None:
        self.client_entity = self.world.entity(
            "Client", "client-device", trusted_by_user=True
        )
        observer_entity = self.world.entity("Network Observer", "transit-isp")
        server_entity = self.world.entity("TLS Server", "server-org")

        self.network.add_observer(WireObserver(observer_entity))
        server = TlsServer(self.network, server_entity, "secret-site.example")
        self.subject = Subject("alice")
        identity = client_ip_identity(self.subject, "198.51.100.23")
        host = self.network.add_host("tls-client", self.client_entity, identity=identity)
        self.client_entity.observe(identity, channel="self", session="self")
        self.session = TlsClientSession(
            host, server, self.subject, use_ech=self.param("use_ech")
        )

    def drive(self) -> None:
        for index in range(self.param("requests")):
            request = make_request("secret-site.example", f"/page/{index}", self.subject)
            self.client_entity.observe(request.content, channel="self", session="self")
            self.session.request(request)

    def analyze(self) -> EchRun:
        return EchRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            use_ech=self.param("use_ech"),
        )


register(
    ScenarioSpec(
        id="ech",
        title="TLS with/without ECH, cautionary (3.3)",
        program=EchProgram,
        params=(
            Param("use_ech", True, "encrypt the ClientHello SNI"),
            Param("requests", 2, "requests issued over the session"),
            Param("seed", None, "unused: the scenario is deterministic"),
        ),
        entities=("Client", "Network Observer", "TLS Server"),
        order=91.0,
    )
)


def run_ech(use_ech: bool, requests: int = 2) -> EchRun:
    """TLS with/without ECH under a passive network observer."""
    return run_scenario("ech", use_ech=use_ech, requests=requests)
