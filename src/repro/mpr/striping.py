"""Striping flows across relay providers (paper section 5.1).

"Non-collusion can be more effective as a system property if a user can
dynamically stitch services or stripe usage across multiple providers."

A :class:`ProviderStriper` owns several independent relay chains (each
a complete MPR deployment by a different pair of organizations) and
spreads the user's requests across them.  The ingress relay of any one
provider then attributes only a fraction of the user's activity volume,
and a full-collusion compromise of one provider exposes only that
fraction of flows.
"""

from __future__ import annotations

import random as _random
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.metrics import entropy_bits
from repro.http.messages import HttpResponse
from repro.http.origin import OriginServer

from .relay import MprClient

__all__ = ["ProviderStriper"]


@dataclass
class ProviderStriper:
    """Round-robin (or random) striping across full relay chains."""

    clients: List[MprClient]
    rng: Optional[_random.Random] = None
    requests_by_provider: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if not self.clients:
            raise ValueError("need at least one provider chain")
        self._next = 0

    def _choose(self) -> int:
        if self.rng is not None:
            return self.rng.randrange(len(self.clients))
        choice = self._next % len(self.clients)
        self._next += 1
        return choice

    def fetch(
        self, origin: OriginServer, path: str, geo_hint: Optional[str] = None
    ) -> HttpResponse:
        index = self._choose()
        self.requests_by_provider[index] += 1
        return self.clients[index].fetch(origin, path, geo_hint=geo_hint)

    # ------------------------------------------------------------------
    # Knowledge metrics
    # ------------------------------------------------------------------

    def max_provider_share(self) -> float:
        """Largest fraction of the user's flows any provider carried."""
        total = sum(self.requests_by_provider.values())
        if total == 0:
            return 0.0
        return max(self.requests_by_provider.values()) / total

    def flow_entropy_bits(self) -> float:
        return entropy_bits(dict(self.requests_by_provider))
