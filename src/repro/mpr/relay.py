"""Multi-Party Relay clients (paper section 3.2.4).

The client side of an iCloud-Private-Relay-style service: nested
CONNECT tunnels through a configurable chain of relays, each run by a
distinct organization, with the request TLS-sealed end-to-end to the
origin.  Relay 1 sees the user's address and nothing else; the last
relay resolves and contacts the origin, learning the FQDN; the origin
sees the request from the relay pool's address.

``geo_hint`` reproduces the section 4.4 regression: the client volunteers
a coarse geolocation to the origin (so DRM-style geo-dependent services
keep working), deliberately stepping outside the Decoupling Principle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.entities import Entity
from repro.core.labels import PARTIAL_SENSITIVE_DATA
from repro.core.values import LabeledValue, Sealed, Subject
from repro.http.messages import HttpResponse, fqdn_value, make_request
from repro.http.origin import OriginDirectory, OriginServer, TLS_HTTP_PROTOCOL
from repro.http.proxy import CONNECT_PROTOCOL, ConnectProxy, ConnectRequest
from repro.net.network import Network, SimHost

__all__ = ["MprClient", "build_relay_chain"]


def build_relay_chain(
    network: Network,
    entities: Sequence[Entity],
    directory: OriginDirectory,
) -> List[ConnectProxy]:
    """One :class:`ConnectProxy` per entity; only the last can resolve
    hostnames (the egress relay holds the directory)."""
    relays: List[ConnectProxy] = []
    for index, entity in enumerate(entities):
        is_last = index == len(entities) - 1
        relays.append(
            ConnectProxy(
                network,
                entity,
                name=f"relay-{index + 1}",
                tunnel_key_id=f"mpr-tunnel-{index + 1}",
                directory=directory if is_last else None,
            )
        )
    return relays


@dataclass
class MprClient:
    """A user of the relay chain."""

    host: SimHost
    relays: List[ConnectProxy]
    subject: Subject

    def __post_init__(self) -> None:
        for relay in self.relays:
            self.host.entity.grant_key(relay.tunnel_key_id)

    def fetch(
        self,
        origin: OriginServer,
        path: str,
        geo_hint: Optional[str] = None,
    ) -> HttpResponse:
        """One request through the chain; returns the opened response."""
        request = make_request(origin.hostname, path, self.subject)
        self.host.entity.observe(request.content, channel="self", session="self")
        self.host.entity.grant_key(origin.tls_key_id)

        tls_payload: list = [request]
        if geo_hint is not None:
            tls_payload.append(
                LabeledValue(
                    payload=geo_hint,
                    label=PARTIAL_SENSITIVE_DATA,
                    subject=self.subject,
                    description="coarse geolocation hint",
                    provenance=("location", "coarsen"),
                )
            )
        innermost = Sealed.wrap(
            origin.tls_key_id,
            tls_payload,
            subject=self.subject,
            description="end-to-end tls request",
        )

        # Build the tunnel onion from the inside out: the last relay
        # gets the hostname (it must connect out), earlier relays get
        # only the next relay's address.
        payload: Sealed = innermost
        protocol = TLS_HTTP_PROTOCOL
        for index in range(len(self.relays) - 1, -1, -1):
            relay = self.relays[index]
            if index == len(self.relays) - 1:
                hop = ConnectRequest(
                    target=origin.hostname,
                    target_fqdn=fqdn_value(origin.hostname, self.subject),
                    inner=payload,
                    inner_protocol=protocol,
                )
            else:
                hop = ConnectRequest(
                    target=self.relays[index + 1].address,
                    inner=payload,
                    inner_protocol=protocol,
                )
            payload = Sealed.wrap(
                relay.tunnel_key_id,
                [hop],
                subject=self.subject,
                description=f"tunnel layer to relay {index + 1}",
            )
            protocol = CONNECT_PROTOCOL

        reply = self.host.transact(self.relays[0].address, payload, CONNECT_PROTOCOL)
        # Unwrap the response layers: relay 1's tunnel, ..., then TLS.
        for relay in self.relays:
            (reply,) = self.host.entity.unseal(reply)
        (response,) = self.host.entity.unseal(reply)
        return response
