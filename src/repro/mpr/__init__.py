"""Multi-Party Relays (paper section 3.2.4)."""

from .relay import MprClient, build_relay_chain
from .scenario import MprRun, PAPER_TABLE_T6, paper_table_t6, run_mpr
from .striping import ProviderStriper

__all__ = [
    "MprClient",
    "build_relay_chain",
    "MprRun",
    "run_mpr",
    "paper_table_t6",
    "PAPER_TABLE_T6",
    "ProviderStriper",
]
