"""The T6 scenario: a Multi-Party Relay run, with a degree knob.

Two relays reproduce the paper's Private Relay table; the ``relays``
parameter generalizes the chain for the D1 degree-of-decoupling sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.http.origin import OriginDirectory, OriginServer
from repro.net.network import Network

from .relay import MprClient, build_relay_chain

__all__ = ["MprRun", "run_mpr", "paper_table_t6", "PAPER_TABLE_T6"]


def paper_table_t6(relays: int) -> Dict[str, str]:
    """The section 3.2.4 table, generalized to ``relays`` hops."""
    table = {"User": "(▲, ●)", "Relay 1": "(▲, ⊙)"}
    for index in range(2, relays):
        table[f"Relay {index}"] = "(△, ⊙)"
    if relays >= 2:
        table[f"Relay {relays}"] = "(△, ⊙/●)"
    table["Origin"] = "(△, ●)"
    return table


#: The paper's two-relay table, exactly as printed.
PAPER_TABLE_T6: Dict[str, str] = paper_table_t6(2)


@dataclass
class MprRun:
    """Everything produced by one MPR scenario run."""

    world: World
    network: Network
    client: MprClient
    analyzer: DecouplingAnalyzer
    relays: int
    requests: int
    mean_latency: float
    table_entities: List[str] = None  # type: ignore[assignment]

    def table(self):
        return self.analyzer.table(
            entities=self.table_entities,
            title=f"T6: multi-party relay ({self.relays} relays)",
        )

    def origin_knows_location(self) -> bool:
        """Did the origin learn a (coarse) location? (section 4.4)"""
        return any(
            obs.description == "coarse geolocation hint"
            for obs in self.world.ledger.by_entity("Origin")
        )


def run_mpr(
    relays: int = 2,
    requests: int = 3,
    geo_hint: Optional[str] = None,
    link_latency: float = 0.010,
) -> MprRun:
    """Fetch ``requests`` pages through a chain of ``relays``."""
    if relays < 1:
        raise ValueError("need at least one relay")
    world = World()
    network = Network(default_latency=link_latency)
    subject = Subject("alice")

    user_entity = world.entity("User", "user-device", trusted_by_user=True)
    relay_entities = [
        world.entity(f"Relay {i}", f"relay-org-{i}") for i in range(1, relays + 1)
    ]
    origin_entity = world.entity("Origin", "origin-org")

    directory = OriginDirectory()
    origin = OriginServer(network, origin_entity, "www.example.com", directory=directory)
    chain = build_relay_chain(network, relay_entities, directory)

    identity = LabeledValue(
        payload="203.0.113.9",
        label=SENSITIVE_IDENTITY,
        subject=subject,
        description="client ip",
    )
    host = network.add_host("mpr-client", user_entity, identity=identity)
    user_entity.observe(identity, channel="self", session="self")
    client = MprClient(host=host, relays=chain, subject=subject)

    start = network.simulator.now
    for index in range(requests):
        response = client.fetch(origin, f"/page/{index}", geo_hint=geo_hint)
        if not response.ok:
            raise RuntimeError("origin rejected a relayed request")
    elapsed = network.simulator.now - start
    network.run()

    return MprRun(
        world=world,
        network=network,
        client=client,
        analyzer=DecouplingAnalyzer(world),
        relays=relays,
        requests=requests,
        mean_latency=elapsed / max(1, requests),
        table_entities=["User"]
        + [f"Relay {i}" for i in range(1, relays + 1)]
        + ["Origin"],
    )
