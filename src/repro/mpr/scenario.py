"""The T6 scenario: a Multi-Party Relay run, with a degree knob.

Two relays reproduce the paper's Private Relay table; the ``relays``
parameter generalizes the chain for the D1 degree-of-decoupling sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.net.network import Network
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    add_origin,
    client_ip_identity,
    register,
    run_scenario,
)

from .relay import MprClient, build_relay_chain

__all__ = ["MprRun", "run_mpr", "paper_table_t6", "PAPER_TABLE_T6"]


def paper_table_t6(relays: int) -> Dict[str, str]:
    """The section 3.2.4 table, generalized to ``relays`` hops."""
    table = {"User": "(▲, ●)", "Relay 1": "(▲, ⊙)"}
    for index in range(2, relays):
        table[f"Relay {index}"] = "(△, ⊙)"
    if relays >= 2:
        table[f"Relay {relays}"] = "(△, ⊙/●)"
    table["Origin"] = "(△, ●)"
    return table


#: The paper's two-relay table, exactly as printed.
PAPER_TABLE_T6: Dict[str, str] = paper_table_t6(2)


def _mpr_entities(params: Dict[str, object]) -> List[str]:
    relays = params["relays"]
    return ["User"] + [f"Relay {i}" for i in range(1, relays + 1)] + ["Origin"]


@dataclass
class MprRun(ScenarioRun):
    """Everything produced by one MPR scenario run."""

    client: MprClient = None  # type: ignore[assignment]
    relays: int = 0
    requests: int = 0
    mean_latency: float = 0.0
    table_entities: List[str] = None  # type: ignore[assignment]

    @property
    def table_title(self) -> str:
        return f"T6: multi-party relay ({self.relays} relays)"

    def origin_knows_location(self) -> bool:
        """Did the origin learn a (coarse) location? (section 4.4)"""
        return any(
            obs.description == "coarse geolocation hint"
            for obs in self.world.ledger.by_entity("Origin")
        )


class MprProgram(ScenarioProgram):
    """Fetch pages through a chain of decoupling relays."""

    def validate(self) -> None:
        if self.params["relays"] < 1:
            raise ValueError("need at least one relay")

    def make_network(self) -> Network:
        return Network(default_latency=self.params["link_latency"])

    def build(self) -> None:
        relays = self.param("relays")
        self.subject = Subject("alice")

        user_entity = self.world.entity("User", "user-device", trusted_by_user=True)
        relay_entities = [
            self.world.entity(f"Relay {i}", f"relay-org-{i}")
            for i in range(1, relays + 1)
        ]
        stack = add_origin(self.world, self.network)
        self.origin = stack.server
        chain = build_relay_chain(self.network, relay_entities, stack.directory)

        identity = client_ip_identity(self.subject, "203.0.113.9")
        host = self.network.add_host("mpr-client", user_entity, identity=identity)
        user_entity.observe(identity, channel="self", session="self")
        self.client = MprClient(host=host, relays=chain, subject=self.subject)

    def drive(self) -> None:
        self.elapsed = 0.0
        start = self.network.simulator.now
        for index in range(self.param("requests")):
            response = self.attempt(
                lambda index=index: self.client.fetch(
                    self.origin, f"/page/{index}", geo_hint=self.param("geo_hint")
                ),
                label=f"fetch /page/{index}",
            )
            if response is not None and not response.ok:
                raise RuntimeError("origin rejected a relayed request")
        self.elapsed = self.network.simulator.now - start

    def analyze(self) -> MprRun:
        requests = self.param("requests")
        return MprRun(
            world=self.world,
            network=self.network,
            client=self.client,
            analyzer=DecouplingAnalyzer(self.world),
            relays=self.param("relays"),
            requests=requests,
            mean_latency=self.elapsed / max(1, requests),
            table_entities=_mpr_entities(self.params),
        )


register(
    ScenarioSpec(
        id="mpr",
        title="Multi-Party Relay (3.2.4)",
        program=MprProgram,
        params=(
            Param("relays", 2, "relays in the chain"),
            Param("requests", 3, "pages fetched through the chain"),
            Param("geo_hint", None, "coarse geolocation hint sent to the origin"),
            Param("link_latency", 0.010, "per-link latency in seconds"),
            Param("seed", None, "unused: the scenario is deterministic"),
        ),
        expected=lambda params: paper_table_t6(params["relays"]),
        entities=_mpr_entities,
        table_constant="PAPER_TABLE_T6",
        experiment_id="T6",
        order=60.0,
    )
)


def run_mpr(
    relays: int = 2,
    requests: int = 3,
    geo_hint: Optional[str] = None,
    link_latency: float = 0.010,
) -> MprRun:
    """Fetch ``requests`` pages through a chain of ``relays``."""
    return run_scenario(
        "mpr",
        relays=relays,
        requests=requests,
        geo_hint=geo_hint,
        link_latency=link_latency,
    )
