"""Population synthesis: deterministic open-loop workloads at scale.

:mod:`repro.population.engine` synthesizes arrival streams (Poisson /
diurnal rates, behavioral cohorts, session churn) over populations up
to millions of users; :mod:`repro.population.workload` drives the
T-series scale topology with one.  Scenario programs opt in via the
``populate(engine)`` hook on
:class:`~repro.scenario.runtime.ScenarioProgram`.
"""

from .engine import (
    Arrival,
    BehaviorProfile,
    DEFAULT_PROFILES,
    PopulationEngine,
    PopulationSpec,
)
from .workload import ScaleCheckpoint, ScaleRunResult, run_scale_workload

__all__ = [
    "Arrival",
    "BehaviorProfile",
    "DEFAULT_PROFILES",
    "PopulationEngine",
    "PopulationSpec",
    "ScaleCheckpoint",
    "ScaleRunResult",
    "run_scale_workload",
]
