"""Deterministic open-loop population synthesis.

Scenario runs historically hand-rolled their subject lists
(``[Subject(f"user-{i}") for i in range(users)]``) and drove them in a
fixed round-robin.  That is fine for reproducing a paper table with
five subjects, but the decoupling verdicts are supposed to hold for
*deployments*: millions of users arriving in open loop, with uneven
activity mixes, diurnal load, and devices that move between sessions.
This module synthesizes exactly that population, deterministically.

:class:`PopulationEngine` turns a :class:`PopulationSpec` into a
reproducible arrival stream:

* **Open-loop Poisson arrivals.**  Inter-arrival times are drawn from
  an exponential at the spec's peak rate and *thinned* against the
  diurnal rate curve ``rate(t) = base_rate * (1 + amplitude *
  sin(2*pi*t/period))`` -- the standard way to sample an inhomogeneous
  Poisson process without inverting its integrated rate.
* **Stratified user rotation.**  Each accepted arrival is assigned to
  a user by walking a fixed coprime stride around the user index ring,
  then jittered through per-user activity weights.  The stride walk is
  a bijection over ``range(users)``, which guarantees every user
  appears once before any user repeats twice -- at a million users a
  uniform draw would leave a long tail of never-seen users.
* **Behavioral mixes.**  Each user deterministically belongs to one
  :class:`BehaviorProfile` (weighted by profile ``weight``), which
  scales its activity and picks its action mix.
* **Session churn / mobility.**  A user keeps a session until it ages
  past ``session_lifetime`` or a mobility event (profile probability)
  rotates it, modeling network hand-off and address churn.

Everything derives from ``spec.seed`` through ``random.Random``; the
same spec yields the same arrival stream on every platform, which is
what lets the T-series commit its results and the streaming
equivalence tests replay exact workloads.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "BehaviorProfile",
    "PopulationSpec",
    "Arrival",
    "PopulationEngine",
    "DEFAULT_PROFILES",
]


@dataclass(frozen=True)
class BehaviorProfile:
    """One behavioral cohort: how active it is and what it does."""

    name: str
    #: Relative share of the population in this cohort.
    weight: float = 1.0
    #: Multiplier on the spec's base arrival acceptance for this
    #: cohort's users (heavy users > 1, occasional users < 1).
    activity: float = 1.0
    #: Weighted action mix, e.g. ``(("query", 4.0), ("update", 1.0))``.
    actions: Tuple[Tuple[str, float], ...] = (("query", 1.0),)
    #: Probability an arrival hands the user to a new session
    #: (mobility / address churn) even before the session expires.
    mobility: float = 0.05


#: A deployment-flavored default mix: mostly light users, a heavy
#: minority, and a mobile cohort that churns sessions often.
DEFAULT_PROFILES: Tuple[BehaviorProfile, ...] = (
    BehaviorProfile("light", weight=6.0, activity=0.6, mobility=0.02),
    BehaviorProfile(
        "heavy",
        weight=3.0,
        activity=1.6,
        actions=(("query", 5.0), ("update", 1.0)),
        mobility=0.05,
    ),
    BehaviorProfile("mobile", weight=1.0, activity=1.0, mobility=0.35),
)


@dataclass(frozen=True)
class PopulationSpec:
    """Declarative description of a synthetic population."""

    users: int
    seed: int = 7
    #: Mean arrivals per simulated second at the diurnal midpoint.
    base_rate: float = 100.0
    #: Diurnal swing as a fraction of base_rate, in [0, 1).
    diurnal_amplitude: float = 0.5
    #: Diurnal period in simulated seconds.
    diurnal_period: float = 86_400.0
    #: Seconds before a session expires and rotates.
    session_lifetime: float = 1_800.0
    profiles: Tuple[BehaviorProfile, ...] = DEFAULT_PROFILES

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ValueError("population needs at least one user")
        if not self.profiles:
            raise ValueError("population needs at least one profile")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.base_rate <= 0.0:
            raise ValueError("base rate must be positive")


@dataclass(frozen=True)
class Arrival:
    """One accepted arrival: who acted, when, how, in which session."""

    index: int
    time: float
    user: int
    user_name: str
    profile: BehaviorProfile
    action: str
    session: str
    #: True when this arrival opened a fresh session for the user.
    new_session: bool


def _coprime_stride(users: int) -> int:
    """A stride coprime with ``users``, near the golden ratio point.

    Walking ``(i * stride) % users`` then visits every user exactly
    once per ``users`` arrivals, with consecutive visits far apart in
    index space (the golden-section start makes the walk look shuffled
    rather than sequential).
    """
    if users <= 2:
        return 1
    stride = int(users * 0.6180339887498949) | 1
    while math.gcd(stride, users) != 1:
        stride += 2
    return stride


class PopulationEngine:
    """Deterministic arrival synthesis over a :class:`PopulationSpec`.

    The engine is deliberately storage-free per user: a user's profile
    is a pure function of ``(seed, user index)``, and only users with a
    live session occupy the (compact, array-backed) session state.  At
    a million users the engine's own footprint is a few tens of
    megabytes, so population cost never masks ledger cost in the
    T-series measurements.
    """

    def __init__(self, spec: PopulationSpec) -> None:
        self.spec = spec
        self._stride = _coprime_stride(spec.users)
        # Cumulative profile weights for the deterministic cohort
        # assignment; tiny, computed once.
        total = sum(p.weight for p in spec.profiles)
        acc = 0.0
        bounds: List[float] = []
        for profile in spec.profiles:
            acc += profile.weight
            bounds.append(acc / total)
        self._profile_bounds = bounds
        # Per-profile cumulative action weights.
        self._action_tables: List[Tuple[Tuple[float, ...], Tuple[str, ...]]] = []
        for profile in spec.profiles:
            a_total = sum(w for _, w in profile.actions)
            a_acc = 0.0
            a_bounds: List[float] = []
            names: List[str] = []
            for action, weight in profile.actions:
                a_acc += weight
                a_bounds.append(a_acc / a_total)
                names.append(action)
            self._action_tables.append((tuple(a_bounds), tuple(names)))
        # Live-session state, keyed by user index.  Dicts rather than
        # full-width arrays: only users seen so far pay anything.
        self._session_id: Dict[int, int] = {}
        self._session_start: Dict[int, float] = {}
        self._sessions_opened = 0

    # -- pure per-user functions --------------------------------------

    def user_name(self, user: int) -> str:
        return f"user-{user}"

    def user_names(self, count: int) -> List[str]:
        """The first ``count`` user names (subject-list replacement)."""
        if count > self.spec.users:
            raise ValueError(
                f"requested {count} users from a population of {self.spec.users}"
            )
        return [self.user_name(i) for i in range(count)]

    def profile_index(self, user: int) -> int:
        """Deterministic cohort for one user (pure in seed and index)."""
        # A splitmix-style integer hash: cheap, stateless, and well
        # mixed -- profile assignment must not correlate with the
        # stride walk order.
        x = (user * 0x9E3779B97F4A7C15 + self.spec.seed * 0xBF58476D1CE4E5B9) & (
            2**64 - 1
        )
        x ^= x >> 31
        x = (x * 0x94D049BB133111EB) & (2**64 - 1)
        x ^= x >> 29
        unit = x / 2**64
        bounds = self._profile_bounds
        for index, bound in enumerate(bounds):
            if unit <= bound:
                return index
        return len(bounds) - 1

    def profile_of(self, user: int) -> BehaviorProfile:
        return self.spec.profiles[self.profile_index(user)]

    def linkability_population(self) -> Dict[str, float]:
        """Uniform linkability weights over the whole ambient population.

        The risk layer's linkability term divides by the anonymity-set
        mass; handing it the engine population makes G-series scores
        reflect the deployment's user base rather than only the
        subjects a scenario happened to drive.
        """
        return {self.user_name(i): 1.0 for i in range(self.spec.users)}

    # -- the arrival stream -------------------------------------------

    def arrivals(
        self,
        *,
        limit: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> Iterator[Arrival]:
        """Yield accepted arrivals in time order, deterministically.

        Stops after ``limit`` arrivals or past ``duration`` simulated
        seconds, whichever comes first (at least one bound required).
        The stream restarts from scratch on every call.
        """
        if limit is None and duration is None:
            raise ValueError("arrivals() needs a limit or a duration")
        spec = self.spec
        rng = random.Random(spec.seed * 1_000_003 + 1)
        uniform = rng.random
        users = spec.users
        stride = self._stride
        peak = spec.base_rate * (1.0 + spec.diurnal_amplitude)
        two_pi_over_period = 2.0 * math.pi / spec.diurnal_period
        session_id = self._session_id
        session_start = self._session_start
        self._session_id.clear()
        self._session_start.clear()
        self._sessions_opened = 0
        time = 0.0
        accepted = 0
        candidate = 0
        while True:
            if limit is not None and accepted >= limit:
                return
            # Exponential inter-arrival at the peak rate...
            time += -math.log(1.0 - uniform()) / peak
            if duration is not None and time > duration:
                return
            # ...thinned to the diurnal curve.
            rate = spec.base_rate * (
                1.0 + spec.diurnal_amplitude * math.sin(two_pi_over_period * time)
            )
            if uniform() * peak > rate:
                continue
            # Stratified user choice: walk the coprime stride ring, and
            # let the profile's activity multiplier accept/reject so
            # heavy cohorts arrive more often.  Rejected candidates
            # advance the ring, preserving the coverage guarantee.
            while True:
                user = (candidate * stride) % users
                candidate += 1
                profile_index = self.profile_index(user)
                profile = spec.profiles[profile_index]
                if profile.activity >= 1.0 or uniform() < profile.activity:
                    break
            # Session churn: expire by age, rotate by mobility.
            sid = session_id.get(user)
            start = session_start.get(user, 0.0)
            new_session = (
                sid is None
                or (time - start) > spec.session_lifetime
                or uniform() < profile.mobility
            )
            if new_session:
                self._sessions_opened += 1
                sid = self._sessions_opened
                session_id[user] = sid
                session_start[user] = time
            a_bounds, a_names = self._action_tables[profile_index]
            if len(a_names) == 1:
                action = a_names[0]
            else:
                draw = uniform()
                action = a_names[-1]
                for bound, nm in zip(a_bounds, a_names):
                    if draw <= bound:
                        action = nm
                        break
            yield Arrival(
                index=accepted,
                time=time,
                user=user,
                user_name=self.user_name(user),
                profile=profile,
                action=action,
                session=f"s{user}-{sid}",
                new_session=new_session,
            )
            accepted += 1

    @property
    def sessions_opened(self) -> int:
        """Sessions opened by the most recent arrival stream."""
        return self._sessions_opened
