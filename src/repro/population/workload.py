"""The T-series scale workload: streaming analysis over 1M users.

This drives an ODoH-shaped two-hop topology -- the smallest deployment
whose decoupling argument is interesting -- with a
:class:`~repro.population.engine.PopulationEngine` arrival stream:

* The **proxy** sees, per arrival, the client's network address (a
  sensitive identity, ``▲``) and the encrypted query (``⊙``).
* The **target** sees the same ciphertext (``⊙``, identical digest --
  what the proxy forwarded is what the target decrypts) and the
  decrypted query (sensitive data, ``●``).

Per entity the pools are one-sided -- the proxy holds no sensitive
data, the target no sensitive identity -- so the verdict is DECOUPLED
at every ledger version, and the streaming analyzer's candidate gates
answer it without ever materializing per-pair union-find state.  The
proxy+target *coalition* re-couples through the shared ciphertext
digest (collusion resistance 2), exactly the paper's ODoH story.

``coupled_fraction`` deliberately breaks decoupling for a fraction of
arrivals (the target also sees the client address), which is how the
equivalence tests exercise the violating paths at scale.

The driver records through :meth:`Ledger.record_fast
<repro.core.ledger.Ledger.record_fast>` -- the same hot path scenario
runs use -- under a segment policy that seals and spills as it goes,
and takes *checkpoints* mid-run: at each one it asks the streaming
analyzer for the verdict (and optionally the collusion structure) and
compares against a fresh analyzer over the same ledger version, i.e.
the post-hoc full-scan answer.  ``bench_scale`` asserts the comparison
at 1M users; the Hypothesis suite asserts it against ``naive=True`` at
small N.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import (
    NONSENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Subject

from .engine import PopulationEngine, PopulationSpec

__all__ = ["ScaleCheckpoint", "ScaleRunResult", "run_scale_workload"]

PROXY_ENTITY = "Oblivious Proxy"
TARGET_ENTITY = "Oblivious Target"
PROXY_ORG = "proxy-operator"
TARGET_ORG = "target-operator"


@dataclass(frozen=True)
class ScaleCheckpoint:
    """One mid-run query against the streaming analyzer."""

    observations: int
    version: int
    decoupled: bool
    violations: int
    #: Streaming answer rendered byte-identical to a fresh full-scan
    #: analyzer at the same ledger version.
    matches_full_scan: bool
    #: Smallest re-coupling coalition size at this version (None when
    #: the checkpoint skipped collusion analysis).
    collusion_resistance: Optional[int]
    elapsed_seconds: float


@dataclass
class ScaleRunResult:
    """Everything one T-series workload run produced."""

    world: World
    engine: PopulationEngine
    users: int
    observations: int
    arrivals: int
    sessions: int
    checkpoints: List[ScaleCheckpoint]
    ingest_seconds: float
    accounting: dict

    @property
    def all_checkpoints_match(self) -> bool:
        return all(c.matches_full_scan for c in self.checkpoints)


def build_scale_world() -> World:
    """The two-organization ODoH-shaped world the workload drives."""
    world = World()
    world.entity("Client Population", "user-devices", trusted_by_user=True)
    world.entity(PROXY_ENTITY, PROXY_ORG)
    world.entity(TARGET_ENTITY, TARGET_ORG)
    return world


def _verdicts_match(world: World, streaming: DecouplingAnalyzer) -> bool:
    """Streaming answer == fresh full-scan answer, byte for byte."""
    fresh = DecouplingAnalyzer(world)
    return str(streaming.verdict()) == str(fresh.verdict())


def run_scale_workload(
    *,
    users: int,
    observations: int,
    seed: int = 7,
    segment_rows: Optional[int] = 65_536,
    spill: bool = True,
    spill_directory: Optional[str] = None,
    checkpoints: int = 8,
    coupled_fraction: float = 0.0,
    collusion_at_checkpoints: bool = True,
    on_checkpoint: Optional[Callable[[ScaleCheckpoint], None]] = None,
) -> ScaleRunResult:
    """Drive the scale topology to ``observations`` ledger rows.

    Each arrival contributes four observations (two per hop).  The
    ledger runs under the given segment policy; the streaming analyzer
    is constructed *before* ingest and queried at ``checkpoints``
    evenly spaced points (plus once at the end), comparing each answer
    to a fresh analyzer over the same rows.
    """
    if observations < 4:
        raise ValueError("scale workload needs at least one arrival (4 rows)")
    world = build_scale_world()
    ledger = world.ledger
    if segment_rows is not None:
        ledger.configure_segments(
            rows=segment_rows, spill=spill, directory=spill_directory
        )
    engine = PopulationEngine(PopulationSpec(users=users, seed=seed))
    streaming = DecouplingAnalyzer(world)

    arrivals_wanted = observations // 4
    checkpoint_every = max(1, arrivals_wanted // max(1, checkpoints))
    coupled_stride = (
        int(1.0 / coupled_fraction) if coupled_fraction > 0.0 else 0
    )

    taken: List[ScaleCheckpoint] = []

    def take_checkpoint() -> None:
        started = _time.perf_counter()
        verdict = streaming.verdict()
        matches = _verdicts_match(world, streaming)
        resistance: Optional[int] = None
        if collusion_at_checkpoints:
            resistance = streaming.collusion_resistance()
            fresh = DecouplingAnalyzer(world)
            matches = matches and resistance == fresh.collusion_resistance()
        checkpoint = ScaleCheckpoint(
            observations=len(ledger),
            version=ledger.version,
            decoupled=verdict.decoupled,
            violations=len(verdict.violations),
            matches_full_scan=matches,
            collusion_resistance=resistance,
            elapsed_seconds=_time.perf_counter() - started,
        )
        taken.append(checkpoint)
        if on_checkpoint is not None:
            on_checkpoint(checkpoint)

    record_fast = ledger.record_fast
    started = _time.perf_counter()
    count = 0
    for arrival in engine.arrivals(limit=arrivals_wanted):
        user = arrival.user_name
        subject = Subject(user)
        # Unique per-arrival payloads: the ciphertext digest is the
        # cross-org link, the address digest the within-user link.
        ciphertext = f"ct-{arrival.index}"
        address = f"ip-{arrival.user}-{arrival.session}"
        proxy_values = [
            LabeledValue(address, SENSITIVE_IDENTITY, subject, "client address"),
            LabeledValue(ciphertext, NONSENSITIVE_DATA, subject, "encrypted query"),
        ]
        record_fast(
            PROXY_ENTITY,
            PROXY_ORG,
            proxy_values,
            time=arrival.time,
            channel="wire",
            session=f"px-{arrival.session}",
        )
        target_values = [
            LabeledValue(ciphertext, NONSENSITIVE_DATA, subject, "encrypted query"),
            LabeledValue(
                f"{arrival.action}-{arrival.index}",
                SENSITIVE_DATA,
                subject,
                "decrypted query",
            ),
        ]
        if coupled_stride and arrival.index % coupled_stride == 0:
            # The deliberate violation: the target also learns the
            # client address, so its own pool couples.
            target_values.append(
                LabeledValue(address, SENSITIVE_IDENTITY, subject, "client address")
            )
        record_fast(
            TARGET_ENTITY,
            TARGET_ORG,
            target_values,
            time=arrival.time,
            channel="wire",
            session=f"tg-{arrival.session}",
        )
        count += 1
        if count % checkpoint_every == 0 and len(taken) < checkpoints:
            take_checkpoint()
    ingest_seconds = _time.perf_counter() - started
    # The final checkpoint is the post-hoc answer itself.
    take_checkpoint()
    return ScaleRunResult(
        world=world,
        engine=engine,
        users=users,
        observations=len(ledger),
        arrivals=count,
        sessions=engine.sessions_opened,
        checkpoints=taken,
        ingest_seconds=ingest_seconds,
        accounting=ledger.memory_accounting(),
    )
