"""Phoenix: keyless CDNs with enclaves (paper section 4.3).

The paper cites Phoenix as using TEEs "to implement CDN-like services
(e.g., caching, web application firewalls) without the CDN seeing any
sensitive data".  We model a CDN point-of-presence whose TLS
termination and cache live inside an enclave: the *operator* entity
hosts the box (and sees client addresses plus encrypted traffic) while
the *enclave* entity holds the session keys.  Clients provision the
session key only after verifying the enclave's attestation quote.
"""

from __future__ import annotations

import itertools

from typing import Dict, Optional

from repro.core.entities import Entity, World
from repro.core.values import LabeledValue, Sealed, Subject
from repro.crypto.rsa import RsaPublicKey
from repro.http.messages import HttpRequest, HttpResponse
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

from .enclave import AttestationAuthority, TeeEnclave

__all__ = ["PhoenixPop", "PhoenixClient", "PHOENIX_PROTOCOL"]

PHOENIX_PROTOCOL = "phoenix-https"

_session_ids = itertools.count(1)


class PhoenixPop:
    """A CDN point of presence: operator host + in-enclave service."""

    CODE = "phoenix-cdn-cache-v1"

    def __init__(
        self,
        world: World,
        network: Network,
        operator_entity: Entity,
        authority: AttestationAuthority,
        name: str = "phoenix-pop",
    ) -> None:
        self.operator_entity = operator_entity
        self.enclave = TeeEnclave(world, authority, name="CDN Enclave", code=self.CODE)
        self.host: SimHost = network.add_host(name, operator_entity)
        self.host.register(PHOENIX_PROTOCOL, self._handle)
        self.cache: Dict[str, str] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> Sealed:
        """The operator's host receives ciphertext; the enclave serves.

        The packet was already observed by the *operator* entity (which
        lacks the session key and so recorded only the exterior).  We
        additionally let the *enclave* observe it -- the enclave is
        where decryption actually happens -- and produce the response
        inside the enclave's key domain.
        """
        sealed: Sealed = packet.payload
        now = self.host.network.simulator.now
        if packet.sender_identity is not None:
            # The enclave terminates the connection: like any TLS
            # server it sees the client's address.
            self.enclave.entity.observe(
                packet.sender_identity,
                time=now,
                channel="network-header",
                session=packet.session,
            )
        self.enclave.entity.observe(
            sealed, time=now, channel=PHOENIX_PROTOCOL, session=packet.session
        )
        (request,) = self.enclave.entity.unseal(sealed)
        if not isinstance(request, HttpRequest):
            raise TypeError("phoenix enclave expected an HTTP request")
        key = f"{request.host}{request.path_and_body}"
        if key in self.cache:
            self.cache_hits += 1
            body_text = self.cache[key]
        else:
            self.cache_misses += 1
            body_text = f"origin content for {key}"
            self.cache[key] = body_text
        response = HttpResponse(
            status=200,
            body=LabeledValue(
                payload=body_text,
                label=request.content.label.downgraded(),
                subject=request.content.subject,
                description="cdn response body",
            ),
        )
        return Sealed.wrap(
            sealed.key_id,
            [response],
            subject=request.content.subject,
            description="phoenix response",
        )


class PhoenixClient:
    """A client that trusts the enclave only after attestation."""

    def __init__(
        self,
        host: SimHost,
        pop: PhoenixPop,
        vendor_key: RsaPublicKey,
        subject: Subject,
    ) -> None:
        self.host = host
        self.pop = pop
        self.vendor_key = vendor_key
        self.subject = subject
        self.session_key_id: Optional[str] = None

    def establish_session(self) -> bool:
        """Verify the quote, then provision a fresh session key."""
        key_id = f"phoenix-session:{next(_session_ids)}"
        ok = self.pop.enclave.provision_key(
            key_id,
            self.vendor_key,
            expected_measurement=self.pop.enclave.measurement,
        )
        if not ok:
            return False
        self.host.entity.grant_key(key_id)
        self.session_key_id = key_id
        return True

    def fetch(self, request: HttpRequest) -> HttpResponse:
        if self.session_key_id is None and not self.establish_session():
            raise RuntimeError("attestation failed; refusing to send")
        self.host.entity.observe(request.content, channel="self", session="self")
        sealed = Sealed.wrap(
            self.session_key_id,
            [request],
            subject=self.subject,
            description="phoenix request",
        )
        reply: Sealed = self.host.transact(
            self.pop.address, sealed, PHOENIX_PROTOCOL
        )
        (response,) = self.host.entity.unseal(reply)
        return response
