"""Trusted Execution Environments (paper section 4.3).

A TEE lets processing happen "securely and privately ... on hardware
[the user does] not own or directly control": the host operator sees
only encrypted memory, while the hardware vendor attests to exactly
which code runs inside.  We model:

* an :class:`AttestationAuthority` (the hardware vendor): an RSA key
  that signs ``(enclave name, code measurement)`` quotes;
* a :class:`TeeEnclave`: an entity in its own *attested* organization,
  co-located with a host network host.  The host organization never
  holds the enclave's keys, so everything the enclave processes is ⊙
  to its operator;
* the provision-after-verify pattern: clients check the quote against
  the vendor key and an expected measurement before granting the
  enclave any session key.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from repro.core.entities import Entity, World
from repro.crypto.hashutil import sha256
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair

__all__ = ["AttestationQuote", "AttestationAuthority", "TeeEnclave"]


@dataclass(frozen=True)
class AttestationQuote:
    """A vendor-signed claim: enclave ``name`` runs code ``measurement``."""

    enclave_name: str
    measurement: bytes
    signature: int

    def payload(self) -> bytes:
        return self.enclave_name.encode("utf-8") + b"\x00" + self.measurement


class AttestationAuthority:
    """The hardware vendor's quoting key."""

    def __init__(
        self, name: str = "tee-vendor", key_bits: int = 512,
        rng: Optional[_random.Random] = None,
    ) -> None:
        self.name = name
        self._key: RsaPrivateKey = generate_rsa_keypair(key_bits, rng=rng)

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public

    def quote(self, enclave_name: str, measurement: bytes) -> AttestationQuote:
        """Sign an enclave's identity + code measurement."""
        quote = AttestationQuote(
            enclave_name=enclave_name, measurement=measurement, signature=0
        )
        signature = self._key.sign(quote.payload())
        return AttestationQuote(
            enclave_name=enclave_name, measurement=measurement, signature=signature
        )

    @staticmethod
    def verify(
        vendor_key: RsaPublicKey,
        quote: AttestationQuote,
        expected_measurement: bytes,
    ) -> bool:
        """Client-side: right code, genuinely quoted by the vendor."""
        if quote.measurement != expected_measurement:
            return False
        return vendor_key.verify(quote.payload(), quote.signature)


class TeeEnclave:
    """An attested entity living inside some operator's machine.

    The enclave's organization is ``tee:<vendor>/<name>`` with
    ``attested=True``; the *operator's* entity never receives the
    enclave keyring, so the information flow enforces the memory
    encryption the hardware provides.
    """

    def __init__(
        self,
        world: World,
        authority: AttestationAuthority,
        name: str,
        code: str,
    ) -> None:
        self.name = name
        self.code = code
        self.measurement = sha256(b"enclave-code:", code.encode("utf-8"))
        self.entity: Entity = world.entity(
            name,
            f"tee:{authority.name}/{name}",
            attested=True,
        )
        self._quote = authority.quote(name, self.measurement)

    @property
    def quote(self) -> AttestationQuote:
        return self._quote

    def provision_key(
        self,
        key_id: str,
        vendor_key: RsaPublicKey,
        expected_measurement: bytes,
    ) -> bool:
        """The client's provision-after-verify step.

        Grants the enclave ``key_id`` only if its quote checks out
        against the vendor key and the expected code measurement.
        """
        if not AttestationAuthority.verify(
            vendor_key, self._quote, expected_measurement
        ):
            return False
        self.entity.grant_key(key_id)
        return True
