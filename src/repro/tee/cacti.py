"""CACTI: CAPTCHA avoidance via client-side TEE integration (§4.3).

The paper cites CACTI as "a system similar to Privacy Pass that uses
TEEs for the purposes of keeping private state": instead of an online
issuer, a TEE *on the client's own device* maintains a monotonic rate
counter and produces vendor-attested *rate proofs* ("this device has
made fewer than k gated requests this window").  The origin verifies
the proof offline against the vendor's key and serves the request
without ever learning who the client is -- and without any issuer
learning anything at all.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.core.entities import Entity, World
from repro.core.labels import (
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
)
from repro.core.values import LabeledValue, Subject
from repro.crypto.hashutil import sha256
from repro.crypto.rsa import RsaPublicKey
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

from .enclave import AttestationAuthority, TeeEnclave

__all__ = ["RateProof", "CactiTee", "CactiOrigin", "CACTI_PROTOCOL"]

CACTI_PROTOCOL = "cacti-request"

_proof_ids = itertools.count(1)


@dataclass(frozen=True)
class RateProof:
    """An attested statement: counter below the limit this window."""

    proof_id: str
    window: int
    counter_below: int
    measurement: bytes
    quote_signature: int
    proof_signature: int  # freshness binding: signs (proof_id, window)


class CactiTee:
    """The client-side enclave: private counter, attested rate proofs."""

    CODE = "cacti-rate-counter-v1"

    def __init__(
        self,
        world: World,
        authority: AttestationAuthority,
        subject: Subject,
        rate_limit: int = 5,
    ) -> None:
        self.authority = authority
        self.subject = subject
        self.rate_limit = rate_limit
        self.enclave = TeeEnclave(
            world, authority, name=f"Client TEE ({subject})", code=self.CODE
        )
        self._counter = 0
        self._window = 0

    def new_window(self) -> None:
        self._window += 1
        self._counter = 0

    def rate_proof(self) -> Optional[RateProof]:
        """Increment the private counter; prove we are under the limit.

        Returns ``None`` once the window's budget is exhausted -- the
        enclave refuses to over-attest, which is the whole point of
        keeping the counter in hardware-protected state.
        """
        if self._counter >= self.rate_limit:
            return None
        self._counter += 1
        # The enclave observes its own private state (it is the only
        # entity that ever does): the counter is the user's data.
        self.enclave.entity.observe(
            LabeledValue(
                payload=self._counter,
                label=SENSITIVE_DATA,
                subject=self.subject,
                description="rate counter",
            ),
            channel="enclave-state",
            session=f"window-{self._window}",
        )
        proof_id = f"rate-proof-{next(_proof_ids)}"
        binding = sha256(
            proof_id.encode(), self._window.to_bytes(4, "big"), self.enclave.measurement
        )
        # The vendor-certified enclave key signs the freshness binding;
        # modeled with the authority key for brevity (one signature
        # chain instead of two).
        signature = self.authority._key.sign(binding)
        return RateProof(
            proof_id=proof_id,
            window=self._window,
            counter_below=self.rate_limit,
            measurement=self.enclave.measurement,
            quote_signature=self.enclave.quote.signature,
            proof_signature=signature,
        )


@dataclass(frozen=True)
class _CactiRequest:
    proof: RateProof
    proof_handle: LabeledValue  # △: an unlinkable proof id
    request: LabeledValue  # ●: what the client actually wants


class CactiOrigin:
    """An origin gating service on attested rate proofs."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        vendor_key: RsaPublicKey,
        expected_measurement: bytes,
    ) -> None:
        self.vendor_key = vendor_key
        self.expected_measurement = expected_measurement
        self.host: SimHost = network.add_host("cacti-origin", entity)
        self.host.register(CACTI_PROTOCOL, self._handle)
        self.served = 0
        self.rejected = 0
        self._seen_proofs: set = set()

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> str:
        request: _CactiRequest = packet.payload
        proof = request.proof
        binding = sha256(
            proof.proof_id.encode(),
            proof.window.to_bytes(4, "big"),
            proof.measurement,
        )
        valid = (
            proof.measurement == self.expected_measurement
            and self.vendor_key.verify(binding, proof.proof_signature)
            and proof.proof_id not in self._seen_proofs
        )
        if not valid:
            self.rejected += 1
            return "rejected"
        self._seen_proofs.add(proof.proof_id)
        self.served += 1
        return "served"


def request_via_cacti(
    host: SimHost,
    tee: CactiTee,
    origin: CactiOrigin,
    request_text: str,
) -> str:
    """One gated request: enclave proof + anonymous delivery."""
    proof = tee.rate_proof()
    if proof is None:
        return "rate limited by enclave"
    request = LabeledValue(
        payload=request_text,
        label=SENSITIVE_DATA,
        subject=tee.subject,
        description="gated request",
    )
    host.entity.observe(request, channel="self", session="self")
    handle = LabeledValue(
        payload=proof.proof_id,
        label=NONSENSITIVE_IDENTITY,
        subject=tee.subject,
        description="rate proof id",
        provenance=("counter", "attest"),
    )
    return host.transact(
        origin.address,
        _CactiRequest(proof=proof, proof_handle=handle, request=request),
        CACTI_PROTOCOL,
    )
