"""TEE scenarios (paper section 4.3): CACTI and Phoenix runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.http.messages import make_request
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    anonymized_identity,
    client_ip_identity,
    register,
    run_scenario,
)

from .cacti import CactiOrigin, CactiTee, request_via_cacti
from .enclave import AttestationAuthority
from .phoenix import PhoenixClient, PhoenixPop

__all__ = [
    "TeeRun",
    "run_cacti",
    "run_phoenix",
    "EXPECTED_TABLE_CACTI",
    "EXPECTED_TABLE_PHOENIX",
]

#: Our derived expectation for CACTI (not printed in the paper, which
#: only describes the system; the shape mirrors Privacy Pass with the
#: issuer replaced by client-local attested state).
EXPECTED_TABLE_CACTI: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Origin": "(△, ●)",
}

#: Our derived expectation for Phoenix: the CDN operator is a pure
#: conduit; only the attested enclave couples (which is the point --
#: trusting it means trusting the hardware vendor).
EXPECTED_TABLE_PHOENIX: Dict[str, str] = {
    "Client": "(▲, ●)",
    "CDN Operator": "(▲, ⊙)",
    "CDN Enclave": "(▲, ●)",
}


@dataclass
class TeeRun(ScenarioRun):
    variant: str = ""
    table_entities: List[str] = None  # type: ignore[assignment]
    served: int = 0

    @property
    def table_title(self) -> str:
        return f"TEE: {self.variant}"


class CactiProgram(ScenarioProgram):
    """Gated requests with client-side attested rate proofs."""

    def build(self) -> None:
        authority = AttestationAuthority(rng=self.rng)
        self.subject = Subject("alice")

        client_entity = self.world.entity("Client", "client-device", trusted_by_user=True)
        origin_entity = self.world.entity("Origin", "origin-org")
        self.tee = CactiTee(
            self.world, authority, self.subject, rate_limit=self.param("rate_limit")
        )
        self.origin = CactiOrigin(
            self.network,
            origin_entity,
            vendor_key=authority.public_key,
            expected_measurement=self.tee.enclave.measurement,
        )
        # Requests ride an anonymized channel, as with Privacy Pass.
        anonymized = anonymized_identity(
            self.subject, payload="anonymized-exit", provenance=()
        )
        client_entity.observe(
            client_ip_identity(self.subject, "198.51.100.4"),
            channel="self",
            session="self",
        )
        self.host = self.network.add_host(
            "cacti-client", client_entity, identity=anonymized
        )

    def drive(self) -> None:
        self.served = 0
        for index in range(self.param("requests")):
            outcome = request_via_cacti(
                self.host, self.tee, self.origin, f"GET /gated/{index}"
            )
            self.served += int(outcome == "served")

    def analyze(self) -> TeeRun:
        return TeeRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            variant="CACTI",
            table_entities=["Client", "Origin"],
            served=self.served,
        )


class PhoenixProgram(ScenarioProgram):
    """Keyless-CDN fetches through an attested enclave."""

    def build(self) -> None:
        authority = AttestationAuthority(rng=self.rng)
        self.subject = Subject("alice")

        client_entity = self.world.entity("Client", "client-device", trusted_by_user=True)
        operator_entity = self.world.entity("CDN Operator", "cdn-operator")
        pop = PhoenixPop(self.world, self.network, operator_entity, authority)

        identity = client_ip_identity(self.subject, "198.51.100.5")
        client_entity.observe(identity, channel="self", session="self")
        host = self.network.add_host("phoenix-client", client_entity, identity=identity)
        self.client = PhoenixClient(host, pop, authority.public_key, self.subject)

    def drive(self) -> None:
        self.served = 0
        for index in range(self.param("requests")):
            response = self.client.fetch(
                make_request("cdn.example", f"/asset/{index % 2}", self.subject)
            )
            self.served += int(response.ok)

    def analyze(self) -> TeeRun:
        return TeeRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            variant="Phoenix keyless CDN",
            table_entities=["Client", "CDN Operator", "CDN Enclave"],
            served=self.served,
        )


register(
    ScenarioSpec(
        id="cacti",
        title="CACTI (4.3, extension)",
        program=CactiProgram,
        params=(
            Param("requests", 3, "gated requests issued"),
            Param("rate_limit", 5, "enclave rate-proof limit"),
            Param("seed", 20221114, "per-run RNG seed (None: system entropy)"),
        ),
        expected=EXPECTED_TABLE_CACTI,
        entities=("Client", "Origin"),
        table_constant="EXPECTED_TABLE_CACTI",
        experiment_id="E1a",
        order=110.0,
    )
)

register(
    ScenarioSpec(
        id="phoenix",
        title="Phoenix keyless CDN (4.3, extension)",
        program=PhoenixProgram,
        params=(
            Param("requests", 4, "CDN asset fetches"),
            Param("seed", 20221114, "per-run RNG seed (None: system entropy)"),
        ),
        expected=EXPECTED_TABLE_PHOENIX,
        entities=("Client", "CDN Operator", "CDN Enclave"),
        table_constant="EXPECTED_TABLE_PHOENIX",
        experiment_id="E1b",
        order=111.0,
    )
)


def run_cacti(requests: int = 3, rate_limit: int = 5, seed: int = 20221114) -> TeeRun:
    """Gated requests with client-side attested rate proofs."""
    return run_scenario("cacti", requests=requests, rate_limit=rate_limit, seed=seed)


def run_phoenix(requests: int = 4, seed: int = 20221114) -> TeeRun:
    """Keyless-CDN fetches through an attested enclave."""
    return run_scenario("phoenix", requests=requests, seed=seed)
