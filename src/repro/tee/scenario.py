"""TEE scenarios (paper section 4.3): CACTI and Phoenix runs."""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import NONSENSITIVE_IDENTITY, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.http.messages import make_request
from repro.net.network import Network

from .cacti import CactiOrigin, CactiTee, request_via_cacti
from .enclave import AttestationAuthority
from .phoenix import PhoenixClient, PhoenixPop

__all__ = [
    "TeeRun",
    "run_cacti",
    "run_phoenix",
    "EXPECTED_TABLE_CACTI",
    "EXPECTED_TABLE_PHOENIX",
]

#: Our derived expectation for CACTI (not printed in the paper, which
#: only describes the system; the shape mirrors Privacy Pass with the
#: issuer replaced by client-local attested state).
EXPECTED_TABLE_CACTI: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Origin": "(△, ●)",
}

#: Our derived expectation for Phoenix: the CDN operator is a pure
#: conduit; only the attested enclave couples (which is the point --
#: trusting it means trusting the hardware vendor).
EXPECTED_TABLE_PHOENIX: Dict[str, str] = {
    "Client": "(▲, ●)",
    "CDN Operator": "(▲, ⊙)",
    "CDN Enclave": "(▲, ●)",
}


@dataclass
class TeeRun:
    world: World
    network: Network
    analyzer: DecouplingAnalyzer
    variant: str
    table_entities: List[str]
    served: int

    def table(self):
        return self.analyzer.table(
            entities=self.table_entities, title=f"TEE: {self.variant}"
        )


def run_cacti(requests: int = 3, rate_limit: int = 5, seed: int = 20221114) -> TeeRun:
    """Gated requests with client-side attested rate proofs."""
    rng = _random.Random(seed)
    world = World()
    network = Network()
    authority = AttestationAuthority(rng=rng)
    subject = Subject("alice")

    client_entity = world.entity("Client", "client-device", trusted_by_user=True)
    origin_entity = world.entity("Origin", "origin-org")
    tee = CactiTee(world, authority, subject, rate_limit=rate_limit)
    origin = CactiOrigin(
        network,
        origin_entity,
        vendor_key=authority.public_key,
        expected_measurement=tee.enclave.measurement,
    )
    # Requests ride an anonymized channel, as with Privacy Pass.
    anonymized = LabeledValue(
        "anonymized-exit", NONSENSITIVE_IDENTITY, subject, "anonymized network identity"
    )
    client_entity.observe(
        LabeledValue("198.51.100.4", SENSITIVE_IDENTITY, subject, "client ip"),
        channel="self",
        session="self",
    )
    host = network.add_host("cacti-client", client_entity, identity=anonymized)

    served = 0
    for index in range(requests):
        outcome = request_via_cacti(host, tee, origin, f"GET /gated/{index}")
        served += int(outcome == "served")
    network.run()
    return TeeRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="CACTI",
        table_entities=["Client", "Origin"],
        served=served,
    )


def run_phoenix(requests: int = 4, seed: int = 20221114) -> TeeRun:
    """Keyless-CDN fetches through an attested enclave."""
    rng = _random.Random(seed)
    world = World()
    network = Network()
    authority = AttestationAuthority(rng=rng)
    subject = Subject("alice")

    client_entity = world.entity("Client", "client-device", trusted_by_user=True)
    operator_entity = world.entity("CDN Operator", "cdn-operator")
    pop = PhoenixPop(world, network, operator_entity, authority)

    identity = LabeledValue("198.51.100.5", SENSITIVE_IDENTITY, subject, "client ip")
    client_entity.observe(identity, channel="self", session="self")
    host = network.add_host("phoenix-client", client_entity, identity=identity)
    client = PhoenixClient(host, pop, authority.public_key, subject)

    served = 0
    for index in range(requests):
        response = client.fetch(
            make_request("cdn.example", f"/asset/{index % 2}", subject)
        )
        served += int(response.ok)
    network.run()
    return TeeRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="Phoenix keyless CDN",
        table_entities=["Client", "CDN Operator", "CDN Enclave"],
        served=served,
    )
