"""Trusted Execution Environments: CACTI and Phoenix (section 4.3)."""

from .cacti import CACTI_PROTOCOL, CactiOrigin, CactiTee, RateProof, request_via_cacti
from .enclave import AttestationAuthority, AttestationQuote, TeeEnclave
from .phoenix import PHOENIX_PROTOCOL, PhoenixClient, PhoenixPop
from .scenario import (
    EXPECTED_TABLE_CACTI,
    EXPECTED_TABLE_PHOENIX,
    TeeRun,
    run_cacti,
    run_phoenix,
)

__all__ = [
    "AttestationAuthority",
    "AttestationQuote",
    "TeeEnclave",
    "CactiTee",
    "CactiOrigin",
    "RateProof",
    "request_via_cacti",
    "CACTI_PROTOCOL",
    "PhoenixPop",
    "PhoenixClient",
    "PHOENIX_PROTOCOL",
    "TeeRun",
    "run_cacti",
    "run_phoenix",
    "EXPECTED_TABLE_CACTI",
    "EXPECTED_TABLE_PHOENIX",
]
