"""The non-private baselines for aggregate statistics (section 3.2.5).

*Naive*: clients send raw values to one collection server, which sees
identity and data together.

*OHTTP-proxied*: clients seal reports to the collector and send them
through an oblivious relay.  The collector no longer sees who reported
-- an improvement -- but still sees every *individual* value, which is
the paper's argument for going all the way to Prio/PPM.
"""

from __future__ import annotations


from typing import List

from repro.core.entities import Entity
from repro.core.labels import SENSITIVE_DATA, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Sealed, Subject
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["NaiveCollector", "OhttpRelay", "ReportingClient", "REPORT_PROTOCOL", "OHTTP_PROTOCOL"]

REPORT_PROTOCOL = "stats-report"
OHTTP_PROTOCOL = "stats-ohttp"


class NaiveCollector:
    """A single server that both collects and aggregates."""

    def __init__(self, network: Network, entity: Entity, name: str = "collector") -> None:
        self.entity = entity
        self.key_id = f"collector:{name}"
        entity.grant_key(self.key_id)
        self.host: SimHost = network.add_host(name, entity)
        self.host.register(REPORT_PROTOCOL, self._handle_plain)
        self.host.register(OHTTP_PROTOCOL + ":in", self._handle_sealed)
        self.values: List[int] = []

    @property
    def address(self) -> Address:
        return self.host.address

    def _record(self, value: LabeledValue) -> str:
        self.values.append(int(value.payload))
        return "accepted"

    def _handle_plain(self, packet: Packet) -> str:
        return self._record(packet.payload)

    def _handle_sealed(self, packet: Packet) -> str:
        sealed: Sealed = packet.payload
        (value,) = self.entity.unseal(sealed)
        return self._record(value)

    def total(self) -> int:
        return sum(self.values)


class OhttpRelay:
    """Forwards sealed reports; sees who reports but never what."""

    def __init__(
        self, network: Network, entity: Entity, collector: NaiveCollector
    ) -> None:
        self.collector = collector
        self.host: SimHost = network.add_host("ohttp-relay", entity)
        self.host.register(OHTTP_PROTOCOL, self._handle)
        self.relayed = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> str:
        self.relayed += 1
        return self.host.transact(
            self.collector.address, packet.payload, OHTTP_PROTOCOL + ":in"
        )


class ReportingClient:
    """A client for both baseline flows."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        subject: Subject,
        client_ip: str,
    ) -> None:
        self.entity = entity
        self.subject = subject
        self.identity = LabeledValue(
            payload=client_ip,
            label=SENSITIVE_IDENTITY,
            subject=subject,
            description="client ip",
        )
        self.host: SimHost = network.add_host(
            f"stats-client:{subject}", entity, identity=self.identity
        )

    def _measurement(self, value: int) -> LabeledValue:
        measurement = LabeledValue(
            payload=value,
            label=SENSITIVE_DATA,
            subject=self.subject,
            description="telemetry bit",
        )
        self.entity.observe(
            [self.identity, measurement], channel="self", session="self"
        )
        return measurement

    def submit_naive(self, value: int, collector: NaiveCollector) -> str:
        """Send the raw value straight to the collection server."""
        return self.host.transact(
            collector.address, self._measurement(value), REPORT_PROTOCOL
        )

    def submit_via_ohttp(self, value: int, relay: OhttpRelay) -> str:
        """Seal to the collector, send through the oblivious relay."""
        sealed = Sealed.wrap(
            relay.collector.key_id,
            [self._measurement(value)],
            subject=self.subject,
            description="sealed telemetry report",
        )
        return self.host.transact(relay.address, sealed, OHTTP_PROTOCOL)
