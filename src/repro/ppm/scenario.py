"""The T7 scenarios: naive, OHTTP-proxied, and Prio aggregation."""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.values import Subject
from repro.net.network import Network

from .naive import NaiveCollector, OhttpRelay, ReportingClient
from .prio import PrioAggregator, PrioClient, PrioCollector, COLLECT_PROTOCOL

__all__ = [
    "PpmRun",
    "run_naive_aggregation",
    "run_ohttp_aggregation",
    "run_prio",
    "run_prio_histogram",
    "PAPER_TABLE_T7",
]

#: The paper's section 3.2.5 table, exactly as printed.
PAPER_TABLE_T7: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Aggregator": "(▲, ⊙)",
    "Collector": "(△, ⊙)",
}


@dataclass
class PpmRun:
    """Everything produced by one aggregate-statistics run."""

    world: World
    network: Network
    analyzer: DecouplingAnalyzer
    variant: str
    table_entities: List[str]
    reported_total: int
    true_total: int
    clients: int
    #: Histogram runs: per-bucket (reported, true) series.
    reported_histogram: List[int] = None  # type: ignore[assignment]
    true_histogram: List[int] = None  # type: ignore[assignment]

    def table(self):
        return self.analyzer.table(
            entities=self.table_entities,
            subject=Subject("client-0"),
            title=f"T7: {self.variant}",
        )

    def collector_sees_individual_values(self) -> bool:
        """Did any collector entity observe a per-client sensitive value?"""
        for obs in self.world.ledger.by_entity("Collector"):
            if obs.label.is_data and obs.label.is_sensitive:
                return True
        return False


def _client_bits(clients: int, seed: int) -> List[int]:
    rng = _random.Random(seed)
    return [rng.randrange(2) for _ in range(clients)]


def run_naive_aggregation(clients: int = 5, seed: int = 20221114) -> PpmRun:
    """Baseline: one trusted server sees everything."""
    world = World()
    network = Network()
    collector_entity = world.entity("Collector", "collector-org")
    collector = NaiveCollector(network, collector_entity)
    bits = _client_bits(clients, seed)
    for index, bit in enumerate(bits):
        entity = world.entity(
            "Client" if index == 0 else f"Client {index}",
            f"client-device-{index}",
            trusted_by_user=True,
        )
        client = ReportingClient(
            network, entity, Subject(f"client-{index}"), f"192.0.2.{index + 1}"
        )
        client.submit_naive(bit, collector)
    network.run()
    return PpmRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="naive single server",
        table_entities=["Client", "Collector"],
        reported_total=collector.total(),
        true_total=sum(bits),
        clients=clients,
    )


def run_ohttp_aggregation(clients: int = 5, seed: int = 20221114) -> PpmRun:
    """Intermediate: OHTTP hides identity, not individual values."""
    world = World()
    network = Network()
    collector_entity = world.entity("Collector", "collector-org")
    relay_entity = world.entity("Relay", "relay-org")
    collector = NaiveCollector(network, collector_entity)
    relay = OhttpRelay(network, relay_entity, collector)
    bits = _client_bits(clients, seed)
    for index, bit in enumerate(bits):
        entity = world.entity(
            "Client" if index == 0 else f"Client {index}",
            f"client-device-{index}",
            trusted_by_user=True,
        )
        client = ReportingClient(
            network, entity, Subject(f"client-{index}"), f"192.0.2.{index + 1}"
        )
        client.submit_via_ohttp(bit, relay)
    network.run()
    return PpmRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="OHTTP-proxied single server",
        table_entities=["Client", "Relay", "Collector"],
        reported_total=collector.total(),
        true_total=sum(bits),
        clients=clients,
    )


def run_prio_histogram(
    clients: int = 6,
    aggregators: int = 2,
    buckets: int = 4,
    seed: int = 20221114,
) -> PpmRun:
    """The full PPM/Prio protocol over one-hot histogram reports."""
    if aggregators < 2:
        raise ValueError("prio needs at least two aggregators")
    rng = _random.Random(seed)
    world = World()
    network = Network()

    aggregator_objs: List[PrioAggregator] = []
    for index in range(aggregators):
        entity = world.entity(
            "Aggregator" if index == 0 else f"Aggregator {index + 1}",
            f"aggregator-org-{index + 1}",
        )
        aggregator_objs.append(
            PrioAggregator(network, entity, index=index, total=aggregators)
        )
    collector_entity = world.entity("Collector", "collector-org")
    collector = PrioCollector(network, collector_entity)

    true_histogram = [0] * buckets
    for index in range(clients):
        entity = world.entity(
            "Client" if index == 0 else f"Client {index}",
            f"client-device-{index}",
            trusted_by_user=True,
        )
        client = PrioClient(
            network, entity, Subject(f"client-{index}"),
            f"192.0.2.{index + 1}", rng=rng,
        )
        bucket = rng.randrange(buckets)
        true_histogram[bucket] += 1
        client.submit_histogram(bucket, buckets, aggregator_objs)

    leader, *peers = aggregator_objs
    leader.run_validity_checks(peers)
    leader.run_histogram_checks(peers)
    for aggregator in aggregator_objs:
        aggregator.host.transact(
            collector.address, aggregator.histogram_contribution(), COLLECT_PROTOCOL
        )
    network.run()

    reported = collector.histogram()
    return PpmRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant=f"Prio histogram ({buckets} buckets, {aggregators} aggregators)",
        table_entities=["Client", "Aggregator", "Collector"],
        reported_total=sum(reported),
        true_total=clients,
        clients=clients,
        reported_histogram=reported,
        true_histogram=true_histogram,
    )


def run_prio(
    clients: int = 5,
    aggregators: int = 2,
    seed: int = 20221114,
) -> PpmRun:
    """The full PPM/Prio protocol with ``aggregators`` servers."""
    if aggregators < 2:
        raise ValueError("prio needs at least two aggregators")
    rng = _random.Random(seed)
    world = World()
    network = Network()

    aggregator_objs: List[PrioAggregator] = []
    for index in range(aggregators):
        entity = world.entity(
            "Aggregator" if index == 0 else f"Aggregator {index + 1}",
            f"aggregator-org-{index + 1}",
        )
        aggregator_objs.append(
            PrioAggregator(network, entity, index=index, total=aggregators)
        )
    collector_entity = world.entity("Collector", "collector-org")
    collector = PrioCollector(network, collector_entity)

    bits = _client_bits(clients, seed)
    for index, bit in enumerate(bits):
        entity = world.entity(
            "Client" if index == 0 else f"Client {index}",
            f"client-device-{index}",
            trusted_by_user=True,
        )
        client = PrioClient(
            network,
            entity,
            Subject(f"client-{index}"),
            f"192.0.2.{index + 1}",
            rng=rng,
        )
        client.submit(bit, aggregator_objs)

    leader, *peers = aggregator_objs
    leader.run_validity_checks(peers)
    for aggregator in aggregator_objs:
        aggregator.host.transact(
            collector.address, aggregator.sum_contribution(), COLLECT_PROTOCOL
        )
    network.run()

    return PpmRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant=f"Prio ({aggregators} aggregators)",
        table_entities=["Client", "Aggregator", "Collector"],
        reported_total=collector.total(),
        true_total=sum(bits),
        clients=clients,
    )
