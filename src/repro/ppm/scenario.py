"""The T7 scenarios: naive, OHTTP-proxied, and Prio aggregation."""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    register,
    run_scenario,
)

from .naive import NaiveCollector, OhttpRelay, ReportingClient
from .prio import PrioAggregator, PrioClient, PrioCollector, COLLECT_PROTOCOL

__all__ = [
    "PpmRun",
    "run_naive_aggregation",
    "run_ohttp_aggregation",
    "run_prio",
    "run_prio_histogram",
    "PAPER_TABLE_T7",
]

#: The paper's section 3.2.5 table, exactly as printed.
PAPER_TABLE_T7: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Aggregator": "(▲, ⊙)",
    "Collector": "(△, ⊙)",
}


@dataclass
class PpmRun(ScenarioRun):
    """Everything produced by one aggregate-statistics run."""

    variant: str = ""
    table_entities: List[str] = None  # type: ignore[assignment]
    reported_total: int = 0
    true_total: int = 0
    clients: int = 0
    #: Histogram runs: per-bucket (reported, true) series.
    reported_histogram: List[int] = None  # type: ignore[assignment]
    true_histogram: List[int] = None  # type: ignore[assignment]

    table_subject = Subject("client-0")

    @property
    def table_title(self) -> str:
        return f"T7: {self.variant}"

    def collector_sees_individual_values(self) -> bool:
        """Did any collector entity observe a per-client sensitive value?"""
        for obs in self.world.ledger.by_entity("Collector"):
            if obs.label.is_data and obs.label.is_sensitive:
                return True
        return False


def _client_bits(clients: int, seed: int) -> List[int]:
    rng = _random.Random(seed)
    return [rng.randrange(2) for _ in range(clients)]


def _client_entity(world, index: int):
    return world.entity(
        "Client" if index == 0 else f"Client {index}",
        f"client-device-{index}",
        trusted_by_user=True,
    )


def _client_subject(program: ScenarioProgram, index: int) -> Subject:
    """Client ``index``'s subject: population-engine name, or the
    historical ``client-{index}`` when the run has no engine."""
    names = getattr(program, "_client_names", None)
    if names is None:
        names = program._client_names = program.population_names(
            program.param("clients"), lambda i: f"client-{i}"
        )
    return Subject(names[index])


class NaiveProgram(ScenarioProgram):
    """Baseline: one trusted server sees everything."""

    def build(self) -> None:
        collector_entity = self.world.entity("Collector", "collector-org")
        self.collector = NaiveCollector(self.network, collector_entity)
        self.bits = _client_bits(self.param("clients"), self.param("seed"))

    def drive(self) -> None:
        for index, bit in enumerate(self.bits):
            entity = _client_entity(self.world, index)
            client = ReportingClient(
                self.network, entity, _client_subject(self, index), f"192.0.2.{index + 1}"
            )
            client.submit_naive(bit, self.collector)

    def analyze(self) -> PpmRun:
        return PpmRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            variant="naive single server",
            table_entities=["Client", "Collector"],
            reported_total=self.collector.total(),
            true_total=sum(self.bits),
            clients=self.param("clients"),
        )


class OhttpProgram(ScenarioProgram):
    """Intermediate: OHTTP hides identity, not individual values."""

    def build(self) -> None:
        collector_entity = self.world.entity("Collector", "collector-org")
        relay_entity = self.world.entity("Relay", "relay-org")
        self.collector = NaiveCollector(self.network, collector_entity)
        self.relay = OhttpRelay(self.network, relay_entity, self.collector)
        self.bits = _client_bits(self.param("clients"), self.param("seed"))

    def drive(self) -> None:
        for index, bit in enumerate(self.bits):
            entity = _client_entity(self.world, index)
            client = ReportingClient(
                self.network, entity, _client_subject(self, index), f"192.0.2.{index + 1}"
            )
            client.submit_via_ohttp(bit, self.relay)

    def analyze(self) -> PpmRun:
        return PpmRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            variant="OHTTP-proxied single server",
            table_entities=["Client", "Relay", "Collector"],
            reported_total=self.collector.total(),
            true_total=sum(self.bits),
            clients=self.param("clients"),
        )


class _PrioBase(ScenarioProgram):
    """Shared aggregator/collector topology for the Prio variants."""

    def validate(self) -> None:
        if self.params["aggregators"] < 2:
            raise ValueError("prio needs at least two aggregators")

    def build(self) -> None:
        aggregators = self.param("aggregators")
        self.aggregator_objs: List[PrioAggregator] = []
        for index in range(aggregators):
            entity = self.world.entity(
                "Aggregator" if index == 0 else f"Aggregator {index + 1}",
                f"aggregator-org-{index + 1}",
            )
            self.aggregator_objs.append(
                PrioAggregator(self.network, entity, index=index, total=aggregators)
            )
        collector_entity = self.world.entity("Collector", "collector-org")
        self.collector = PrioCollector(self.network, collector_entity)

    def _client(self, index: int) -> PrioClient:
        entity = _client_entity(self.world, index)
        return PrioClient(
            self.network,
            entity,
            _client_subject(self, index),
            f"192.0.2.{index + 1}",
            rng=self.rng,
        )


class PrioProgram(_PrioBase):
    """The full PPM/Prio protocol with ``aggregators`` servers."""

    def drive(self) -> None:
        self.bits = _client_bits(self.param("clients"), self.param("seed"))
        for index, bit in enumerate(self.bits):
            self._client(index).submit(bit, self.aggregator_objs)

        leader, *peers = self.aggregator_objs
        leader.run_validity_checks(peers)
        for aggregator in self.aggregator_objs:
            aggregator.host.transact(
                self.collector.address, aggregator.sum_contribution(), COLLECT_PROTOCOL
            )

    def analyze(self) -> PpmRun:
        return PpmRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            variant=f"Prio ({self.param('aggregators')} aggregators)",
            table_entities=["Client", "Aggregator", "Collector"],
            reported_total=self.collector.total(),
            true_total=sum(self.bits),
            clients=self.param("clients"),
        )


class PrioHistogramProgram(_PrioBase):
    """The full PPM/Prio protocol over one-hot histogram reports."""

    def drive(self) -> None:
        buckets = self.param("buckets")
        self.true_histogram = [0] * buckets
        for index in range(self.param("clients")):
            client = self._client(index)
            bucket = self.rng.randrange(buckets)
            self.true_histogram[bucket] += 1
            client.submit_histogram(bucket, buckets, self.aggregator_objs)

        leader, *peers = self.aggregator_objs
        leader.run_validity_checks(peers)
        leader.run_histogram_checks(peers)
        for aggregator in self.aggregator_objs:
            aggregator.host.transact(
                self.collector.address,
                aggregator.histogram_contribution(),
                COLLECT_PROTOCOL,
            )

    def analyze(self) -> PpmRun:
        reported = self.collector.histogram()
        buckets = self.param("buckets")
        return PpmRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            variant=(
                f"Prio histogram ({buckets} buckets, "
                f"{self.param('aggregators')} aggregators)"
            ),
            table_entities=["Client", "Aggregator", "Collector"],
            reported_total=sum(reported),
            true_total=self.param("clients"),
            clients=self.param("clients"),
            reported_histogram=reported,
            true_histogram=self.true_histogram,
        )


_SEED_PARAM = Param("seed", 20221114, "per-run RNG seed (None: system entropy)")

register(
    ScenarioSpec(
        id="prio",
        title="Private aggregate statistics -- Prio (3.2.5)",
        program=PrioProgram,
        params=(
            Param("clients", 5, "reporting clients"),
            Param("aggregators", 2, "non-colluding aggregator servers"),
            _SEED_PARAM,
        ),
        expected=PAPER_TABLE_T7,
        entities=("Client", "Aggregator", "Collector"),
        table_constant="PAPER_TABLE_T7",
        experiment_id="T7",
        order=70.0,
    )
)

register(
    ScenarioSpec(
        id="ppm-naive",
        title="Aggregate statistics, naive baseline (3.2.5)",
        program=NaiveProgram,
        params=(Param("clients", 5, "reporting clients"), _SEED_PARAM),
        entities=("Client", "Collector"),
        order=71.0,
    )
)

register(
    ScenarioSpec(
        id="ppm-ohttp",
        title="Aggregate statistics over OHTTP (3.2.5)",
        program=OhttpProgram,
        params=(Param("clients", 5, "reporting clients"), _SEED_PARAM),
        entities=("Client", "Relay", "Collector"),
        order=72.0,
    )
)

register(
    ScenarioSpec(
        id="prio-histogram",
        title="Prio over one-hot histograms (3.2.5)",
        program=PrioHistogramProgram,
        params=(
            Param("clients", 6, "reporting clients"),
            Param("aggregators", 2, "non-colluding aggregator servers"),
            Param("buckets", 4, "histogram buckets"),
            _SEED_PARAM,
        ),
        entities=("Client", "Aggregator", "Collector"),
        order=73.0,
    )
)


def run_naive_aggregation(clients: int = 5, seed: int = 20221114) -> PpmRun:
    """Baseline: one trusted server sees everything."""
    return run_scenario("ppm-naive", clients=clients, seed=seed)


def run_ohttp_aggregation(clients: int = 5, seed: int = 20221114) -> PpmRun:
    """Intermediate: OHTTP hides identity, not individual values."""
    return run_scenario("ppm-ohttp", clients=clients, seed=seed)


def run_prio(
    clients: int = 5,
    aggregators: int = 2,
    seed: int = 20221114,
) -> PpmRun:
    """The full PPM/Prio protocol with ``aggregators`` servers."""
    return run_scenario("prio", clients=clients, aggregators=aggregators, seed=seed)


def run_prio_histogram(
    clients: int = 6,
    aggregators: int = 2,
    buckets: int = 4,
    seed: int = 20221114,
) -> PpmRun:
    """The full PPM/Prio protocol over one-hot histogram reports."""
    return run_scenario(
        "prio-histogram",
        clients=clients,
        aggregators=aggregators,
        buckets=buckets,
        seed=seed,
    )
