"""Prio-style private aggregate statistics (paper section 3.2.5).

Clients hold a sensitive boolean (did the app crash? is the user in a
cohort?).  Each client additively shares the bit across ``N``
aggregators along with Beaver-triple material proving the bit is 0/1.
Aggregators run the multiplication-check exchange (everything they
exchange is uniformly random masking), then each sums its shares of all
*valid* reports; the collector combines the per-aggregator sums into
the public total and never sees an individual contribution.

Privacy: any proper subset of aggregators holds only uniform field
elements; the ledger marks each share with its
:class:`~repro.core.values.ShareInfo` so the analyzer can show that
*only* a coalition of all aggregators re-couples.
"""

from __future__ import annotations

import itertools
import random as _random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.entities import Entity
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import Aggregate, LabeledValue, ShareInfo, Subject
from repro.crypto.secretshare import (
    FIELD_PRIME,
    BooleanValidityProof,
    HistogramProof,
    make_histogram_proof,
    make_boolean_proof,
)
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = [
    "PrioAggregator",
    "PrioCollector",
    "PrioClient",
    "UPLOAD_PROTOCOL",
    "MPC_PROTOCOL",
    "COLLECT_PROTOCOL",
]

UPLOAD_PROTOCOL = "ppm-upload"
MPC_PROTOCOL = "ppm-mpc"
COLLECT_PROTOCOL = "ppm-collect"

_report_ids = itertools.count(1)


@dataclass(frozen=True)
class _ReportShare:
    """What one aggregator receives from one client."""

    report_id: LabeledValue  # pseudonymous handle shared by all shares
    x_share: LabeledValue  # the input share (⊙, with ShareInfo)
    proof: BooleanValidityProof


@dataclass(frozen=True)
class _MaskedOpening:
    """Beaver-check traffic: uniformly random masked values."""

    report: str
    d_share: int
    e_share: int


@dataclass(frozen=True)
class _ProductShare:
    report: str
    z_share: int


@dataclass(frozen=True)
class _SumContribution:
    """An aggregator's share of the final sum (safe to publish)."""

    aggregate: Aggregate
    valid_reports: int


@dataclass(frozen=True)
class _HistogramShare:
    """What one aggregator receives for one histogram report."""

    report_id: LabeledValue
    entry_shares: Tuple[LabeledValue, ...]  # one ⊙ share per bucket
    proof: HistogramProof


@dataclass(frozen=True)
class _HistogramContribution:
    """An aggregator's per-bucket sum shares (safe to publish)."""

    aggregates: Tuple[Aggregate, ...]  # one per bucket
    valid_reports: int


class PrioAggregator:
    """One of N mutually distrusting aggregation servers."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        index: int,
        total: int,
        name: Optional[str] = None,
    ) -> None:
        self.entity = entity
        self.index = index
        self.total = total
        self.host: SimHost = network.add_host(
            name or f"aggregator-{index}", entity
        )
        self.host.register(UPLOAD_PROTOCOL, self._handle_upload)
        self.host.register(UPLOAD_PROTOCOL + "-hist", self._handle_upload_hist)
        self.host.register(MPC_PROTOCOL, self._handle_mpc)
        self._reports: Dict[str, _ReportShare] = {}
        self._hist_reports: Dict[str, _HistogramShare] = {}
        self._validity: Dict[str, bool] = {}
        self._hist_validity: Dict[str, bool] = {}
        self.leader_address: Optional[Address] = None
        # Leader-only state for the Beaver exchange.
        self._openings: Dict[str, List[_MaskedOpening]] = {}
        self._products: Dict[str, List[int]] = {}
        self._hist_sums: Dict[str, List[int]] = {}

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle_upload(self, packet: Packet) -> str:
        share: _ReportShare = packet.payload
        report = str(share.report_id.payload)
        self._reports[report] = share
        return "accepted"

    def _handle_upload_hist(self, packet: Packet) -> str:
        """A histogram report: register each entry as a virtual scalar
        report so the Beaver machinery covers it unchanged."""
        share: _HistogramShare = packet.payload
        report = str(share.report_id.payload)
        self._hist_reports[report] = share
        for index, (entry_value, entry_proof) in enumerate(
            zip(share.entry_shares, share.proof.entries)
        ):
            self._reports[f"{report}#e{index}"] = _ReportShare(
                report_id=share.report_id.derived(
                    f"{report}#e{index}", step="entry"
                ),
                x_share=entry_value,
                proof=entry_proof,
            )
        return "accepted"

    # ------------------------------------------------------------------
    # Beaver multiplication check (leader-coordinated)
    # ------------------------------------------------------------------

    def open_masked(self, report: str) -> _MaskedOpening:
        """This aggregator's (d, e) shares: uniform, safe to reveal."""
        share = self._reports[report]
        proof = share.proof
        d_share = (proof.x_share - proof.triple.a) % FIELD_PRIME
        e_share = (proof.x_minus_one_share - proof.triple.b) % FIELD_PRIME
        return _MaskedOpening(report=report, d_share=d_share, e_share=e_share)

    def product_share(self, report: str, d: int, e: int, is_first: bool) -> int:
        """This aggregator's share of x(x-1), given the opened d and e."""
        proof = self._reports[report].proof
        z = (d * proof.triple.b + e * proof.triple.a + proof.triple.c) % FIELD_PRIME
        if is_first:
            z = (z + d * e) % FIELD_PRIME
        return z

    def _handle_mpc(self, packet: Packet) -> object:
        """Leader side of the exchange (this aggregator is index 0)."""
        kind, payload = packet.payload
        if kind == "opening":
            opening: _MaskedOpening = payload
            self._openings.setdefault(opening.report, []).append(opening)
            return ("ok", None)
        if kind == "product":
            product: _ProductShare = payload
            self._products.setdefault(product.report, []).append(product.z_share)
            return ("ok", None)
        if kind == "histsum":
            report, sum_share = payload
            self._hist_sums.setdefault(report, []).append(sum_share)
            return ("ok", None)
        raise ValueError(f"unknown mpc message kind {kind!r}")

    def run_validity_checks(self, peers: Sequence["PrioAggregator"]) -> None:
        """Leader entry point: coordinate the check for every report.

        ``peers`` are the *other* aggregators.  All traffic goes over
        the simulated network; only masked/uniform values travel.
        """
        if self.index != 0:
            raise RuntimeError("only the leader coordinates validity checks")
        for report in sorted(self._reports):
            mine = self.open_masked(report)
            openings = [mine]
            for peer in peers:
                reply = peer.host.transact(
                    self.address, ("opening", peer.open_masked(report)), MPC_PROTOCOL
                )
                del reply  # leader stores via its handler
            openings.extend(self._openings.get(report, []))
            d = sum(o.d_share for o in openings) % FIELD_PRIME
            e = sum(o.e_share for o in openings) % FIELD_PRIME
            z_total = self.product_share(report, d, e, is_first=True)
            for peer in peers:
                z_peer = peer.product_share(report, d, e, is_first=False)
                peer.host.send(
                    self.address, ("product", _ProductShare(report, z_peer)), MPC_PROTOCOL
                )
            self.host.network.run()
            z_total = (
                z_total + sum(self._products.get(report, []))
            ) % FIELD_PRIME
            valid = z_total == 0
            self._validity[report] = valid
            for peer in peers:
                peer._validity[report] = valid

    # ------------------------------------------------------------------
    # Histogram validity (leader-coordinated)
    # ------------------------------------------------------------------

    def histogram_sum_share(self, report: str) -> int:
        """This aggregator's share of sum(entries): publishable."""
        return self._hist_reports[report].proof.entry_share_sum()

    def run_histogram_checks(self, peers: Sequence["PrioAggregator"]) -> None:
        """Leader entry point: per-entry Beaver checks + one-hot sums.

        Assumes :meth:`run_validity_checks` already ran (it covers the
        virtual per-entry reports); this adds the sum-to-one check via
        published (masked-irrelevant: shares of a public constant)
        sum shares.
        """
        if self.index != 0:
            raise RuntimeError("only the leader coordinates validity checks")
        for report in sorted(self._hist_reports):
            share = self._hist_reports[report]
            entries_ok = all(
                self._validity.get(f"{report}#e{index}", False)
                for index in range(len(share.entry_shares))
            )
            for peer in peers:
                peer.host.send(
                    self.address,
                    ("histsum", (report, peer.histogram_sum_share(report))),
                    MPC_PROTOCOL,
                )
            self.host.network.run()
            total = (
                self.histogram_sum_share(report)
                + sum(self._hist_sums.get(report, []))
            ) % FIELD_PRIME
            valid = entries_ok and total == 1
            self._hist_validity[report] = valid
            for peer in peers:
                peer._hist_validity[report] = valid

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def sum_contribution(self) -> _SumContribution:
        """Sum this aggregator's shares over all valid scalar reports."""
        total = 0
        contributors: List[Subject] = []
        provenance: tuple = ()
        for report, share in sorted(self._reports.items()):
            if "#e" in report:
                continue  # histogram entries aggregate separately
            if not self._validity.get(report, False):
                continue
            total = (total + int(share.x_share.payload)) % FIELD_PRIME
            if not contributors:
                provenance = share.x_share.provenance
            contributors.append(share.x_share.subject)
        return _SumContribution(
            aggregate=Aggregate(
                payload=total,
                contributors=tuple(contributors),
                description=f"sum share from aggregator {self.index}",
                provenance=provenance,
            ),
            valid_reports=len(contributors),
        )

    def histogram_contribution(self) -> _HistogramContribution:
        """Per-bucket sums over all valid histogram reports."""
        if not self._hist_reports:
            return _HistogramContribution(aggregates=(), valid_reports=0)
        buckets = len(next(iter(self._hist_reports.values())).entry_shares)
        totals = [0] * buckets
        contributors: List[Subject] = []
        provenance: tuple = ()
        for report, share in sorted(self._hist_reports.items()):
            if not self._hist_validity.get(report, False):
                continue
            for index, entry in enumerate(share.entry_shares):
                totals[index] = (totals[index] + int(entry.payload)) % FIELD_PRIME
            if not contributors and share.entry_shares:
                provenance = share.entry_shares[0].provenance
            contributors.append(share.report_id.subject)
        return _HistogramContribution(
            aggregates=tuple(
                Aggregate(
                    payload=totals[index],
                    contributors=tuple(contributors),
                    description=f"bucket {index} share from aggregator {self.index}",
                    provenance=provenance,
                )
                for index in range(buckets)
            ),
            valid_reports=len(contributors),
        )


class PrioCollector:
    """Combines per-aggregator sums into the public total."""

    def __init__(self, network: Network, entity: Entity) -> None:
        self.entity = entity
        self.host: SimHost = network.add_host("collector", entity)
        self.host.register(COLLECT_PROTOCOL, self._handle)
        self._contributions: List[_SumContribution] = []
        self._hist_contributions: List[_HistogramContribution] = []

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> str:
        payload = packet.payload
        if isinstance(payload, _HistogramContribution):
            self._hist_contributions.append(payload)
        else:
            self._contributions.append(payload)
        return "received"

    def total(self) -> int:
        return sum(
            int(c.aggregate.payload) for c in self._contributions
        ) % FIELD_PRIME

    def histogram(self) -> List[int]:
        """The combined per-bucket totals."""
        if not self._hist_contributions:
            return []
        buckets = len(self._hist_contributions[0].aggregates)
        return [
            sum(
                int(c.aggregates[index].payload)
                for c in self._hist_contributions
            )
            % FIELD_PRIME
            for index in range(buckets)
        ]

    @property
    def reports_counted(self) -> int:
        return min(
            (c.valid_reports for c in self._contributions), default=0
        )


class PrioClient:
    """A reporting client: shares its bit, uploads to each aggregator."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        subject: Subject,
        client_ip: str,
        rng: Optional[_random.Random] = None,
    ) -> None:
        self.entity = entity
        self.subject = subject
        self.rng = rng
        self.identity = LabeledValue(
            payload=client_ip,
            label=SENSITIVE_IDENTITY,
            subject=subject,
            description="client ip",
        )
        self.host: SimHost = network.add_host(
            f"ppm-client:{subject}", entity, identity=self.identity
        )

    def submit(self, value: int, aggregators: Sequence[PrioAggregator]) -> str:
        """Share ``value`` (0 or 1) across ``aggregators``."""
        if value not in (0, 1):
            raise ValueError("prio boolean reports must be 0 or 1")
        n = len(aggregators)
        measurement = LabeledValue(
            payload=value,
            label=SENSITIVE_DATA,
            subject=self.subject,
            description="telemetry bit",
        )
        self.entity.observe([self.identity, measurement], channel="self", session="self")
        report = f"report-{next(_report_ids)}"
        group = f"shares:{report}"
        proofs = make_boolean_proof(value, n, rng=self.rng)
        for index, (aggregator, proof) in enumerate(zip(aggregators, proofs)):
            share_value = LabeledValue(
                payload=proof.x_share,
                label=NONSENSITIVE_DATA,
                subject=self.subject,
                description="input share",
                provenance=("measurement", "share"),
                share_info=ShareInfo(group=group, index=index, total=n),
            )
            report_id = LabeledValue(
                payload=report,
                label=NONSENSITIVE_IDENTITY,
                subject=self.subject,
                description="report id",
                provenance=("report-id",),
            )
            self.host.transact(
                aggregator.address,
                _ReportShare(report_id=report_id, x_share=share_value, proof=proof),
                UPLOAD_PROTOCOL,
            )
        return report

    def submit_histogram(
        self, bucket: int, buckets: int, aggregators: Sequence[PrioAggregator]
    ) -> str:
        """Share a one-hot histogram report (bucket membership).

        The client's bucket is sensitive data; each aggregator receives
        a vector of uniform shares plus validity material.
        """
        n = len(aggregators)
        measurement = LabeledValue(
            payload=bucket,
            label=SENSITIVE_DATA,
            subject=self.subject,
            description="histogram bucket",
        )
        self.entity.observe(
            [self.identity, measurement], channel="self", session="self"
        )
        report = f"report-{next(_report_ids)}"
        group = f"shares:{report}"
        proofs = make_histogram_proof(bucket, buckets, n, rng=self.rng)
        for index, (aggregator, proof) in enumerate(zip(aggregators, proofs)):
            entry_shares = tuple(
                LabeledValue(
                    payload=entry.x_share,
                    label=NONSENSITIVE_DATA,
                    subject=self.subject,
                    description=f"histogram entry share {j}",
                    provenance=("measurement", "share"),
                    share_info=ShareInfo(
                        group=f"{group}#e{j}", index=index, total=n
                    ),
                )
                for j, entry in enumerate(proof.entries)
            )
            report_id = LabeledValue(
                payload=report,
                label=NONSENSITIVE_IDENTITY,
                subject=self.subject,
                description="report id",
                provenance=("report-id",),
            )
            self.host.transact(
                aggregator.address,
                _HistogramShare(
                    report_id=report_id, entry_shares=entry_shares, proof=proof
                ),
                UPLOAD_PROTOCOL + "-hist",
            )
        return report
