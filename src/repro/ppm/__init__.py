"""Private aggregate statistics: naive, OHTTP, and Prio (section 3.2.5)."""

from .naive import (
    NaiveCollector,
    OHTTP_PROTOCOL,
    OhttpRelay,
    REPORT_PROTOCOL,
    ReportingClient,
)
from .prio import (
    COLLECT_PROTOCOL,
    MPC_PROTOCOL,
    PrioAggregator,
    PrioClient,
    PrioCollector,
    UPLOAD_PROTOCOL,
)
from .scenario import (
    PAPER_TABLE_T7,
    PpmRun,
    run_naive_aggregation,
    run_ohttp_aggregation,
    run_prio,
    run_prio_histogram,
)

__all__ = [
    "NaiveCollector",
    "OhttpRelay",
    "ReportingClient",
    "REPORT_PROTOCOL",
    "OHTTP_PROTOCOL",
    "PrioAggregator",
    "PrioClient",
    "PrioCollector",
    "UPLOAD_PROTOCOL",
    "MPC_PROTOCOL",
    "COLLECT_PROTOCOL",
    "PpmRun",
    "run_naive_aggregation",
    "run_ohttp_aggregation",
    "run_prio",
    "run_prio_histogram",
    "PAPER_TABLE_T7",
]
