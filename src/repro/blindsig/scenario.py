"""The T1 scenario: digital cash end to end, plus the paper's table.

Running :func:`run_digital_cash` executes withdrawals, purchases, and
deposits over the simulated network and returns everything a test or
benchmark needs: the world (hence the ledger), the analyzer, and the
paper's expected knowledge table for comparison.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.values import Subject
from repro.net.network import Network

from .cash import Bank, Buyer, Seller

__all__ = ["DigitalCashRun", "run_digital_cash", "PAPER_TABLE_T1"]

#: The paper's section 3.1.1 table, exactly as printed.
PAPER_TABLE_T1: Dict[str, str] = {
    "Buyer": "(▲, ●)",
    "Signer (Bank)": "(▲, ⊙)",
    "Verifier (Bank)": "(△, ⊙/●)",
    "Seller": "(△, ●)",
}


@dataclass
class DigitalCashRun:
    """Everything produced by one digital-cash scenario run."""

    world: World
    network: Network
    bank: Bank
    buyer: Buyer
    seller: Seller
    analyzer: DecouplingAnalyzer
    coins_spent: int

    def table(self):
        return self.analyzer.table(
            entities=["Buyer", "Signer (Bank)", "Verifier (Bank)", "Seller"],
            title="T1: blind-signature digital cash",
        )


def run_digital_cash(
    coins: int = 3,
    seed: Optional[int] = 20221114,
    key_bits: int = 512,
    blind_withdrawals: bool = True,
) -> DigitalCashRun:
    """Withdraw and spend ``coins`` coins; return the analyzed run.

    ``blind_withdrawals=False`` runs the ablation: identical protocol
    minus the blinding, so the bank's two roles share a serial and can
    re-couple (the A-series benchmarks quantify this).
    """
    rng = _random.Random(seed) if seed is not None else None
    world = World()
    network = Network()

    buyer_entity = world.entity("Buyer", "buyer-device", trusted_by_user=True)
    signer_entity = world.entity("Signer (Bank)", "bank")
    verifier_entity = world.entity("Verifier (Bank)", "bank")
    seller_entity = world.entity("Seller", "seller")

    bank = Bank(network, signer_entity, verifier_entity, key_bits=key_bits, rng=rng)
    buyer = Buyer(network, buyer_entity, Subject("alice"), "alice-account-7", rng=rng)
    seller = Seller(network, seller_entity, bank)

    spent = 0
    for index in range(coins):
        coin = buyer.withdraw(bank, blind_withdrawal=blind_withdrawals)
        receipt = buyer.pay(seller, coin, f"book #{index}")
        if receipt.accepted:
            spent += 1
    network.run()

    return DigitalCashRun(
        world=world,
        network=network,
        bank=bank,
        buyer=buyer,
        seller=seller,
        analyzer=DecouplingAnalyzer(world),
        coins_spent=spent,
    )
