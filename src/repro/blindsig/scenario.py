"""The T1 scenario: digital cash end to end, plus the paper's table.

Running :func:`run_digital_cash` executes withdrawals, purchases, and
deposits over the simulated network and returns everything a test or
benchmark needs: the world (hence the ledger), the analyzer, and the
paper's expected knowledge table for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    register,
    run_scenario,
)

from .cash import Bank, Buyer, Seller

__all__ = ["DigitalCashRun", "run_digital_cash", "PAPER_TABLE_T1"]

#: The paper's section 3.1.1 table, exactly as printed.
PAPER_TABLE_T1: Dict[str, str] = {
    "Buyer": "(▲, ●)",
    "Signer (Bank)": "(▲, ⊙)",
    "Verifier (Bank)": "(△, ⊙/●)",
    "Seller": "(△, ●)",
}


@dataclass
class DigitalCashRun(ScenarioRun):
    """Everything produced by one digital-cash scenario run."""

    bank: Bank = None  # type: ignore[assignment]
    buyer: Buyer = None  # type: ignore[assignment]
    seller: Seller = None  # type: ignore[assignment]
    coins_spent: int = 0

    table_title = "T1: blind-signature digital cash"


class DigitalCashProgram(ScenarioProgram):
    """Withdraw and spend coins over the simulated network.

    ``blind_withdrawals=False`` runs the ablation: identical protocol
    minus the blinding, so the bank's two roles share a serial and can
    re-couple (the A-series benchmarks quantify this).
    """

    def build(self) -> None:
        buyer_entity = self.world.entity("Buyer", "buyer-device", trusted_by_user=True)
        signer_entity = self.world.entity("Signer (Bank)", "bank")
        verifier_entity = self.world.entity("Verifier (Bank)", "bank")
        seller_entity = self.world.entity("Seller", "seller")

        self.bank = Bank(
            self.network,
            signer_entity,
            verifier_entity,
            key_bits=self.param("key_bits"),
            rng=self.rng,
        )
        self.buyer = Buyer(
            self.network, buyer_entity, Subject("alice"), "alice-account-7", rng=self.rng
        )
        self.seller = Seller(self.network, seller_entity, self.bank)

    def drive(self) -> None:
        self.spent = 0
        for index in range(self.param("coins")):
            coin = self.buyer.withdraw(
                self.bank, blind_withdrawal=self.param("blind_withdrawals")
            )
            receipt = self.buyer.pay(self.seller, coin, f"book #{index}")
            if receipt.accepted:
                self.spent += 1

    def analyze(self) -> DigitalCashRun:
        return DigitalCashRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            bank=self.bank,
            buyer=self.buyer,
            seller=self.seller,
            coins_spent=self.spent,
        )


register(
    ScenarioSpec(
        id="digital-cash",
        title="Blind-signature digital cash (3.1.1)",
        program=DigitalCashProgram,
        params=(
            Param("coins", 3, "coins withdrawn and spent"),
            Param("seed", 20221114, "per-run RNG seed (None: system entropy)"),
            Param("key_bits", 512, "RSA modulus size for the bank keypair"),
            Param("blind_withdrawals", True, "False runs the unblinded ablation"),
        ),
        expected=PAPER_TABLE_T1,
        entities=("Buyer", "Signer (Bank)", "Verifier (Bank)", "Seller"),
        table_constant="PAPER_TABLE_T1",
        experiment_id="T1",
        order=10.0,
    )
)


def run_digital_cash(
    coins: int = 3,
    seed: int = 20221114,
    key_bits: int = 512,
    blind_withdrawals: bool = True,
) -> DigitalCashRun:
    """Withdraw and spend ``coins`` coins; return the analyzed run."""
    return run_scenario(
        "digital-cash",
        coins=coins,
        seed=seed,
        key_bits=key_bits,
        blind_withdrawals=blind_withdrawals,
    )
