"""Chaum digital cash with blind signatures (paper section 3.1.1)."""

from .cash import (
    Bank,
    Buyer,
    Coin,
    DEPOSIT_PROTOCOL,
    PAY_PROTOCOL,
    Seller,
    WITHDRAW_PROTOCOL,
)
from .scenario import DigitalCashRun, PAPER_TABLE_T1, run_digital_cash

__all__ = [
    "Bank",
    "Buyer",
    "Seller",
    "Coin",
    "WITHDRAW_PROTOCOL",
    "PAY_PROTOCOL",
    "DEPOSIT_PROTOCOL",
    "DigitalCashRun",
    "run_digital_cash",
    "PAPER_TABLE_T1",
]
