"""Chaum's untraceable digital cash (paper section 3.1.1).

Actors: a Buyer, a Bank whose Signer and Verifier roles are *the same
organization* (the paper's point: blinding enforces decoupling even
without institutional separation), and a Seller.

Protocol:

1. *Withdrawal* (authenticated): the buyer picks a random coin serial,
   blinds its hash, and has the signer sign the blinded value.  The
   signer sees the buyer's account identity but only an unlinkable
   blinded message.
2. *Purchase* (pseudonymous): the buyer pays the seller with the
   unblinded coin.  The seller verifies the bank's signature offline
   and learns the purchase but only a coin serial for an identity.
3. *Deposit*: the seller deposits the coin; the verifier checks the
   signature and the double-spend ledger, learning the serial and the
   transaction amount (partially sensitive), never the buyer.
"""

from __future__ import annotations

import random as _random
import secrets
from dataclasses import dataclass
from typing import List, Optional

from repro.core.entities import Entity
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    PARTIAL_SENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Subject
from repro.crypto.blind import BlindSigner, blind, unblind
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["Coin", "Bank", "Buyer", "Seller", "WITHDRAW_PROTOCOL", "PAY_PROTOCOL", "DEPOSIT_PROTOCOL"]

WITHDRAW_PROTOCOL = "cash-withdraw"
PAY_PROTOCOL = "cash-pay"
DEPOSIT_PROTOCOL = "cash-deposit"


@dataclass(frozen=True)
class Coin:
    """An unblinded, bank-signed coin."""

    serial: bytes
    signature: int

    @property
    def serial_hex(self) -> str:
        return self.serial.hex()


@dataclass(frozen=True)
class _WithdrawRequest:
    account: LabeledValue  # the buyer's sensitive account identity
    blinded: LabeledValue  # the blinded coin hash (non-sensitive data)


@dataclass(frozen=True)
class _Payment:
    coin_serial: LabeledValue  # pseudonymous identity of the buyer
    coin_signature: int
    purchase: LabeledValue  # the sensitive purchase description


@dataclass(frozen=True)
class _Deposit:
    coin_serial: LabeledValue
    coin_signature: int
    amount: LabeledValue  # partially sensitive transaction metadata


@dataclass(frozen=True)
class _Receipt:
    accepted: bool
    reason: str = ""


class Bank:
    """Signer + verifier roles, one organization, two entities."""

    def __init__(
        self,
        network: Network,
        signer_entity: Entity,
        verifier_entity: Entity,
        key_bits: int = 512,
        rng: Optional[_random.Random] = None,
    ) -> None:
        self._private: RsaPrivateKey = generate_rsa_keypair(key_bits, rng=rng)
        self.signer = BlindSigner(self._private)
        self.signer_host: SimHost = network.add_host("bank-signer", signer_entity)
        self.verifier_host: SimHost = network.add_host("bank-verifier", verifier_entity)
        self.signer_host.register(WITHDRAW_PROTOCOL, self._handle_withdraw)
        self.verifier_host.register(DEPOSIT_PROTOCOL, self._handle_deposit)
        self.spent_serials: set = set()
        self.deposits_accepted = 0
        self.deposits_rejected = 0

    @property
    def public_key(self) -> RsaPublicKey:
        return self.signer.public

    def _handle_withdraw(self, packet: Packet) -> LabeledValue:
        request: _WithdrawRequest = packet.payload
        if isinstance(request.blinded.payload, str):
            # Ablated (unblinded) withdrawal: FDH-sign the bare serial.
            value = self.public_key.hash_to_modulus(
                bytes.fromhex(request.blinded.payload)
            )
        else:
            value = int(request.blinded.payload)
        blinded_signature = self.signer.sign(value)
        return LabeledValue(
            payload=blinded_signature,
            label=NONSENSITIVE_DATA,
            subject=request.account.subject,
            description="blinded signature",
            provenance=("blind", "sign"),
        )

    def _handle_deposit(self, packet: Packet) -> _Receipt:
        deposit: _Deposit = packet.payload
        serial = bytes.fromhex(str(deposit.coin_serial.payload))
        if not self.public_key.verify(serial, deposit.coin_signature):
            self.deposits_rejected += 1
            return _Receipt(accepted=False, reason="bad signature")
        if serial in self.spent_serials:
            self.deposits_rejected += 1
            return _Receipt(accepted=False, reason="double spend")
        self.spent_serials.add(serial)
        self.deposits_accepted += 1
        return _Receipt(accepted=True)


class Buyer:
    """A user with a bank-facing (identified) and market-facing
    (pseudonymous) network presence."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        subject: Subject,
        account_name: str,
        rng: Optional[_random.Random] = None,
    ) -> None:
        self.entity = entity
        self.subject = subject
        self.rng = rng
        self.account_identity = LabeledValue(
            payload=account_name,
            label=SENSITIVE_IDENTITY,
            subject=subject,
            description="bank account identity",
        )
        # The bank-facing host reveals the account holder; the
        # market-facing host reveals nothing (cash is bearer payment).
        self.bank_host: SimHost = network.add_host(
            f"buyer-bank:{subject}", entity, identity=self.account_identity
        )
        self.market_host: SimHost = network.add_host(f"buyer-market:{subject}", entity)
        self.coins: List[Coin] = []

    def withdraw(self, bank: Bank, blind_withdrawal: bool = True) -> Coin:
        """Withdraw one coin via a blind-signing session.

        ``blind_withdrawal=False`` is the ablation: the buyer submits
        the bare serial for signing, handing the signer the exact
        linkage handle (the serial reappears at deposit) that blinding
        exists to destroy.
        """
        serial = (
            bytes(self.rng.randrange(256) for _ in range(16))
            if self.rng is not None
            else secrets.token_bytes(16)
        )
        state = blind(bank.public_key, serial, self.rng)
        if blind_withdrawal:
            blinded = LabeledValue(
                payload=state.blinded_value,
                label=NONSENSITIVE_DATA,
                subject=self.subject,
                description="blinded coin",
                provenance=("serial", "blind"),
            )
        else:
            blinded = LabeledValue(
                payload=serial.hex(),
                label=NONSENSITIVE_DATA,
                subject=self.subject,
                description="unblinded coin serial",
                provenance=("serial",),
            )
        # The buyer knows her own identity and (soon) her purchases.
        self.entity.observe(self.account_identity, channel="self")
        request = _WithdrawRequest(account=self.account_identity, blinded=blinded)
        reply: LabeledValue = self.bank_host.transact(
            bank.signer_host.address, request, WITHDRAW_PROTOCOL
        )
        if blind_withdrawal:
            signature = unblind(bank.public_key, state, int(reply.payload))
        else:
            signature = int(reply.payload)
            if not bank.public_key.verify(serial, signature):
                raise ValueError("bank returned an invalid signature")
        coin = Coin(serial=serial, signature=signature)
        self.coins.append(coin)
        return coin

    def pay(self, seller: "Seller", coin: Coin, purchase_description: str) -> _Receipt:
        """Spend a coin at a seller, pseudonymously."""
        purchase = LabeledValue(
            payload=purchase_description,
            label=SENSITIVE_DATA,
            subject=self.subject,
            description="purchase",
        )
        self.entity.observe(purchase, channel="self")
        payment = _Payment(
            coin_serial=LabeledValue(
                payload=coin.serial_hex,
                label=NONSENSITIVE_IDENTITY,
                subject=self.subject,
                description="coin serial",
                provenance=("serial", "unblind"),
            ),
            coin_signature=coin.signature,
            purchase=purchase,
        )
        return self.market_host.transact(
            seller.host.address, payment, PAY_PROTOCOL
        )


class Seller:
    """Accepts coins, verifies offline, deposits at the bank."""

    def __init__(self, network: Network, entity: Entity, bank: Bank) -> None:
        self.entity = entity
        self.bank = bank
        self.host: SimHost = network.add_host("seller", entity)
        self.host.register(PAY_PROTOCOL, self._handle_payment)
        self.sales = 0

    def _handle_payment(self, packet: Packet) -> _Receipt:
        payment: _Payment = packet.payload
        serial = bytes.fromhex(str(payment.coin_serial.payload))
        if not self.bank.public_key.verify(serial, payment.coin_signature):
            return _Receipt(accepted=False, reason="bad coin")
        amount = LabeledValue(
            payload=f"amount for {payment.purchase.description}",
            label=PARTIAL_SENSITIVE_DATA,
            subject=payment.coin_serial.subject,
            description="transaction amount",
            provenance=("purchase", "amount"),
        )
        deposit = _Deposit(
            coin_serial=payment.coin_serial,
            coin_signature=payment.coin_signature,
            amount=amount,
        )
        receipt: _Receipt = self.host.transact(
            self.bank.verifier_host.address, deposit, DEPOSIT_PROTOCOL
        )
        if receipt.accepted:
            self.sales += 1
        return receipt
