"""Privacy Pass: anonymous proof-of-legitimacy tokens (section 3.2.1)."""

from .scenario import PAPER_TABLE_T3, PrivacyPassRun, run_privacy_pass
from .tokens import (
    ISSUE_PROTOCOL,
    Issuer,
    PrivacyPassClient,
    ProtectedOrigin,
    REDEEM_PROTOCOL,
    Token,
    VERIFY_PROTOCOL,
)

__all__ = [
    "Token",
    "Issuer",
    "PrivacyPassClient",
    "ProtectedOrigin",
    "ISSUE_PROTOCOL",
    "REDEEM_PROTOCOL",
    "VERIFY_PROTOCOL",
    "PrivacyPassRun",
    "run_privacy_pass",
    "PAPER_TABLE_T3",
]
