"""Privacy Pass actors: attested issuance, anonymous redemption.

Paper section 3.2.1: the client proves legitimacy to a trusted
*issuer* and receives unlinkable tokens; the *origin* accepts a token
as proof-of-legitimacy without learning who the client is.  Tokens
"transfer trust" from issuer to origin while decoupling authentication
(at the issuer, identity-bearing) from authorization (at the origin,
anonymous).

The token is a VOPRF output: ``token = (nonce, F_k(nonce))``.  The
issuer evaluates the PRF on a *blinded* nonce (learning nothing) with a
DLEQ proof (so it cannot segregate users across keys); at redemption
the origin asks the issuer to check ``F_k(nonce)``, which is unlinkable
to any issuance transcript.
"""

from __future__ import annotations

import random as _random
import secrets
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.entities import Entity
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Subject
from repro.crypto.group import SchnorrGroup, default_group
from repro.crypto.voprf import (
    DleqProof,
    VoprfServer,
    voprf_blind,
    voprf_finalize,
)
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = [
    "Token",
    "Issuer",
    "PrivacyPassClient",
    "ProtectedOrigin",
    "ISSUE_PROTOCOL",
    "REDEEM_PROTOCOL",
    "VERIFY_PROTOCOL",
]

ISSUE_PROTOCOL = "pp-issue"
REDEEM_PROTOCOL = "pp-redeem"
VERIFY_PROTOCOL = "pp-verify"


@dataclass(frozen=True)
class Token:
    """An unlinkable proof-of-legitimacy."""

    nonce: bytes
    prf_output: bytes

    @property
    def nonce_hex(self) -> str:
        return self.nonce.hex()


@dataclass(frozen=True)
class _IssueRequest:
    account: LabeledValue  # sensitive attestation identity
    blinded_element: LabeledValue  # non-sensitive blinded nonce


@dataclass(frozen=True)
class _IssueResponse:
    evaluated: int
    proof: DleqProof


@dataclass(frozen=True)
class _Redemption:
    token_nonce: LabeledValue  # pseudonymous identity at the origin
    prf_output: bytes
    request: LabeledValue  # the sensitive request content


@dataclass(frozen=True)
class _VerifyRequest:
    token_nonce: LabeledValue
    prf_output: bytes


@dataclass(frozen=True)
class _Outcome:
    accepted: bool
    reason: str = ""


class Issuer:
    """Attests clients and blind-evaluates the token PRF."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        group: Optional[SchnorrGroup] = None,
        rng: Optional[_random.Random] = None,
    ) -> None:
        self.group = group if group is not None else default_group()
        self.server = VoprfServer(self.group, rng=rng)
        self.host: SimHost = network.add_host("issuer", entity)
        self.host.register(ISSUE_PROTOCOL, self._handle_issue)
        self.host.register(VERIFY_PROTOCOL, self._handle_verify)
        self.issued = 0
        self.spent_nonces: Set[bytes] = set()

    @property
    def address(self) -> Address:
        return self.host.address

    @property
    def public_key(self) -> int:
        return self.server.public_key

    def _handle_issue(self, packet: Packet) -> _IssueResponse:
        request: _IssueRequest = packet.payload
        evaluated, proof = self.server.evaluate(int(request.blinded_element.payload))
        self.issued += 1
        return _IssueResponse(evaluated=evaluated, proof=proof)

    def _handle_verify(self, packet: Packet) -> _Outcome:
        request: _VerifyRequest = packet.payload
        nonce = bytes.fromhex(str(request.token_nonce.payload))
        if nonce in self.spent_nonces:
            return _Outcome(accepted=False, reason="double spend")
        expected = self.server.evaluate_unblinded(nonce)
        if expected != request.prf_output:
            return _Outcome(accepted=False, reason="invalid token")
        self.spent_nonces.add(nonce)
        return _Outcome(accepted=True)


class PrivacyPassClient:
    """A user: attested at the issuer, anonymous at the origin."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        subject: Subject,
        account_name: str,
        group: Optional[SchnorrGroup] = None,
        rng: Optional[_random.Random] = None,
    ) -> None:
        self.entity = entity
        self.subject = subject
        self.group = group if group is not None else default_group()
        self.rng = rng
        self.account_identity = LabeledValue(
            payload=account_name,
            label=SENSITIVE_IDENTITY,
            subject=subject,
            description="attestation account",
        )
        # Issuance is attested (identity-bearing); redemption happens
        # through an anonymizing channel, per the paper's framing of
        # Privacy Pass clients as users of systems like Tor.
        self.attested_host: SimHost = network.add_host(
            f"pp-client:{subject}", entity, identity=self.account_identity
        )
        anonymized = LabeledValue(
            payload="anonymized-exit",
            label=NONSENSITIVE_IDENTITY,
            subject=subject,
            description="anonymized network identity",
            provenance=("address", "anonymize"),
        )
        self.anonymous_host: SimHost = network.add_host(
            f"pp-anon:{subject}", entity, identity=anonymized
        )
        self.tokens: List[Token] = []

    def request_token(self, issuer: Issuer) -> Token:
        """One attested issuance: blind, evaluate, verify DLEQ, unblind."""
        nonce = (
            bytes(self.rng.randrange(256) for _ in range(16))
            if self.rng is not None
            else secrets.token_bytes(16)
        )
        state = voprf_blind(nonce, self.group, self.rng)
        self.entity.observe(self.account_identity, channel="self")
        request = _IssueRequest(
            account=self.account_identity,
            blinded_element=LabeledValue(
                payload=state.blinded_element,
                label=NONSENSITIVE_DATA,
                subject=self.subject,
                description="blinded token element",
                provenance=("nonce", "blind"),
            ),
        )
        response: _IssueResponse = self.attested_host.transact(
            issuer.address, request, ISSUE_PROTOCOL
        )
        output = voprf_finalize(
            state, response.evaluated, response.proof, issuer.public_key, self.group
        )
        token = Token(nonce=nonce, prf_output=output)
        self.tokens.append(token)
        return token

    def redeem(
        self, origin: "ProtectedOrigin", token: Token, request_text: str
    ) -> _Outcome:
        """Spend a token at the origin, anonymously."""
        request = LabeledValue(
            payload=request_text,
            label=SENSITIVE_DATA,
            subject=self.subject,
            description="origin request",
        )
        self.entity.observe(request, channel="self")
        redemption = _Redemption(
            token_nonce=LabeledValue(
                payload=token.nonce_hex,
                label=NONSENSITIVE_IDENTITY,
                subject=self.subject,
                description="token nonce",
                provenance=("nonce", "unblind"),
            ),
            prf_output=token.prf_output,
            request=request,
        )
        return self.anonymous_host.transact(
            origin.address, redemption, REDEEM_PROTOCOL
        )


class ProtectedOrigin:
    """An origin that gates service on a valid token."""

    def __init__(self, network: Network, entity: Entity, issuer: Issuer) -> None:
        self.entity = entity
        self.issuer = issuer
        self.host: SimHost = network.add_host("protected-origin", entity)
        self.host.register(REDEEM_PROTOCOL, self._handle_redemption)
        self.served = 0
        self.challenged = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle_redemption(self, packet: Packet) -> _Outcome:
        redemption: _Redemption = packet.payload
        self.challenged += 1
        verify = _VerifyRequest(
            token_nonce=redemption.token_nonce,
            prf_output=redemption.prf_output,
        )
        outcome: _Outcome = self.host.transact(
            self.issuer.address, verify, VERIFY_PROTOCOL
        )
        if outcome.accepted:
            self.served += 1
        return outcome
