"""The T3/F2 scenario: Privacy Pass issuance and redemption."""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.values import Subject
from repro.net.network import Network

from .tokens import Issuer, PrivacyPassClient, ProtectedOrigin

__all__ = ["PrivacyPassRun", "run_privacy_pass", "PAPER_TABLE_T3"]

#: The paper's section 3.2.1 table, exactly as printed.
PAPER_TABLE_T3: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Issuer": "(▲, ⊙)",
    "Origin": "(△, ●)",
}


@dataclass
class PrivacyPassRun:
    """Everything produced by one Privacy Pass scenario run."""

    world: World
    network: Network
    client: PrivacyPassClient
    issuer: Issuer
    origin: ProtectedOrigin
    analyzer: DecouplingAnalyzer
    tokens_redeemed: int

    def table(self):
        return self.analyzer.table(
            entities=["Client", "Issuer", "Origin"],
            title="T3: Privacy Pass",
        )


def run_privacy_pass(
    tokens: int = 3,
    seed: Optional[int] = 20221114,
) -> PrivacyPassRun:
    """Issue and redeem ``tokens`` tokens; return the analyzed run."""
    rng = _random.Random(seed) if seed is not None else None
    world = World()
    network = Network()

    client_entity = world.entity("Client", "client-device", trusted_by_user=True)
    issuer_entity = world.entity("Issuer", "issuer-org")
    origin_entity = world.entity("Origin", "origin-org")

    issuer = Issuer(network, issuer_entity, rng=rng)
    client = PrivacyPassClient(
        network, client_entity, Subject("alice"), "alice@example.com", rng=rng
    )
    origin = ProtectedOrigin(network, origin_entity, issuer)

    redeemed = 0
    for index in range(tokens):
        token = client.request_token(issuer)
        outcome = client.redeem(origin, token, f"GET /challenge-gated/{index}")
        if outcome.accepted:
            redeemed += 1
    network.run()

    return PrivacyPassRun(
        world=world,
        network=network,
        client=client,
        issuer=issuer,
        origin=origin,
        analyzer=DecouplingAnalyzer(world),
        tokens_redeemed=redeemed,
    )
