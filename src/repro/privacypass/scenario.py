"""The T3/F2 scenario: Privacy Pass issuance and redemption."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    register,
    run_scenario,
)

from .tokens import Issuer, PrivacyPassClient, ProtectedOrigin

__all__ = ["PrivacyPassRun", "run_privacy_pass", "PAPER_TABLE_T3"]

#: The paper's section 3.2.1 table, exactly as printed.
PAPER_TABLE_T3: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Issuer": "(▲, ⊙)",
    "Origin": "(△, ●)",
}


@dataclass
class PrivacyPassRun(ScenarioRun):
    """Everything produced by one Privacy Pass scenario run."""

    client: PrivacyPassClient = None  # type: ignore[assignment]
    issuer: Issuer = None  # type: ignore[assignment]
    origin: ProtectedOrigin = None  # type: ignore[assignment]
    tokens_redeemed: int = 0

    table_title = "T3: Privacy Pass"


class PrivacyPassProgram(ScenarioProgram):
    """Issue and redeem tokens; analyze the settled world."""

    def build(self) -> None:
        client_entity = self.world.entity("Client", "client-device", trusted_by_user=True)
        issuer_entity = self.world.entity("Issuer", "issuer-org")
        origin_entity = self.world.entity("Origin", "origin-org")

        self.issuer = Issuer(self.network, issuer_entity, rng=self.rng)
        self.client = PrivacyPassClient(
            self.network, client_entity, Subject("alice"), "alice@example.com", rng=self.rng
        )
        self.origin = ProtectedOrigin(self.network, origin_entity, self.issuer)

    def drive(self) -> None:
        self.redeemed = 0
        for index in range(self.param("tokens")):
            token = self.client.request_token(self.issuer)
            outcome = self.client.redeem(
                self.origin, token, f"GET /challenge-gated/{index}"
            )
            if outcome.accepted:
                self.redeemed += 1

    def analyze(self) -> PrivacyPassRun:
        return PrivacyPassRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            client=self.client,
            issuer=self.issuer,
            origin=self.origin,
            tokens_redeemed=self.redeemed,
        )


register(
    ScenarioSpec(
        id="privacy-pass",
        title="Privacy Pass (3.2.1)",
        program=PrivacyPassProgram,
        params=(
            Param("tokens", 3, "tokens issued and redeemed"),
            Param("seed", 20221114, "per-run RNG seed (None: system entropy)"),
        ),
        expected=PAPER_TABLE_T3,
        entities=("Client", "Issuer", "Origin"),
        table_constant="PAPER_TABLE_T3",
        experiment_id="T3",
        order=30.0,
    )
)


def run_privacy_pass(tokens: int = 3, seed: int = 20221114) -> PrivacyPassRun:
    """Issue and redeem ``tokens`` tokens; return the analyzed run."""
    return run_scenario("privacy-pass", tokens=tokens, seed=seed)
