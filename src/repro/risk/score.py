"""The composite risk score and its provenance decomposition.

Every (entity, subject) pair in a run's knowledge table gets a score

    risk = w_s * sensitivity + w_l * linkability + w_i * inferability

with all three sub-scores in [0, 1] and the component weights drawn
from a :class:`~repro.risk.profile.SensitivityProfile` (defaults
0.25 / 0.25 / 0.5, summing to exactly 1.0):

* **sensitivity** -- the weight of the most sensitive fact the entity
  holds about the subject (the knowledge-table cell, made continuous);
* **linkability** -- how pinnable the subject is against the run's
  population: ``0.5 * prior + 0.5 * 2^-H`` where ``prior`` is the
  subject's share of the population weight and ``H`` its entropy
  (:func:`repro.core.metrics.entropy_bits`), so a subject hiding in a
  uniform crowd of k scores ``1/k`` and a singleton scores 1.0;
* **inferability** -- where the pair sits on the coupling ladder:
  1.0 if the entity alone re-couples identity and data (the paper's
  binary verdict), 0.5 if both facets are co-resident but unlinkable,
  0.25 if only one side of the join is present, 0.0 otherwise.

The score is *computed as* the sum of its decomposition terms, each
term pinned to a witness observation in the ledger, so
:meth:`RiskReport.why` renders sub-score terms that sum to the
reported value byte-exactly.  Because the component weights are exact
binary fractions summing to 1.0 and every sub-score lies in [0, 1],
no score can leave [0, 1] -- there is no clamping anywhere.

Monotonicity (property-tested in ``tests/test_risk_properties.py``):
recording more observations never lowers a cell's or pair's risk
(max-weight, coupling, and the ladder are all monotone in the pool),
and growing the population never raises any subject's linkability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.analysis import DecouplingAnalyzer
from repro.core.ledger import Ledger, Observation
from repro.core.metrics import anonymity_set_size, entropy_bits
from repro.core.values import Subject
from repro.obs import runtime as _obs
from repro.obs.metrics import get_registry as _get_registry

from .profile import DEFAULT_PROFILE, SensitivityProfile

__all__ = [
    "RiskError",
    "RiskTerm",
    "CellRisk",
    "PairRisk",
    "CoalitionRisk",
    "RiskDecomposition",
    "RiskReport",
    "subject_linkability",
    "inferability_rung",
    "score_run",
]


class RiskError(LookupError):
    """An unknown (entity, subject) pair or unusable report state."""


#: The inferability ladder, lowest rung first.
INFER_NONE = 0.0
INFER_ONE_SIDED = 0.25
INFER_CO_RESIDENT = 0.5
INFER_COUPLED = 1.0


def subject_linkability(population: Mapping[str, float], subject: str) -> float:
    """How pinnable ``subject`` is against a weighted population, in [0, 1].

    ``0.5 * prior + 0.5 * 2^-H``: the subject's prior share of the
    population weight, averaged with the effective-anonymity-set term
    ``2^-H`` (H the population's Shannon entropy).  A uniform crowd of
    k gives exactly ``1/k``; an empty or singleton population gives
    1.0 (nowhere to hide).  Growing the population (adding subjects,
    or weight to *other* subjects) never raises this.
    """
    positive = {name: w for name, w in population.items() if w > 0}
    if anonymity_set_size(positive) <= 1:
        return 1.0
    total = sum(positive.values())
    prior = positive.get(subject, 0.0) / total
    effective = 2.0 ** (-entropy_bits(positive))
    return 0.5 * prior + 0.5 * effective


def inferability_rung(
    has_identity: bool, has_data: bool, couples: bool
) -> float:
    """Where a pool sits on the coupling ladder (see module docstring)."""
    if couples:
        return INFER_COUPLED
    if has_identity and has_data:
        return INFER_CO_RESIDENT
    if has_identity or has_data:
        return INFER_ONE_SIDED
    return INFER_NONE


@dataclass(frozen=True)
class RiskTerm:
    """One additive term of a pair's score, pinned to a witness.

    ``value`` is the term's exact contribution (``weight * subscore``,
    halved when a component splits across an identity and a data
    witness); the terms of a pair sum to its score byte-exactly.
    ``observation`` is the ledger index of the witness observation,
    which is also its node id (``obs:<index>``) in the provenance
    graph.
    """

    component: str
    value: float
    subscore: float
    weight: float
    observation: int
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "value": self.value,
            "subscore": self.subscore,
            "weight": self.weight,
            "observation": self.observation,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class CellRisk:
    """The score of one knowledge-table cell: one distinct fact.

    ``weight`` is the profile's sensitivity weight of this fact; the
    cell score swaps it into the pair formula in place of the pair's
    max, so the pair score equals the max over its cells.
    """

    entity: str
    subject: str
    glyph: str
    description: str
    weight: float
    score: float
    observation: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entity": self.entity,
            "subject": self.subject,
            "glyph": self.glyph,
            "description": self.description,
            "weight": self.weight,
            "score": self.score,
            "observation": self.observation,
        }


@dataclass(frozen=True)
class PairRisk:
    """The composite score of one (entity, subject) pair."""

    entity: str
    organization: str
    subject: str
    is_user: bool
    score: float
    sensitivity: float
    linkability: float
    inferability: float
    couples: bool
    observations: int
    terms: Tuple[RiskTerm, ...]

    def to_dict(self, include_terms: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "entity": self.entity,
            "organization": self.organization,
            "subject": self.subject,
            "is_user": self.is_user,
            "score": self.score,
            "sensitivity": self.sensitivity,
            "linkability": self.linkability,
            "inferability": self.inferability,
            "couples": self.couples,
            "observations": self.observations,
        }
        if include_terms:
            data["terms"] = [term.to_dict() for term in self.terms]
        return data


@dataclass(frozen=True)
class CoalitionRisk:
    """The pooled score of one coalition against one subject."""

    organizations: Tuple[str, ...]
    subject: str
    size: int
    couples: bool
    score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "organizations": list(self.organizations),
            "subject": self.subject,
            "size": self.size,
            "couples": self.couples,
            "score": self.score,
        }


@dataclass(frozen=True)
class RiskDecomposition:
    """One pair's score, decomposed term by term with provenance.

    ``chains`` runs parallel to ``terms``: the provenance chain of
    each term's witness observation.  ``sum(t.value for t in terms)``
    equals ``score`` exactly.
    """

    entity: str
    subject: str
    score: float
    terms: Tuple[RiskTerm, ...]
    chains: Tuple[Any, ...]

    def render(self) -> str:
        lines = [f"risk({self.entity}, {self.subject}) = {self.score:.4f}"]
        for term, chain in zip(self.terms, self.chains):
            lines.append(
                f"  + {term.value:.4f}  {term.component}:"
                f" {term.subscore:.4f} x weight {term.weight:g}"
                f" -- {term.detail}"
            )
            for line in chain.render().splitlines():
                lines.append(f"      {line}")
        lines.append(
            f"  = {self.score:.4f}  (terms sum exactly to the pair score)"
        )
        return "\n".join(lines)


class RiskReport:
    """Every scored cell and pair of one run, plus graded coalitions.

    Construct with :func:`score_run`.  The report keeps the run's
    ledger and analyzer so :meth:`why` and :meth:`coalition_risks` can
    decompose lazily; everything needed for serialization is plain
    data, and :meth:`to_dict` output is byte-deterministic.
    """

    def __init__(
        self,
        *,
        profile: SensitivityProfile,
        population: Dict[str, float],
        subjects: Tuple[str, ...],
        pairs: Tuple[PairRisk, ...],
        cells: Tuple[CellRisk, ...],
        organizations: Tuple[str, ...],
        subject_resistance: Dict[str, int],
        collusion_resistance: int,
        ledger: Ledger,
        analyzer: Optional[DecouplingAnalyzer] = None,
        graph: Optional[Any] = None,
        scenario_id: str = "",
    ) -> None:
        self.profile = profile
        self.population = population
        self.subjects = subjects
        self.pairs = pairs
        self.cells = cells
        self.organizations = organizations
        self.subject_resistance = subject_resistance
        self.collusion_resistance = collusion_resistance
        self.scenario_id = scenario_id
        self._ledger = ledger
        self._analyzer = analyzer
        self._graph = graph

    # -- lookups -------------------------------------------------------

    def pair(self, entity: str, subject: str) -> PairRisk:
        """The scored pair, or :class:`RiskError` naming the known ones."""
        for pair in self.pairs:
            if pair.entity == entity and pair.subject == subject:
                return pair
        known = ", ".join(
            sorted({f"({p.entity}, {p.subject})" for p in self.pairs})
        ) or "(none)"
        raise RiskError(
            f"no scored pair ({entity!r}, {subject!r}); known pairs: {known}"
        )

    def non_user_pairs(self) -> Tuple[PairRisk, ...]:
        return tuple(p for p in self.pairs if not p.is_user)

    def entity_risk(self, entity: str) -> float:
        """The entity's worst pair score over every subject."""
        return max(
            (p.score for p in self.pairs if p.entity == entity), default=0.0
        )

    def max_pair(self) -> Optional[PairRisk]:
        """The riskiest non-user pair (first of the maxima, so stable)."""
        best: Optional[PairRisk] = None
        for pair in self.non_user_pairs():
            if best is None or pair.score > best.score:
                best = pair
        return best

    def mean_pair_risk(self) -> float:
        pairs = self.non_user_pairs()
        if not pairs:
            return 0.0
        return sum(p.score for p in pairs) / len(pairs)

    @property
    def coupled_pairs(self) -> int:
        return sum(1 for p in self.non_user_pairs() if p.couples)

    @property
    def decoupled(self) -> bool:
        """True iff no non-user pair couples -- the paper's verdict."""
        return self.coupled_pairs == 0

    @property
    def grade(self) -> str:
        """coupled / decoupled / strong, matching the harness's grades."""
        if not self.decoupled:
            return "coupled"
        if self.collusion_resistance > len(self.organizations):
            return "strong"
        return "decoupled"

    # -- the graded verdict --------------------------------------------

    def subject_exposure(self, subject: str) -> float:
        """The system-level risk borne by one subject, in [0, 1].

        ``w_s * worst sensitivity held by any non-user entity +
        w_l * linkability + w_i / collusion-resistance``: the graded
        generalization of the binary verdict.  The inferability term
        decays as 1/cr, so each added decoupled party buys less -- the
        section 4.2 diminishing-returns curve, made quantitative.
        """
        sens = max(
            (
                p.sensitivity
                for p in self.pairs
                if p.subject == subject and not p.is_user
            ),
            default=0.0,
        )
        link = subject_linkability(self.population, subject)
        resistance = self.subject_resistance.get(
            subject, len(self.organizations) + 1
        )
        w = self.profile
        return (
            w.w_sensitivity * sens
            + w.w_linkability * link
            + w.w_inferability * (1.0 / resistance)
        )

    def system_risk(self) -> float:
        """The worst subject exposure in the run."""
        return max(
            (self.subject_exposure(name) for name in self.subjects),
            default=0.0,
        )

    # -- graded coalition analysis -------------------------------------

    def coalition_risks(
        self, max_size: Optional[int] = None
    ) -> Tuple[CoalitionRisk, ...]:
        """Per-coalition pooled risk: the graded collusion analysis.

        For every coalition of non-user organizations (up to
        ``max_size``) and every subject it has observations about,
        scores the pooled knowledge with the pair formula.  The binary
        collusion analysis reads off as ``couples``; the score grades
        everything beneath it.
        """
        analyzer = self._require_analyzer()
        ledger = self._ledger
        results: List[CoalitionRisk] = []
        limit = max_size if max_size is not None else len(self.organizations)
        for size in range(1, limit + 1):
            for combo in itertools.combinations(self.organizations, size):
                for subject in ledger.subjects():
                    pool: List[Observation] = []
                    for org in combo:
                        pool.extend(ledger.by_org_subject(org, subject))
                    if not pool:
                        continue
                    sens = max(
                        self.profile.weight_for(o.label, o.description)
                        for o in pool
                    )
                    couples = analyzer.coalition_couples(frozenset(combo), subject)
                    has_identity = any(
                        o.label.is_identity and o.label.is_sensitive for o in pool
                    )
                    has_data = any(
                        o.label.is_data and o.label.is_sensitive for o in pool
                    )
                    rung = inferability_rung(has_identity, has_data, couples)
                    link = subject_linkability(self.population, subject.name)
                    score = (
                        self.profile.w_sensitivity * sens
                        + self.profile.w_linkability * link
                        + self.profile.w_inferability * rung
                    )
                    results.append(
                        CoalitionRisk(
                            organizations=tuple(combo),
                            subject=subject.name,
                            size=size,
                            couples=couples,
                            score=score,
                        )
                    )
        return tuple(results)

    def coalition_curve(
        self, max_size: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Max pooled risk per coalition size: the graded-verdict curve."""
        curve: List[Dict[str, Any]] = []
        by_size: Dict[int, List[CoalitionRisk]] = {}
        for risk in self.coalition_risks(max_size):
            by_size.setdefault(risk.size, []).append(risk)
        for size in sorted(by_size):
            risks = by_size[size]
            coupling = {
                r.organizations for r in risks if r.couples
            }
            curve.append(
                {
                    "size": size,
                    "coalitions": len({r.organizations for r in risks}),
                    "coupling": len(coupling),
                    "max_risk": max(r.score for r in risks),
                }
            )
        return curve

    # -- decomposition -------------------------------------------------

    def _require_analyzer(self) -> DecouplingAnalyzer:
        if self._analyzer is None:
            raise RiskError(
                "this report was built without an analyzer;"
                " coalition analysis is unavailable"
            )
        return self._analyzer

    def provenance(self) -> Any:
        """The provenance graph backing :meth:`why` (built lazily).

        A graph passed to :func:`score_run` (e.g. from a traced run,
        with real packet hops) is used as-is; otherwise a ledger-only
        graph is built on first use.
        """
        if self._graph is None:
            from repro.obs.provenance import build_provenance

            self._graph = build_provenance(None, None, ledger=self._ledger)
        return self._graph

    def why(self, entity: str, subject: str) -> RiskDecomposition:
        """Decompose one pair's score through the provenance graph.

        Every term of the score is pinned to a witness observation;
        this walks each witness's provenance chain (send -> hops ->
        delivery -> observation) and returns terms whose values sum to
        the pair score exactly.
        """
        pair = self.pair(entity, subject)
        graph = self.provenance()
        chains = tuple(
            graph.chain_for(graph.nodes[f"obs:{term.observation}"])
            for term in pair.terms
        )
        return RiskDecomposition(
            entity=entity,
            subject=subject,
            score=pair.score,
            terms=pair.terms,
            chains=chains,
        )

    # -- serialization -------------------------------------------------

    def to_dict(self, include_terms: bool = False) -> Dict[str, Any]:
        max_pair = self.max_pair()
        return {
            "scenario_id": self.scenario_id,
            "profile": self.profile.name,
            "population": dict(self.population),
            "decoupled": self.decoupled,
            "grade": self.grade,
            "collusion_resistance": self.collusion_resistance,
            "system_risk": self.system_risk(),
            "max_pair_risk": max_pair.score if max_pair else 0.0,
            "mean_pair_risk": self.mean_pair_risk(),
            "coupled_pairs": self.coupled_pairs,
            "pairs": [p.to_dict(include_terms) for p in self.pairs],
            "cells": [c.to_dict() for c in self.cells],
            "coalition_curve": self.coalition_curve(),
        }


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


def _rank_pool(
    pool: Sequence[Observation], index_of: Dict[int, int]
) -> List[Tuple[Observation, int]]:
    """The pool with global ledger indices, earliest first."""
    entries = [(obs, index_of[id(obs)]) for obs in pool]
    entries.sort(key=lambda entry: (entry[0].time, entry[1]))
    return entries


def _subject_resistance(
    analyzer: DecouplingAnalyzer,
    organizations: Tuple[str, ...],
    subject: Subject,
) -> int:
    """Smallest coalition size that re-couples this one subject."""
    for size in range(1, len(organizations) + 1):
        for combo in itertools.combinations(organizations, size):
            if analyzer.coalition_couples(frozenset(combo), subject):
                return size
    return len(organizations) + 1


def score_run(
    run: Any = None,
    profile: Optional[SensitivityProfile] = None,
    *,
    world: Any = None,
    analyzer: Optional[DecouplingAnalyzer] = None,
    population: Optional[Mapping[str, float]] = None,
    graph: Any = None,
) -> RiskReport:
    """Score every knowledge-table cell and pair of a finished run.

    ``run`` is any object with ``world`` and (optionally) ``analyzer``
    attributes -- every :class:`~repro.scenario.run.ScenarioRun`
    qualifies; alternatively pass ``world`` (and ``analyzer``)
    directly.  ``population`` overrides the linkability population; it
    is a fixed input, so scores are comparable across runs that share
    it.  It may be a mapping, or anything with a
    ``linkability_population()`` method (a
    :class:`~repro.population.PopulationEngine`).  When omitted, a run
    launched with ``run_scenario(population=...)`` contributes its
    engine's ambient population -- scores then reflect the deployment's
    user base, not just the driven subjects -- and engine-less runs
    keep the historical default of every ledger subject, uniformly
    weighted.  ``graph`` attaches a prebuilt provenance graph for
    :meth:`why` (one is built ledger-only on demand otherwise).
    """
    if world is None:
        if run is None:
            raise RiskError("score_run needs a run or a world")
        world = run.world
    if analyzer is None:
        analyzer = getattr(run, "analyzer", None) or DecouplingAnalyzer(world)
    profile = profile if profile is not None else DEFAULT_PROFILE
    ledger: Ledger = world.ledger

    if population is None:
        engine = getattr(run, "population_engine", None)
        if engine is not None:
            population = engine.linkability_population()
    elif hasattr(population, "linkability_population"):
        population = population.linkability_population()
    pop: Dict[str, float] = (
        dict(population)
        if population is not None
        else {subject.name: 1.0 for subject in ledger.subjects()}
    )
    positive = {name: w for name, w in pop.items() if w > 0}
    set_size = anonymity_set_size(positive)
    pop_entropy = entropy_bits(positive)

    index_of = {id(obs): i for i, obs in enumerate(ledger)}
    w_s, w_l, w_i = (
        profile.w_sensitivity,
        profile.w_linkability,
        profile.w_inferability,
    )

    pairs: List[PairRisk] = []
    cells: List[CellRisk] = []
    for entity in world.entities:
        for subject in ledger.subjects_of_entity(entity.name):
            pool = ledger.by_pair(entity.name, subject)
            ranked = _rank_pool(pool, index_of)
            weights = [
                profile.weight_for(obs.label, obs.description)
                for obs, _ in ranked
            ]
            sens = max(weights)
            sens_at = next(
                idx for (_, idx), w in zip(ranked, weights) if w == sens
            )
            link = subject_linkability(pop, subject.name)
            couples = analyzer.entity_couples(entity.name, subject)
            identity_at = next(
                (
                    idx
                    for (obs, idx) in ranked
                    if obs.label.is_identity and obs.label.is_sensitive
                ),
                None,
            )
            data_at = next(
                (
                    idx
                    for (obs, idx) in ranked
                    if obs.label.is_data and obs.label.is_sensitive
                ),
                None,
            )
            if data_at is None and couples:
                # Coupling without directly sensitive data means a
                # reconstructed share group; its earliest share is the
                # data-side witness.
                data_at = next(
                    (
                        idx
                        for (obs, idx) in ranked
                        if obs.share_info is not None
                    ),
                    None,
                )
            rung = inferability_rung(
                identity_at is not None, data_at is not None, couples
            )

            terms: List[RiskTerm] = []
            sens_obs = ledger.observations[sens_at]
            terms.append(
                RiskTerm(
                    component="sensitivity",
                    value=w_s * sens,
                    subscore=sens,
                    weight=w_s,
                    observation=sens_at,
                    detail=(
                        f"most sensitive fact held:"
                        f" {sens_obs.label.glyph}"
                        f"[{sens_obs.description or '(unnamed)'}]"
                    ),
                )
            )
            terms.append(
                RiskTerm(
                    component="linkability",
                    value=w_l * link,
                    subscore=link,
                    weight=w_l,
                    observation=ranked[0][1],
                    detail=(
                        f"{subject.name} hides among {set_size} subjects"
                        f" ({pop_entropy:.3f} bits)"
                    ),
                )
            )
            if rung > 0.0:
                if couples:
                    ladder = "identity and data join at this vantage"
                elif identity_at is not None and data_at is not None:
                    ladder = "identity and data co-resident but unlinkable"
                elif identity_at is not None:
                    ladder = "identity facet only; no sensitive data here"
                else:
                    ladder = "data facet only; no sensitive identity here"
                witnesses: List[Tuple[int, str]] = []
                if identity_at is not None:
                    witnesses.append((identity_at, "identity witness"))
                if data_at is not None:
                    witnesses.append((data_at, "data witness"))
                if not witnesses:
                    witnesses.append((ranked[0][1], "earliest observation"))
                # Splitting across two witnesses multiplies by 0.5,
                # which is float-exact, so the terms still sum to the
                # score byte-exactly.
                share = 1.0 / len(witnesses)
                for witness_at, role in witnesses:
                    terms.append(
                        RiskTerm(
                            component="inferability",
                            value=share * (w_i * rung),
                            subscore=rung,
                            weight=w_i,
                            observation=witness_at,
                            detail=f"{ladder} ({role})",
                        )
                    )
            score = sum(term.value for term in terms)
            pairs.append(
                PairRisk(
                    entity=entity.name,
                    organization=entity.organization.name,
                    subject=subject.name,
                    is_user=entity.is_user,
                    score=score,
                    sensitivity=sens,
                    linkability=link,
                    inferability=rung,
                    couples=couples,
                    observations=len(pool),
                    terms=tuple(terms),
                )
            )

            seen: set = set()
            for (obs, idx), weight in zip(ranked, weights):
                key = (obs.label.glyph, obs.description)
                if key in seen:
                    continue
                seen.add(key)
                cells.append(
                    CellRisk(
                        entity=entity.name,
                        subject=subject.name,
                        glyph=obs.label.glyph,
                        description=obs.description,
                        weight=weight,
                        score=w_s * weight + w_l * link + w_i * rung,
                        observation=idx,
                    )
                )

    organizations = analyzer.non_user_organizations()
    subject_resistance = {
        subject.name: _subject_resistance(analyzer, organizations, subject)
        for subject in ledger.subjects()
    }
    collusion_resistance = min(
        subject_resistance.values(), default=len(organizations) + 1
    )

    report = RiskReport(
        profile=profile,
        population=pop,
        subjects=tuple(subject.name for subject in ledger.subjects()),
        pairs=tuple(pairs),
        cells=tuple(cells),
        organizations=organizations,
        subject_resistance=subject_resistance,
        collusion_resistance=collusion_resistance,
        ledger=ledger,
        analyzer=analyzer,
        graph=graph,
        scenario_id=getattr(run, "scenario_id", "") or "",
    )
    if _obs.COUNTERS:
        registry = _get_registry()
        registry.counter("risk.reports").inc()
        max_pair = report.max_pair()
        registry.gauge("risk.system").set(report.system_risk())
        registry.gauge("risk.max_pair").set(max_pair.score if max_pair else 0.0)
        registry.gauge("risk.coupled_pairs").set(float(report.coupled_pairs))
    return report
