"""Graded decoupling: composite risk scores over the knowledge tables.

The paper's verdict is binary -- an entity either can or cannot
re-couple identity and data -- but section 4.2 argues decoupling has a
*degree*, and real deployments live in between.  This package layers a
composite, decomposable risk score over every knowledge-table cell and
every (entity, subject) pair:

* :class:`SensitivityProfile` -- declarative per-fact sensitivity
  weights plus the component weights of the composite score;
* :func:`score_run` -- scores a finished scenario run, producing a
  :class:`RiskReport`;
* :meth:`RiskReport.why` -- decomposes any pair score into provenance
  -graph observations whose sub-score terms sum to the reported value.

See ``docs/RISK.md`` for the score formula and a worked decomposition.
"""

from .profile import (
    DEFAULT_COMPONENT_WEIGHTS,
    DEFAULT_GLYPH_WEIGHTS,
    DEFAULT_PROFILE,
    ProfileError,
    SensitivityProfile,
    load_profile,
)
from .score import (
    CellRisk,
    CoalitionRisk,
    PairRisk,
    RiskDecomposition,
    RiskError,
    RiskReport,
    RiskTerm,
    inferability_rung,
    score_run,
    subject_linkability,
)

__all__ = [
    "DEFAULT_COMPONENT_WEIGHTS",
    "DEFAULT_GLYPH_WEIGHTS",
    "DEFAULT_PROFILE",
    "ProfileError",
    "SensitivityProfile",
    "load_profile",
    "CellRisk",
    "CoalitionRisk",
    "PairRisk",
    "RiskDecomposition",
    "RiskError",
    "RiskReport",
    "RiskTerm",
    "inferability_rung",
    "score_run",
    "subject_linkability",
]
