"""Declarative sensitivity profiles: the weights behind every score.

A :class:`SensitivityProfile` answers two questions the knowledge
tables deliberately leave open:

* *how bad is it* that an observer holds a given fact -- the per-glyph
  sensitivity weights, optionally refined by description-substring
  overrides ("any fact mentioning ``imsi`` weighs 1.0 no matter its
  glyph");
* *how do the sub-scores combine* -- the component weights of the
  composite score (sensitivity, linkability, inferability).

Profiles are plain frozen data with a JSON form, so a deployment can
ship its own weighting without touching code.  The default component
weights (0.25 / 0.25 / 0.5) are exact binary fractions summing to
exactly 1.0, which is what lets :mod:`repro.risk.score` promise that a
score's decomposition terms sum to the score byte-exactly and that no
score leaves [0, 1].
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.core.labels import Label

__all__ = [
    "ProfileError",
    "SensitivityProfile",
    "DEFAULT_GLYPH_WEIGHTS",
    "DEFAULT_COMPONENT_WEIGHTS",
    "DEFAULT_PROFILE",
    "load_profile",
]


class ProfileError(ValueError):
    """A malformed sensitivity profile (bad weight, unknown key)."""


#: Default per-glyph sensitivity weights, one per point of the label
#: lattice.  Sensitive marks weigh 1.0, the partial mark ⊙/● sits in
#: between, and the hollow marks carry the residual risk of pseudonyms
#: (△) and ciphertext/aggregates (⊙).  The network-identity facet ▲_N
#: weighs slightly less than the human facet: an IMSI or IP address
#: still needs a join to reach a person (the PGPP argument).
DEFAULT_GLYPH_WEIGHTS: Mapping[str, float] = {
    "▲": 1.0,
    "▲_H": 1.0,
    "▲_N": 0.8,
    "△": 0.2,
    "△_H": 0.2,
    "△_N": 0.2,
    "●": 1.0,
    "⊙/●": 0.6,
    "⊙": 0.1,
}

#: Default composite weights: inferability (can identity and data be
#: joined *here*?) carries half the score -- it is the quantity the
#: paper's verdict binarizes -- with sensitivity and linkability
#: splitting the rest.  All three are exact binary fractions.
DEFAULT_COMPONENT_WEIGHTS: Mapping[str, float] = {
    "sensitivity": 0.25,
    "linkability": 0.25,
    "inferability": 0.5,
}

#: Fallback weight when a profile omits a glyph entirely, by label rank
#: (0 non-sensitive, 1 partial, 2 sensitive).
_RANK_FALLBACK = {0: 0.2, 1: 0.6, 2: 1.0}

_COMPONENTS = ("sensitivity", "linkability", "inferability")
_ALLOWED_KEYS = frozenset(
    {"name", "glyph_weights", "description_overrides", "component_weights"}
)


def _check_weight(value: Any, what: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProfileError(f"{what} must be a number, got {value!r}")
    weight = float(value)
    if not 0.0 <= weight <= 1.0:
        raise ProfileError(f"{what} must lie in [0, 1], got {weight!r}")
    return weight


@dataclass(frozen=True)
class SensitivityProfile:
    """Per-fact sensitivity weights plus composite component weights.

    ``glyph_weights`` maps paper glyphs (▲, ⊙/●, ...) to weights in
    [0, 1]; missing glyphs fall back to :data:`DEFAULT_GLYPH_WEIGHTS`
    and then to a rank-based default.  ``description_overrides`` is an
    ordered tuple of ``(substring, weight)`` pairs matched
    case-insensitively against an observation's description; the first
    match wins over any glyph weight.  ``component_weights`` must cover
    exactly sensitivity/linkability/inferability and sum to 1.0.
    """

    name: str = "default"
    glyph_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_GLYPH_WEIGHTS)
    )
    description_overrides: Tuple[Tuple[str, float], ...] = ()
    component_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_COMPONENT_WEIGHTS)
    )

    def __post_init__(self) -> None:
        for glyph, weight in self.glyph_weights.items():
            if glyph not in DEFAULT_GLYPH_WEIGHTS:
                known = ", ".join(DEFAULT_GLYPH_WEIGHTS)
                raise ProfileError(
                    f"unknown glyph {glyph!r} in profile {self.name!r};"
                    f" known glyphs: {known}"
                )
            _check_weight(weight, f"glyph weight for {glyph!r}")
        for pair in self.description_overrides:
            if len(pair) != 2:
                raise ProfileError(
                    f"description override must be (substring, weight), got {pair!r}"
                )
            substring, weight = pair
            if not isinstance(substring, str) or not substring:
                raise ProfileError(
                    f"override substring must be a non-empty string, got {substring!r}"
                )
            _check_weight(weight, f"override weight for {substring!r}")
        if set(self.component_weights) != set(_COMPONENTS):
            raise ProfileError(
                "component_weights must cover exactly"
                f" {', '.join(_COMPONENTS)}; got {sorted(self.component_weights)}"
            )
        total = 0.0
        for component, weight in self.component_weights.items():
            total += _check_weight(weight, f"component weight {component!r}")
        if abs(total - 1.0) > 1e-9:
            raise ProfileError(
                f"component weights must sum to 1.0, got {total!r}"
            )

    # -- the lookup every score goes through ---------------------------

    def weight_for(self, label: Label, description: str = "") -> float:
        """The sensitivity weight of one fact, in [0, 1].

        Description-substring overrides win (first match, matched
        case-insensitively); otherwise the glyph's weight, falling back
        to the defaults and finally to the label's rank.
        """
        if description:
            lowered = description.lower()
            for substring, weight in self.description_overrides:
                if substring.lower() in lowered:
                    return float(weight)
        glyph = label.glyph
        if glyph in self.glyph_weights:
            return float(self.glyph_weights[glyph])
        if glyph in DEFAULT_GLYPH_WEIGHTS:
            return float(DEFAULT_GLYPH_WEIGHTS[glyph])
        return _RANK_FALLBACK[label.rank]

    @property
    def w_sensitivity(self) -> float:
        return float(self.component_weights["sensitivity"])

    @property
    def w_linkability(self) -> float:
        return float(self.component_weights["linkability"])

    @property
    def w_inferability(self) -> float:
        return float(self.component_weights["inferability"])

    # -- JSON form -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "glyph_weights": dict(self.glyph_weights),
            "description_overrides": [
                [substring, weight]
                for substring, weight in self.description_overrides
            ],
            "component_weights": dict(self.component_weights),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SensitivityProfile":
        if not isinstance(data, Mapping):
            raise ProfileError(f"profile must be a mapping, got {type(data).__name__}")
        unknown = set(data) - _ALLOWED_KEYS
        if unknown:
            raise ProfileError(
                f"unknown profile keys: {', '.join(sorted(unknown))};"
                f" allowed: {', '.join(sorted(_ALLOWED_KEYS))}"
            )
        overrides = data.get("description_overrides", ())
        try:
            override_pairs = tuple((pair[0], pair[1]) for pair in overrides)
        except (TypeError, IndexError):
            raise ProfileError(
                f"description_overrides must be a list of [substring, weight]"
                f" pairs, got {overrides!r}"
            ) from None
        return cls(
            name=str(data.get("name", "custom")),
            glyph_weights=dict(data.get("glyph_weights", DEFAULT_GLYPH_WEIGHTS)),
            description_overrides=override_pairs,
            component_weights=dict(
                data.get("component_weights", DEFAULT_COMPONENT_WEIGHTS)
            ),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), ensure_ascii=False, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SensitivityProfile":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileError(f"profile is not valid JSON: {exc}") from None
        return cls.from_dict(data)


#: The profile every surface uses unless told otherwise.
DEFAULT_PROFILE = SensitivityProfile()


def load_profile(path: str) -> SensitivityProfile:
    """Read a :class:`SensitivityProfile` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return SensitivityProfile.from_json(handle.read())
