"""repro: The Decoupling Principle, made executable.

A reproduction of Schmitt, Iyengar, Wood & Raghavan, *The Decoupling
Principle: A Practical Privacy Framework* (HotNets '22).

The package contains:

* :mod:`repro.core` -- the decoupling-analysis framework (labels,
  observation ledger, analyzer, metrics);
* :mod:`repro.crypto` -- from-scratch cryptographic substrates (blind
  RSA, X25519, ChaCha20-Poly1305, HKDF, HPKE, VOPRF, secret sharing);
* :mod:`repro.net` -- a discrete-event network simulator with passive
  wire observers;
* substrate protocol stacks: :mod:`repro.dns`, :mod:`repro.http`,
  :mod:`repro.tls`;
* one executable model per system the paper analyzes:
  :mod:`repro.blindsig`, :mod:`repro.mixnet`, :mod:`repro.privacypass`,
  :mod:`repro.odns`, :mod:`repro.pgpp`, :mod:`repro.mpr`,
  :mod:`repro.ppm`, :mod:`repro.vpn`;
* :mod:`repro.adversary` -- observers, coalitions, breaches, and
  timing-correlation traffic analysis.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
