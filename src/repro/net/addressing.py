"""IP-like addressing for simulated hosts.

Addresses are dotted-quad strings allocated from per-network prefixes.
An address is just an identifier with a network affiliation -- enough
for the decoupling analyses, where *whose address appears as the
source* is the whole game.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Address", "AddressAllocator"]


@dataclass(frozen=True, order=True)
class Address:
    """A simulated network-layer address."""

    value: str

    def __str__(self) -> str:
        return self.value

    @property
    def prefix(self) -> str:
        """The /24-style network prefix (first three octets)."""
        return ".".join(self.value.split(".")[:3])


class AddressAllocator:
    """Hands out sequential addresses within named prefixes.

    Deterministic: the same allocation order yields the same
    addresses, which keeps traces and test expectations stable.
    """

    def __init__(self) -> None:
        self._next_host: Dict[str, int] = {}
        self._next_prefix = 0

    def network_prefix(self) -> str:
        """Allocate a fresh /24 prefix (a distinct simulated network)."""
        index = self._next_prefix
        self._next_prefix += 1
        return f"10.{index // 256}.{index % 256}"

    def allocate(self, prefix: str) -> Address:
        """The next free address within ``prefix``."""
        host = self._next_host.get(prefix, 1)
        if host > 254:
            raise ValueError(
                f"prefix {prefix} exhausted: all {host - 1} host addresses"
                f" ({prefix}.1-{prefix}.{host - 1}) already allocated"
            )
        self._next_host[prefix] = host + 1
        return Address(f"{prefix}.{host}")
