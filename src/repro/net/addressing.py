"""IP-like addressing for simulated hosts.

Addresses are dotted-quad strings allocated from per-network prefixes.
An address is just an identifier with a network affiliation -- enough
for the decoupling analyses, where *whose address appears as the
source* is the whole game.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import fastpath as _fastpath

__all__ = ["Address", "AddressAllocator"]


@dataclass(frozen=True, order=True)
class Address:
    """A simulated network-layer address.

    Addresses are allocated once at build time and then hashed on
    every send (host lookup, latency lookup) and prefix-matched on
    every delivery, so both are precomputed here rather than derived
    per call.  Under ``REPRO_SLOW_PATH=1`` both revert to the per-call
    derivations (the generated field-tuple hash, the split/join) that
    every lookup paid before the caches existed.
    """

    value: str

    def __post_init__(self) -> None:
        # Same value the slow path recomputes per call: the hash must
        # not depend on which mode first touched the instance.
        object.__setattr__(self, "_hash", hash((self.value,)))
        object.__setattr__(self, "_prefix", ".".join(self.value.split(".")[:3]))

    def __hash__(self) -> int:
        if _fastpath.SLOW_PATH:
            return hash((self.value,))
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return self.value

    @property
    def prefix(self) -> str:
        """The /24-style network prefix (first three octets)."""
        if _fastpath.SLOW_PATH:
            return ".".join(self.value.split(".")[:3])
        return self._prefix  # type: ignore[attr-defined]


class AddressAllocator:
    """Hands out sequential addresses within named prefixes.

    Deterministic: the same allocation order yields the same
    addresses, which keeps traces and test expectations stable.
    """

    #: Distinct first octets available for prefix allocation.  The
    #: space starts at 10.x.y and grows one first-octet "block" (65536
    #: /24 prefixes) at a time through 255.x.y -- 246 * 65536 ≈ 16M
    #: distinct networks, enough for million-user populations where
    #: every device gets its own prefix.
    _FIRST_OCTET_BASE = 10
    _PREFIXES_PER_BLOCK = 65_536
    _MAX_PREFIXES = (256 - _FIRST_OCTET_BASE) * _PREFIXES_PER_BLOCK

    def __init__(self) -> None:
        self._next_host: Dict[str, int] = {}
        self._next_prefix = 0

    def network_prefix(self) -> str:
        """Allocate a fresh /24 prefix (a distinct simulated network).

        The first 65536 prefixes are ``10.x.y`` -- byte-identical to
        the historical allocator -- after which the space grows into
        ``11.x.y``, ``12.x.y``, ... rather than exhausting.
        """
        index = self._next_prefix
        if index >= self._MAX_PREFIXES:
            raise ValueError(
                f"prefix space exhausted: all {self._MAX_PREFIXES} network"
                f" prefixes ({self._FIRST_OCTET_BASE}.0.0-255.255.255)"
                " already allocated"
            )
        self._next_prefix = index + 1
        block, within = divmod(index, self._PREFIXES_PER_BLOCK)
        return (
            f"{self._FIRST_OCTET_BASE + block}.{within // 256}.{within % 256}"
        )

    def allocate(self, prefix: str) -> Address:
        """The next free address within ``prefix``."""
        host = self._next_host.get(prefix, 1)
        if host > 254:
            raise ValueError(
                f"prefix {prefix} exhausted: all {host - 1} host addresses"
                f" ({prefix}.1-{prefix}.{host - 1}) already allocated"
            )
        self._next_host[prefix] = host + 1
        return Address(f"{prefix}.{host}")
