"""A deterministic discrete-event simulator.

The time base for every networked model in the package.  Events are
``(time, sequence, callback)`` triples in a heap; ``run_until_idle``
pumps them in order.  :meth:`Simulator.run_until` supports re-entrant
pumping, which lets :meth:`repro.net.network.Network.transact` offer a
synchronous request/response API on top of one-way message events --
protocol code reads like straight-line code while timestamps stay
globally consistent.

Callbacks may be any zero-argument callable.  The drive-phase fast
path schedules slotted event objects (e.g. the network's ``_Delivery``
record) instead of per-packet lambda closures: the object carries its
arguments in slots and is re-armed from a free list, so the steady
state allocates no closures and no cells.  ``_step`` dispatches both
forms identically via ``callback()``.

Deadline *markers* (:meth:`marker_at`) are events whose only purpose
is to wake the clock at a given time.  They are cancelable: a canceled
marker is dropped lazily when it reaches the top of the heap, without
counting as a processed event or running hooks, so synchronous
``transact`` calls that complete before their deadline no longer
accumulate dead heap entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from repro.obs import runtime as _obs
from repro.obs.metrics import BATCH as _BATCH
from repro.obs.metrics import get_registry as _get_registry

__all__ = ["Simulator"]

#: Signature of a per-event hook: ``hook(time, callback)`` runs just
#: before the event's callback executes.
EventHook = Callable[[float, Callable[[], None]], None]


class _Marker:
    """A cancelable wake-at-time heap entry (no-op when it fires)."""

    __slots__ = ("canceled", "fired")

    def __init__(self) -> None:
        self.canceled = False
        self.fired = False

    def __call__(self) -> None:  # pragma: no cover - trivial
        pass


class Simulator:
    """An event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._canceled = 0
        self._hooks: List[EventHook] = []

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        """Live events still queued (canceled markers excluded)."""
        return len(self._queue) - self._canceled

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._sequence), callback))

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        self.schedule(time - self.now, callback)

    def marker_at(self, time: float) -> _Marker:
        """Queue a cancelable no-op event at absolute ``time``.

        Returns a handle for :meth:`cancel`.  Used to pin a wake-up at
        a transact deadline; canceling it on the success path keeps the
        heap free of dead entries.
        """
        marker = _Marker()
        self.at(time, marker)
        return marker

    def cancel(self, marker: _Marker) -> None:
        """Cancel a queued marker (idempotent).

        Cancellation is lazy: the heap entry stays until it surfaces,
        then is skipped without advancing ``events_processed`` or
        running hooks.  ``pending`` reflects the cancellation at once.
        Canceling a marker that already fired (e.g. a transact whose
        response arrived exactly at the deadline) is a no-op.
        """
        if not marker.canceled and not marker.fired:
            marker.canceled = True
            self._canceled += 1

    def add_hook(self, hook: EventHook) -> None:
        """Call ``hook(time, callback)`` before each event executes.

        Hooks are the profiling seam: an event-frequency profiler or a
        watchdog attaches here without subclassing the simulator.
        """
        self._hooks.append(hook)

    def remove_hook(self, hook: EventHook) -> None:
        self._hooks.remove(hook)

    def _step(self) -> bool:
        queue = self._queue
        while queue:
            time, _, callback = heapq.heappop(queue)
            if callback.__class__ is _Marker:
                if callback.canceled:
                    self._canceled -= 1
                    continue
                callback.fired = True
            if time < self.now:
                raise RuntimeError("event queue went backwards in time")
            self.now = time
            self._processed += 1
            if _obs.ENABLED:
                _get_registry().counter("sim.events").inc()
            elif _obs.COUNTERS:
                # Batched tiers: one attribute increment per event; the
                # accumulator folds into the registry once per capture.
                _BATCH.events += 1
            if self._hooks:
                for hook in self._hooks:
                    hook(time, callback)
            callback()
            return True
        return False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Pump events until the queue drains; returns events processed.

        At most ``max_events`` events run; if live events remain past
        that budget the simulation is declared an event storm.
        """
        count = 0
        while self._step():
            count += 1
            if count >= max_events and self.pending:
                raise RuntimeError(
                    f"simulation did not quiesce (event storm? "
                    f"{count} events processed, {self.pending} still pending)"
                )
        return count

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = 1_000_000
    ) -> None:
        """Pump events until ``predicate()`` holds.

        Safe to call re-entrantly from inside an event callback -- this
        is what makes synchronous ``transact`` possible.  Raises if the
        queue drains first, or if ``max_events`` events run without the
        predicate coming true.
        """
        count = 0
        while not predicate():
            if count >= max_events:
                raise RuntimeError(
                    f"predicate never satisfied (event storm? "
                    f"{count} events processed, {self.pending} still pending)"
                )
            if not self._step():
                raise RuntimeError(
                    "simulation went idle before the awaited condition held"
                )
            count += 1

    def advance(self, delta: float) -> None:
        """Move the clock forward with no events (pure think time)."""
        if delta < 0:
            raise ValueError("cannot advance backwards")
        self.now += delta
