"""A deterministic discrete-event simulator.

The time base for every networked model in the package.  Events are
``(time, sequence, callback)`` triples in a heap; ``run_until_idle``
pumps them in order.  :meth:`Simulator.run_until` supports re-entrant
pumping, which lets :meth:`repro.net.network.Network.transact` offer a
synchronous request/response API on top of one-way message events --
protocol code reads like straight-line code while timestamps stay
globally consistent.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from repro.obs import runtime as _obs
from repro.obs.metrics import get_registry as _get_registry

__all__ = ["Simulator"]

#: Signature of a per-event hook: ``hook(time, callback)`` runs just
#: before the event's callback executes.
EventHook = Callable[[float, Callable[[], None]], None]


class Simulator:
    """An event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._hooks: List[EventHook] = []

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._sequence), callback))

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        self.schedule(time - self.now, callback)

    def add_hook(self, hook: EventHook) -> None:
        """Call ``hook(time, callback)`` before each event executes.

        Hooks are the profiling seam: an event-frequency profiler or a
        watchdog attaches here without subclassing the simulator.
        """
        self._hooks.append(hook)

    def remove_hook(self, hook: EventHook) -> None:
        self._hooks.remove(hook)

    def _step(self) -> bool:
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        if time < self.now:
            raise RuntimeError("event queue went backwards in time")
        self.now = time
        self._processed += 1
        if _obs.ENABLED:
            _get_registry().counter("sim.events").inc()
        if self._hooks:
            for hook in self._hooks:
                hook(time, callback)
        callback()
        return True

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Pump events until the queue drains; returns events processed."""
        count = 0
        while self._step():
            count += 1
            if count > max_events:
                raise RuntimeError("simulation did not quiesce (event storm?)")
        return count

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = 1_000_000
    ) -> None:
        """Pump events until ``predicate()`` holds.

        Safe to call re-entrantly from inside an event callback -- this
        is what makes synchronous ``transact`` possible.  Raises if the
        queue drains first.
        """
        count = 0
        while not predicate():
            if not self._step():
                raise RuntimeError(
                    "simulation went idle before the awaited condition held"
                )
            count += 1
            if count > max_events:
                raise RuntimeError("predicate never satisfied (event storm?)")

    def advance(self, delta: float) -> None:
        """Move the clock forward with no events (pure think time)."""
        if delta < 0:
            raise ValueError("cannot advance backwards")
        self.now += delta
