"""Traffic traces: what a passive wire observer records.

Encryption hides payloads but not *that a packet of some size crossed a
link at some time* (paper section 4.3).  Every delivery appends a
:class:`PacketRecord` to the network's :class:`TrafficTrace`; the
timing-correlation adversary (:mod:`repro.adversary.timing`) works from
these records alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .addressing import Address

__all__ = ["PacketRecord", "TrafficTrace"]


@dataclass(slots=True)
class PacketRecord:
    """The metadata one packet leaks to a wire observer.

    Slotted but deliberately not frozen: one record is constructed per
    delivery on the hot path, and the frozen machinery would route all
    six constructor stores through ``object.__setattr__``.  Treat
    instances as immutable; nothing mutates one after construction.
    """

    time: float
    src: Address
    dst: Address
    size: int
    protocol: str
    packet_id: int


class TrafficTrace:
    """An append-only sequence of packet records."""

    def __init__(self) -> None:
        self._records: List[PacketRecord] = []

    def record(self, record: PacketRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self._records)

    @property
    def records(self) -> Tuple[PacketRecord, ...]:
        return tuple(self._records)

    def between(
        self, src: Optional[Address] = None, dst: Optional[Address] = None
    ) -> Tuple[PacketRecord, ...]:
        """Records filtered by endpoint(s)."""
        return tuple(
            r
            for r in self._records
            if (src is None or r.src == src) and (dst is None or r.dst == dst)
        )

    def involving(self, address: Address) -> Tuple[PacketRecord, ...]:
        return tuple(
            r for r in self._records if r.src == address or r.dst == address
        )

    def total_bytes(self) -> int:
        return sum(r.size for r in self._records)

    def window(self, start: float, end: float) -> Tuple[PacketRecord, ...]:
        return tuple(r for r in self._records if start <= r.time <= end)

    def to_jsonl(self) -> str:
        """One JSON object per record, in capture order.

        The wire-trace counterpart of the span/metric JSONL export:
        archiving both alongside each other gives a run's complete
        observable record.
        """
        return "\n".join(
            json.dumps(
                {
                    "time": r.time,
                    "src": str(r.src),
                    "dst": str(r.dst),
                    "size": r.size,
                    "protocol": r.protocol,
                    "packet_id": r.packet_id,
                },
                ensure_ascii=False,
                sort_keys=True,
            )
            for r in self._records
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "TrafficTrace":
        """Rebuild a trace from :meth:`to_jsonl` output."""
        trace = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            row = json.loads(line)
            trace.record(
                PacketRecord(
                    time=float(row["time"]),
                    src=Address(row["src"]),
                    dst=Address(row["dst"]),
                    size=int(row["size"]),
                    protocol=row["protocol"],
                    packet_id=int(row["packet_id"]),
                )
            )
        return trace
