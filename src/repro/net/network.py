"""The simulated network: hosts, links, delivery, observation.

A star of point-to-point links with per-pair latencies.  Delivery of a
packet does four things, in order:

1. the traffic trace records the packet's wire metadata;
2. every matching wire observer observes the payload *exterior* (taps
   hold no decryption keys) plus the sender identity, if the sending
   host exposes one (a user device's source address);
3. the destination host's entity observes the payload through its own
   keyring, and the sender identity;
4. the destination host's protocol handler runs; a non-``None`` return
   value is sent back as a response packet.

``transact`` layers a synchronous request/response call on top, so
protocol models read like ordinary code while the clock and trace stay
consistent.
"""

from __future__ import annotations

import itertools
import random as _random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import fastpath as _fastpath
from repro.core.entities import Entity
from repro.obs import runtime as _obs
from repro.obs.metrics import BATCH as _BATCH
from repro.obs.metrics import LATENCY_BUCKETS, SIZE_BUCKETS, get_registry
from repro.obs.tracing import NOOP_SPAN, get_tracer

from .addressing import Address, AddressAllocator
from .packets import Packet, estimate_size
from .sim import Simulator
from .trace import PacketRecord, TrafficTrace

__all__ = ["Network", "SimHost", "TransactTimeout", "WireObserver"]

Handler = Callable[[Packet], Any]

#: Cap on the network's ``_Delivery`` free list.  In-flight fan-out
#: beyond this just allocates fresh events.
_DELIVERY_POOL_LIMIT = 1024


class _Delivery:
    """A slotted, reusable delivery event.

    The fast path schedules one of these per packet instead of a
    ``lambda: self._deliver(packet)`` closure: the arguments live in
    slots rather than captured cells, and after firing the event
    returns to the owning network's free list to be re-armed by the
    next ``send`` -- steady-state scheduling allocates no closures.

    Preconditions are re-checked at *fire* time, not just send time:
    if a fault injector was installed (or observability enabled) while
    the packet was on the wire, delivery falls back to the fully
    instrumented ``_deliver`` so ``on_deliver`` crash/partition checks
    and span ceremony are never skipped.
    """

    __slots__ = ("network", "packet")

    def __init__(self, network: "Network", packet: Optional[Packet]) -> None:
        self.network = network
        self.packet = packet

    def __call__(self) -> None:
        network = self.network
        packet = self.packet
        self.packet = None
        pool = network._delivery_pool
        if len(pool) < _DELIVERY_POOL_LIMIT:
            pool.append(self)
        if (
            network._fault_injector is None
            and not _obs.ENABLED
            and not _fastpath.SLOW_PATH
        ):
            network._deliver_fast(packet)
        else:
            network._deliver(packet)


class TransactTimeout(RuntimeError):
    """A ``transact`` deadline expired with no response.

    Subclasses :class:`RuntimeError` so callers that treated a lost
    request as a generic simulator stall keep working; resilience
    policies catch this precisely to drive retry/fallback.
    """


class SimHost:
    """A network endpoint bound to an observing entity.

    ``identity`` is the labeled identity value that receiving a packet
    from this host reveals (a user device sets its owner's sensitive
    network identity; infrastructure hosts usually set none).
    """

    def __init__(
        self,
        name: str,
        entity: Entity,
        address: Address,
        network: "Network",
        identity: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.entity = entity
        self.address = address
        self.network = network
        self.identity = identity
        self._handlers: Dict[str, Handler] = {}

    def register(self, protocol: str, handler: Handler) -> None:
        """Install the handler for one protocol tag."""
        if protocol in self._handlers:
            raise ValueError(f"{self.name} already handles {protocol!r}")
        self._handlers[protocol] = handler

    def handler_for(self, protocol: str) -> Optional[Handler]:
        return self._handlers.get(protocol)

    def send(
        self,
        dst: Address,
        payload: Any,
        protocol: str,
        size: Optional[int] = None,
        flow: Optional[str] = None,
    ) -> None:
        """Fire-and-forget one-way send."""
        self.network.send(self, dst, payload, protocol, size=size, flow=flow)

    def transact(
        self,
        dst: Address,
        payload: Any,
        protocol: str,
        size: Optional[int] = None,
        flow: Optional[str] = None,
    ) -> Any:
        """Synchronous request/response; returns the response payload."""
        return self.network.transact(
            self, dst, payload, protocol, size=size, flow=flow
        )

    def __repr__(self) -> str:
        return f"SimHost({self.name!r}@{self.address})"


class WireObserver:
    """A passive tap: an entity that sees wire metadata and exteriors.

    ``watches`` restricts the tap to packets whose source or
    destination prefix matches (a tap inside one operator's network);
    by default the tap is global.
    """

    def __init__(
        self,
        entity: Entity,
        prefixes: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.entity = entity
        self.prefixes = prefixes
        self.trace = TrafficTrace()

    def watches(self, packet: Packet) -> bool:
        if self.prefixes is None:
            return True
        return packet.src.prefix in self.prefixes or packet.dst.prefix in self.prefixes

    def notice(self, packet: Packet, time: float) -> None:
        self.trace.record(
            PacketRecord(
                time=time,
                src=packet.src,
                dst=packet.dst,
                size=packet.size,
                protocol=packet.protocol,
                packet_id=packet.packet_id,
            )
        )
        if packet.sender_identity is not None:
            self.entity.observe(
                packet.sender_identity,
                time=time,
                channel="wire",
                session=packet.session,
                packet_id=packet.packet_id,
            )
        self.entity.observe(
            packet.payload,
            time=time,
            channel="wire",
            session=packet.session,
            packet_id=packet.packet_id,
        )


class Network:
    """The routing fabric plus the global trace and observer list."""

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        default_latency: float = 0.010,
        loss_rate: float = 0.0,
        loss_rng: Optional[_random.Random] = None,
    ) -> None:
        """``loss_rate`` (0..1) drops that fraction of packets for
        failure-injection experiments; losses use ``loss_rng`` so runs
        stay reproducible."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.simulator = simulator if simulator is not None else Simulator()
        self.default_latency = default_latency
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng if loss_rng is not None else _random.Random()
        self.packets_dropped = 0
        self.allocator = AddressAllocator()
        self.trace = TrafficTrace()
        self._hosts: Dict[Address, SimHost] = {}
        self._latencies: Dict[frozenset, float] = {}
        self._observers: List[WireObserver] = []
        self._responses: Dict[int, Any] = {}
        # Fast-path caches.  ``_observer_cache`` pre-resolves the
        # observer list per (src-prefix, dst-prefix) pair;
        # ``_latency_cache`` keys the per-pair latency by the ordered
        # address tuple (no frozenset allocation per send).  Both are
        # pure memoizations, invalidated on topology mutation.
        self._observer_cache: Dict[Tuple[str, str], Tuple["WireObserver", ...]] = {}
        self._latency_cache: Dict[Tuple[Address, Address], float] = {}
        self._delivery_pool: List[_Delivery] = []
        #: Deliveries that went through the batched fast pipeline --
        #: zero whenever observability or a fault injector is active
        #: (asserted by tests/test_drive_fastpath.py).
        self.fast_deliveries = 0
        # Per-network id counters: two identical runs on two Network
        # instances assign identical packet/request ids, which keeps
        # exported traces and provenance records byte-reproducible
        # (a module-global counter would leak state between runs).
        self._packet_ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        self.messages_delivered = 0
        self.bytes_delivered = 0
        # Conservation accounting: at every instant,
        #   packets_sent + packets_duplicated
        #     == messages_delivered + packets_dropped + packets_in_flight
        # (property-tested in tests/test_properties_network.py).
        self.packets_sent = 0
        self.packets_duplicated = 0
        self.packets_in_flight = 0
        #: Optional fault injector (see :mod:`repro.faults.runtime`):
        #: consulted on every send (loss/duplication/reordering/jitter)
        #: and every delivery (crashes, partitions).  ``None`` -- the
        #: default -- is a zero-overhead pass-through.
        self._fault_injector: Optional[Any] = None
        #: When set, ``transact`` raises :class:`TransactTimeout` after
        #: this many simulated seconds without a response instead of
        #: stalling until the queue drains.
        self.transact_timeout: Optional[float] = None
        #: Every delivered packet, in order -- simulation-side ground
        #: truth for adversary evaluations (not adversary-visible; the
        #: adversary gets only the metadata in ``trace``).
        self.delivered: List[Packet] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_host(
        self,
        name: str,
        entity: Entity,
        prefix: Optional[str] = None,
        identity: Optional[Any] = None,
    ) -> SimHost:
        """Create a host on a (possibly fresh) network prefix."""
        if prefix is None:
            prefix = self.allocator.network_prefix()
        address = self.allocator.allocate(prefix)
        host = SimHost(name, entity, address, self, identity=identity)
        self._hosts[address] = host
        return host

    def host_at(self, address: Address) -> SimHost:
        try:
            return self._hosts[address]
        except KeyError:
            raise KeyError(f"no host at {address}") from None

    def set_latency(self, a: Address, b: Address, latency: float) -> None:
        """Override the one-way latency between two hosts."""
        self._latencies[frozenset((a, b))] = latency
        self._latency_cache.clear()

    def latency(self, a: Address, b: Address) -> float:
        return self._latencies.get(frozenset((a, b)), self.default_latency)

    def _latency_fast(self, a: Address, b: Address) -> float:
        key = (a, b)
        cached = self._latency_cache.get(key)
        if cached is None:
            cached = self._latencies.get(frozenset(key), self.default_latency)
            self._latency_cache[key] = cached
        return cached

    def add_observer(self, observer: WireObserver) -> None:
        self._observers.append(observer)
        self._observer_cache.clear()

    def _observers_for(
        self, src_prefix: str, dst_prefix: str
    ) -> Tuple[WireObserver, ...]:
        """The observers watching this prefix pair (memoized).

        Exactly the observers for which ``watches(packet)`` is true --
        ``watches`` depends only on the two prefixes.
        """
        key = (src_prefix, dst_prefix)
        observers = self._observer_cache.get(key)
        if observers is None:
            observers = tuple(
                o
                for o in self._observers
                if o.prefixes is None
                or src_prefix in o.prefixes
                or dst_prefix in o.prefixes
            )
            self._observer_cache[key] = observers
        return observers

    def hosts(self) -> List[SimHost]:
        """Every host, in address-allocation order."""
        return list(self._hosts.values())

    def set_fault_injector(self, injector: Any) -> None:
        """Install the (single) fault injector for this network."""
        if self._fault_injector is not None:
            raise RuntimeError("network already has a fault injector")
        self._fault_injector = injector

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def send(
        self,
        src_host: SimHost,
        dst: Address,
        payload: Any,
        protocol: str,
        size: Optional[int] = None,
        request_id: Optional[int] = None,
        response_to: Optional[int] = None,
        flow: Optional[str] = None,
    ) -> Packet:
        """Schedule a one-way packet; returns it (already in flight).

        ``flow`` (optional) names a multi-packet interaction so that
        observations from its packets stay linkable at the receiver --
        a TLS session, a cellular attach procedure.
        """
        simulator = self.simulator
        packet = Packet(
            src=src_host.address,
            dst=dst,
            protocol=protocol,
            payload=payload,
            size=size if size is not None else estimate_size(payload),
            packet_id=next(self._packet_ids),
            sender_identity=src_host.identity,
            request_id=request_id,
            response_to=response_to,
            sent_at=simulator.now,
            flow=flow,
        )
        self.packets_sent += 1
        if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
            self._count_dropped()
            return packet  # lost in transit: never delivered
        injector = self._fault_injector
        if injector is None and not _obs.ENABLED and not _fastpath.SLOW_PATH:
            sampler = _obs.SAMPLER
            if sampler is not None and sampler.decide("deliver"):
                # Sampled tier, head decision says trace: schedule an
                # explicitly traced delivery, capturing the span active
                # now so the causal parent survives the flight.
                origin = get_tracer().current_span()
                self.packets_in_flight += 1
                simulator.schedule(
                    self._latency_fast(src_host.address, dst),
                    lambda: self._deliver(packet, origin, True),
                )
                return packet
            # Fast path: exactly one copy, no injector consult, no
            # span capture -- schedule a pooled slotted event instead
            # of a closure.
            self.packets_in_flight += 1
            pool = self._delivery_pool
            if pool:
                event = pool.pop()
                event.packet = packet
            else:
                event = _Delivery(self, packet)
            simulator.schedule(self._latency_fast(src_host.address, dst), event)
            return packet
        delay = self.latency(src_host.address, dst)
        delays = [delay]
        if injector is not None:
            impaired = injector.on_send(packet, delay)
            if impaired is not None:
                if not impaired:
                    self._count_dropped()
                    return packet  # injected loss / crash / partition
                delays = impaired
                self.packets_duplicated += len(delays) - 1
        if _obs.TRACING:
            # Capture the span active *now* so the delivery -- which
            # fires later, outside any ``with`` block -- still links
            # causally to whatever sent it.  In ``sampled`` mode the
            # trace decision itself is made at fire time (per copy).
            origin = get_tracer().current_span()
            for copy_delay in delays:
                self.packets_in_flight += 1
                self.simulator.schedule(
                    copy_delay, lambda: self._deliver(packet, origin)
                )
        else:
            for copy_delay in delays:
                self.packets_in_flight += 1
                self.simulator.schedule(copy_delay, lambda: self._deliver(packet))
        return packet

    def _count_dropped(self) -> None:
        self.packets_dropped += 1
        if _obs.ENABLED:
            get_registry().counter("net.packets_dropped").inc()
        elif _obs.COUNTERS:
            _BATCH.dropped += 1

    def _deliver(self, packet: Packet, origin_span=None, traced=None) -> None:
        self.packets_in_flight -= 1
        if self._fault_injector is not None and not self._fault_injector.on_deliver(
            packet
        ):
            # The destination crashed (or the link partitioned) while
            # this packet was on the wire.
            self._count_dropped()
            return
        if traced is None:
            if _obs.ENABLED:
                traced = True
            else:
                sampler = _obs.SAMPLER
                traced = sampler is not None and sampler.decide("deliver")
        if not traced:
            if _obs.COUNTERS:
                now = self.simulator.now
                _BATCH.note_delivery(
                    packet.size,
                    now - packet.sent_at if packet.sent_at is not None else None,
                )
            return self._deliver_inner(packet)
        tracer = get_tracer()
        now = self.simulator.now
        if _obs.ENABLED:
            registry = get_registry()
            registry.counter("net.messages").inc()
            registry.counter("net.bytes").inc(packet.size)
            registry.histogram("net.packet_bytes", SIZE_BUCKETS).observe(
                packet.size
            )
            if packet.sent_at is not None:
                registry.histogram("net.hop_latency", LATENCY_BUCKETS).observe(
                    now - packet.sent_at
                )
        else:
            # Sampled tier: the traced subset still accounts through
            # the batch so metric totals cover *every* delivery.
            _BATCH.note_delivery(
                packet.size,
                now - packet.sent_at if packet.sent_at is not None else None,
            )
        # A delivery whose origin lies outside the network layer (a
        # one-way ``send`` from protocol or scenario code) gets a
        # synthetic ``transact`` wrapper so every delivery span sits
        # under a transact ancestor, mirroring the request/response
        # case.  Deliveries caused by other network activity (mix
        # forwarding, responses) parent to the originating span.
        parent = origin_span
        wrapper = None
        if parent is None or getattr(parent, "kind", "") != "net":
            wrapper = tracer.span(
                "transact",
                kind="net",
                sim_time=packet.sent_at if packet.sent_at is not None else now,
                parent=parent,
                protocol=packet.protocol,
                one_way=True,
            )
            wrapper.__enter__()
            parent = wrapper
        span = tracer.span(
            "deliver",
            kind="net",
            sim_time=packet.sent_at if packet.sent_at is not None else now,
            parent=parent,
            src=str(packet.src),
            dst=str(packet.dst),
            protocol=packet.protocol,
            bytes=packet.size,
            packet_id=packet.packet_id,
        )
        try:
            with span:
                self._deliver_inner(packet)
                span.end_sim(self.simulator.now)
        finally:
            if wrapper is not None:
                wrapper.end_sim(self.simulator.now)
                wrapper.__exit__(None, None, None)

    def _deliver_fast(self, packet: Packet) -> None:
        """The batched delivery pipeline.

        Taken only when full observability is off (the ``off`` /
        ``counters`` tiers, and the unsampled remainder of ``sampled``),
        no fault injector is installed, and ``REPRO_SLOW_PATH`` is
        unset; semantically identical to ``_deliver`` +
        ``_deliver_inner`` under those preconditions (the differential
        goldens in tests/test_drive_fastpath.py pin byte-identical
        artifacts).  Differences are purely mechanical: one merged
        frame, memoized observer lists, batched ledger appends via
        ``Entity.observe``'s fast route, and -- in the batched obs
        tiers -- one slotted accumulator update instead of per-value
        registry writes.
        """
        self.packets_in_flight -= 1
        self.fast_deliveries += 1
        now = self.simulator.now
        if _obs.COUNTERS:
            # ``counters`` / ``sampled`` tiers: stay on the fast path,
            # fold the delivery into the slotted batch accumulator.
            _BATCH.note_delivery(
                packet.size,
                now - packet.sent_at if packet.sent_at is not None else None,
            )
        self.trace.record(
            PacketRecord(
                time=now,
                src=packet.src,
                dst=packet.dst,
                size=packet.size,
                protocol=packet.protocol,
                packet_id=packet.packet_id,
            )
        )
        observers = self._observers_for(packet.src.prefix, packet.dst.prefix)
        if observers:
            for observer in observers:
                observer.notice(packet, now)
        host = self._hosts.get(packet.dst)
        if host is None:
            self.host_at(packet.dst)  # raises the canonical KeyError
        session = packet.session
        packet_id = packet.packet_id
        entity = host.entity
        if packet.sender_identity is not None:
            entity.observe(
                packet.sender_identity,
                time=now,
                channel="network-header",
                session=session,
                packet_id=packet_id,
            )
        entity.observe(
            packet.payload,
            time=now,
            channel=packet.protocol,
            session=session,
            packet_id=packet_id,
        )
        self.messages_delivered += 1
        self.bytes_delivered += packet.size
        self.delivered.append(packet)

        if packet.response_to is not None:
            self._responses[packet.response_to] = packet.payload
            return
        handler = host._handlers.get(packet.protocol)
        if handler is None:
            raise KeyError(
                f"host {host.name} has no handler for {packet.protocol!r}"
            )
        result = handler(packet)
        if result is not None and packet.request_id is not None:
            self.send(
                host,
                packet.src,
                result,
                packet.protocol,
                response_to=packet.request_id,
                flow=packet.flow,
            )

    def _deliver_inner(self, packet: Packet) -> None:
        now = self.simulator.now
        self.trace.record(
            PacketRecord(
                time=now,
                src=packet.src,
                dst=packet.dst,
                size=packet.size,
                protocol=packet.protocol,
                packet_id=packet.packet_id,
            )
        )
        for observer in self._observers:
            if observer.watches(packet):
                observer.notice(packet, now)
        host = self.host_at(packet.dst)
        if packet.sender_identity is not None:
            host.entity.observe(
                packet.sender_identity,
                time=now,
                channel="network-header",
                session=packet.session,
                packet_id=packet.packet_id,
            )
        host.entity.observe(
            packet.payload,
            time=now,
            channel=packet.protocol,
            session=packet.session,
            packet_id=packet.packet_id,
        )
        self.messages_delivered += 1
        self.bytes_delivered += packet.size
        self.delivered.append(packet)

        if packet.is_response:
            self._responses[packet.response_to] = packet.payload
            return
        handler = host.handler_for(packet.protocol)
        if handler is None:
            raise KeyError(
                f"host {host.name} has no handler for {packet.protocol!r}"
            )
        result = handler(packet)
        if result is not None and packet.request_id is not None:
            self.send(
                host,
                packet.src,
                result,
                packet.protocol,
                response_to=packet.request_id,
                flow=packet.flow,
            )

    def transact(
        self,
        src_host: SimHost,
        dst: Address,
        payload: Any,
        protocol: str,
        size: Optional[int] = None,
        flow: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Send a request and pump the simulation until its response.

        Nested calls from inside handlers are fine (the simulator's
        ``run_until`` is re-entrant), so a resolver may ``transact``
        upstream while serving a client's ``transact``.

        ``timeout`` (or, when ``None``, the network-wide
        ``transact_timeout``) bounds the wait in simulated seconds;
        expiry raises :class:`TransactTimeout`.  With no timeout a
        lost request stalls until the queue drains, which raises the
        simulator's generic idle error.
        """
        request_id = next(self._request_ids)
        effective = timeout if timeout is not None else self.transact_timeout
        simulator = self.simulator
        responses = self._responses
        # The span is hoisted behind the obs gates: with tracing off
        # (or this transact unsampled) the shared NOOP_SPAN stands in,
        # so the hot path pays two module-attribute reads -- no tracer
        # fetch, no kwargs dict, no ``str()`` of either address.
        if _obs.ENABLED or (
            _obs.SAMPLER is not None and _obs.SAMPLER.decide("transact")
        ):
            span = get_tracer().span(
                "transact",
                kind="net",
                sim_time=simulator.now,
                src=str(src_host.address),
                dst=str(dst),
                protocol=protocol,
            )
        else:
            span = NOOP_SPAN
        with span:
            self.send(
                src_host,
                dst,
                payload,
                protocol,
                size=size,
                request_id=request_id,
                flow=flow,
            )
            if effective is None:
                simulator.run_until(lambda: request_id in responses)
            else:
                deadline = simulator.now + effective
                # The deadline marker keeps the queue non-empty up to
                # the deadline, so ``run_until`` times out instead of
                # raising its generic idle error.  It is canceled on
                # the success path so completed transacts leave no
                # dead heap entries behind.
                marker = simulator.marker_at(deadline)
                simulator.run_until(
                    lambda: request_id in responses
                    or simulator.now >= deadline
                )
                if request_id not in responses:
                    span.end_sim(simulator.now)
                    raise TransactTimeout(
                        f"no response to {protocol!r} request from {dst}"
                        f" within {effective:g}s"
                    )
                simulator.cancel(marker)
            span.end_sim(simulator.now)
            return responses.pop(request_id)

    def run(self) -> int:
        """Pump until idle (for one-way protocols such as mixing)."""
        return self.simulator.run_until_idle()
