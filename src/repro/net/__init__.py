"""Discrete-event network simulation with information-flow observation.

The substrate standing in for the real Internet: hosts bound to
observing entities, point-to-point links with latencies, passive wire
taps, and a global traffic trace.  See DESIGN.md for why a simulator
preserves the behaviour the paper's analyses depend on.
"""

from .addressing import Address, AddressAllocator
from .network import Network, SimHost, WireObserver
from .packets import Packet, estimate_size
from .sim import Simulator
from .trace import PacketRecord, TrafficTrace

__all__ = [
    "Address",
    "AddressAllocator",
    "Network",
    "SimHost",
    "WireObserver",
    "Packet",
    "estimate_size",
    "Simulator",
    "PacketRecord",
    "TrafficTrace",
]
