"""Packets: the unit of simulated transmission.

A packet carries an arbitrary payload structure (labeled values and
sealed envelopes from :mod:`repro.core.values`), a protocol tag, a
size in bytes (estimated from the payload when not given), and the
request/response bookkeeping used by
:meth:`repro.net.network.Network.transact`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro import fastpath as _fastpath
from repro.core.values import Aggregate, LabeledValue, Sealed

from .addressing import Address

__all__ = ["Packet", "estimate_size"]

_SEALED_OVERHEAD = 48  # encapsulated key + AEAD tag, roughly
_DEFAULT_ITEM_SIZE = 16


def estimate_size(payload: Any) -> int:
    """A byte-size estimate for a payload structure.

    Real enough for bandwidth-overhead comparisons: bytes and strings
    count their length, sealed envelopes add header overhead, numbers
    count as words.

    Sizes of :class:`Sealed` and :class:`LabeledValue` instances are
    memoized on the instance (both are immutable), so an onion that is
    forwarded through five hops is walked once, not five times.  Under
    ``REPRO_SLOW_PATH=1`` the uncached recursion runs instead.
    """
    if _fastpath.SLOW_PATH:
        return _estimate_size_uncached(payload)
    return _estimate_size_cached(payload)


def _estimate_size_uncached(payload: Any) -> int:
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, (payload.bit_length() + 7) // 8)
    if isinstance(payload, float):
        return 8
    if isinstance(payload, LabeledValue):
        return _estimate_size_uncached(payload.payload)
    if isinstance(payload, Sealed):
        return _SEALED_OVERHEAD + sum(
            _estimate_size_uncached(c) for c in payload.contents
        )
    if isinstance(payload, Aggregate):
        return 8 * max(1, len(payload.contributors))
    if isinstance(payload, dict):
        return sum(
            _estimate_size_uncached(k) + _estimate_size_uncached(v)
            for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(_estimate_size_uncached(item) for item in payload)
    return _DEFAULT_ITEM_SIZE


def _estimate_size_cached(payload: Any) -> int:
    # Exact-class checks first: payload trees are built from these
    # concrete classes and ``cls is X`` beats the isinstance ladder.
    cls = payload.__class__
    if cls is LabeledValue:
        size = payload._size_cache
        if size is None:
            size = _estimate_size_cached(payload.payload)
            payload._size_cache = size
        return size
    if cls is Sealed:
        size = payload._size_cache
        if size is None:
            size = _SEALED_OVERHEAD + sum(
                _estimate_size_cached(c) for c in payload.contents
            )
            payload._size_cache = size
        return size
    if cls is str:
        return len(payload.encode("utf-8"))
    if cls is bytes:
        return len(payload)
    if cls is tuple or cls is list:
        return sum(_estimate_size_cached(item) for item in payload)
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, (payload.bit_length() + 7) // 8)
    if isinstance(payload, float):
        return 8
    if isinstance(payload, LabeledValue):
        size = payload._size_cache
        if size is None:
            size = _estimate_size_cached(payload.payload)
            payload._size_cache = size
        return size
    if isinstance(payload, Sealed):
        size = payload._size_cache
        if size is None:
            size = _SEALED_OVERHEAD + sum(
                _estimate_size_cached(c) for c in payload.contents
            )
            payload._size_cache = size
        return size
    if isinstance(payload, Aggregate):
        return 8 * max(1, len(payload.contributors))
    if isinstance(payload, dict):
        return sum(
            _estimate_size_cached(k) + _estimate_size_cached(v)
            for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(_estimate_size_cached(item) for item in payload)
    return _DEFAULT_ITEM_SIZE


@dataclass(slots=True)
class Packet:
    """One simulated datagram/stream chunk.

    ``packet_id`` is a required field: ids are issued by the owning
    :class:`~repro.net.network.Network`'s per-instance counter so that
    two runs in one process produce byte-identical traces.  (An earlier
    module-global fallback counter leaked state across runs whenever a
    packet was built outside a network.)
    """

    src: Address
    dst: Address
    protocol: str
    payload: Any
    size: int
    packet_id: int
    sender_identity: Optional[LabeledValue] = None
    request_id: Optional[int] = None
    response_to: Optional[int] = None
    sent_at: float = 0.0
    flow: Optional[str] = None
    _session: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def session(self) -> str:
        """The linkage-session tag observations of this packet carry.

        On the fast path it is computed once and cached: the same
        string object is handed to every observation of this packet,
        so downstream dict keys hash an already-seen instance.  Under
        ``REPRO_SLOW_PATH=1`` the string is rebuilt per access, which
        is what every access cost before the cache existed.
        """
        if _fastpath.SLOW_PATH:
            return self.flow if self.flow is not None else f"pkt:{self.packet_id}"
        session = self._session
        if session is None:
            session = (
                self.flow if self.flow is not None else f"pkt:{self.packet_id}"
            )
            self._session = session
        return session

    @property
    def is_response(self) -> bool:
        return self.response_to is not None

    def __str__(self) -> str:
        kind = f"resp->{self.response_to}" if self.is_response else f"req#{self.request_id}"
        return (
            f"Packet({self.protocol} {self.src}->{self.dst} "
            f"{self.size}B {kind})"
        )
