"""Packets: the unit of simulated transmission.

A packet carries an arbitrary payload structure (labeled values and
sealed envelopes from :mod:`repro.core.values`), a protocol tag, a
size in bytes (estimated from the payload when not given), and the
request/response bookkeeping used by
:meth:`repro.net.network.Network.transact`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.values import Aggregate, LabeledValue, Sealed

from .addressing import Address

__all__ = ["Packet", "estimate_size"]

_packet_ids = itertools.count(1)

_SEALED_OVERHEAD = 48  # encapsulated key + AEAD tag, roughly
_DEFAULT_ITEM_SIZE = 16


def estimate_size(payload: Any) -> int:
    """A byte-size estimate for a payload structure.

    Real enough for bandwidth-overhead comparisons: bytes and strings
    count their length, sealed envelopes add header overhead, numbers
    count as words.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, (payload.bit_length() + 7) // 8)
    if isinstance(payload, float):
        return 8
    if isinstance(payload, LabeledValue):
        return estimate_size(payload.payload)
    if isinstance(payload, Sealed):
        return _SEALED_OVERHEAD + sum(estimate_size(c) for c in payload.contents)
    if isinstance(payload, Aggregate):
        return 8 * max(1, len(payload.contributors))
    if isinstance(payload, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in payload)
    return _DEFAULT_ITEM_SIZE


@dataclass
class Packet:
    """One simulated datagram/stream chunk."""

    src: Address
    dst: Address
    protocol: str
    payload: Any
    size: int
    sender_identity: Optional[LabeledValue] = None
    request_id: Optional[int] = None
    response_to: Optional[int] = None
    sent_at: float = 0.0
    flow: Optional[str] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def session(self) -> str:
        """The linkage-session tag observations of this packet carry."""
        return self.flow if self.flow is not None else f"pkt:{self.packet_id}"

    @property
    def is_response(self) -> bool:
        return self.response_to is not None

    def __str__(self) -> str:
        kind = f"resp->{self.response_to}" if self.is_response else f"req#{self.request_id}"
        return (
            f"Packet({self.protocol} {self.src}->{self.dst} "
            f"{self.size}B {kind})"
        )
