"""Fault injection: decoupling verdicts under failure.

The paper's argument is made on happy paths; this package asks what
the knowledge tables look like when the infrastructure degrades.  A
declarative, seeded :class:`FaultPlan` (link loss/duplication/
reordering/jitter, host crashes, partitions, curious-relay
promotions) compiles into network hooks via :class:`FaultRuntime`,
and protocol-level :class:`ResiliencePolicy` drives timeout/retry/
fallback -- the availability choice that silently re-couples identity
and data.  ``run_scenario(..., faults=plan)`` applies a plan to any
registered scenario; see ``docs/ROBUSTNESS.md``.
"""

from .plan import FaultPlan, FaultPlanError, HostCrash, LinkFault, Partition, coerce_plan
from .policy import FaultStats, ResiliencePolicy
from .runtime import FaultPlanHook, FaultRuntime

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "LinkFault",
    "HostCrash",
    "Partition",
    "coerce_plan",
    "ResiliencePolicy",
    "FaultStats",
    "FaultRuntime",
    "FaultPlanHook",
]
