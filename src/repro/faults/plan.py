"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is pure data -- a seeded description of link
impairments (loss, duplication, reordering, jitter), host crashes,
network partitions, and curious-relay promotions.  Plans serialize to
and from JSON so the CLI can load them from files
(``repro demo odoh --faults plan.json``) and sweeps can construct them
programmatically.  Compiling a plan into simulator behaviour is the
job of :class:`~repro.faults.runtime.FaultRuntime`; this module never
imports the network.

Host references are glob patterns over ``SimHost.name`` (``"*"``,
``"mix-*"``, ``"oblivious-proxy"``), matched case-sensitively with
:func:`fnmatch.fnmatchcase`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Optional, Tuple

__all__ = ["FaultPlanError", "LinkFault", "HostCrash", "Partition", "FaultPlan"]


class FaultPlanError(ValueError):
    """A structurally invalid fault plan."""


def _check_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1), got {value}")
    return value


@dataclass(frozen=True)
class LinkFault:
    """An impairment on every link matching ``src -> dst``.

    ``loss``, ``duplicate``, and ``reorder`` are per-packet
    probabilities in ``[0, 1)``; ``jitter`` is the maximum extra
    one-way delay in simulated seconds (drawn uniformly).  A reordered
    packet is delayed past later traffic on the same link rather than
    swapped in place, which is how real queues misorder.
    """

    src: str = "*"
    dst: str = "*"
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("loss", self.loss)
        _check_rate("duplicate", self.duplicate)
        _check_rate("reorder", self.reorder)
        if float(self.jitter) < 0.0:
            raise FaultPlanError(f"jitter must be >= 0, got {self.jitter}")

    def matches(self, src_name: str, dst_name: str) -> bool:
        return fnmatchcase(src_name, self.src) and fnmatchcase(dst_name, self.dst)

    def is_null(self) -> bool:
        return (
            self.loss == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.jitter == 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "loss": self.loss,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "jitter": self.jitter,
        }


@dataclass(frozen=True)
class HostCrash:
    """Hosts matching ``host`` go silent at simulated time ``at``.

    A crashed host neither receives packets nor sends new ones; its
    in-flight traffic is dropped on arrival.  There is no recovery --
    the plan models fail-stop, the interesting case for fallback.
    """

    host: str
    at: float = 0.0

    def __post_init__(self) -> None:
        if float(self.at) < 0.0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at}")

    def to_dict(self) -> Dict[str, Any]:
        return {"host": self.host, "at": self.at}


@dataclass(frozen=True)
class Partition:
    """No traffic crosses between host groups ``a`` and ``b``.

    Active from ``start`` until ``end`` (``None`` = forever).  Traffic
    *within* a group is unaffected; packets caught mid-flight when the
    partition begins are dropped on arrival.
    """

    a: Tuple[str, ...]
    b: Tuple[str, ...]
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", tuple(self.a))
        object.__setattr__(self, "b", tuple(self.b))
        if not self.a or not self.b:
            raise FaultPlanError("both partition groups must be non-empty")
        if float(self.start) < 0.0:
            raise FaultPlanError(f"partition start must be >= 0, got {self.start}")
        if self.end is not None and float(self.end) <= float(self.start):
            raise FaultPlanError("partition end must be after start")

    def active(self, now: float) -> bool:
        if now < self.start:
            return False
        return self.end is None or now < self.end

    def severs(self, src_name: str, dst_name: str) -> bool:
        src_a = any(fnmatchcase(src_name, pat) for pat in self.a)
        src_b = any(fnmatchcase(src_name, pat) for pat in self.b)
        dst_a = any(fnmatchcase(dst_name, pat) for pat in self.a)
        dst_b = any(fnmatchcase(dst_name, pat) for pat in self.b)
        return (src_a and dst_b) or (src_b and dst_a)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": list(self.a),
            "b": list(self.b),
            "start": self.start,
            "end": self.end,
        }


@dataclass(frozen=True)
class FaultPlan:
    """The full failure scenario for one run.

    ``seed`` drives every probabilistic draw the runtime makes, so the
    same plan against the same scenario reproduces the faulty run
    byte-for-byte.  ``curious`` promotes matching hosts to
    honest-but-curious relays: each gains a wire tap on its own
    network prefix, feeding extra observations into the decoupling
    analysis without changing delivery at all.
    """

    seed: int = 0
    links: Tuple[LinkFault, ...] = ()
    crashes: Tuple[HostCrash, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    curious: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "curious", tuple(self.curious))

    def is_null(self) -> bool:
        """True when the plan cannot change a run in any way."""
        return (
            all(link.is_null() for link in self.links)
            and not self.crashes
            and not self.partitions
            and not self.curious
        )

    def can_drop(self) -> bool:
        """True when the plan can make a request go unanswered."""
        return (
            any(link.loss > 0.0 for link in self.links)
            or bool(self.crashes)
            or bool(self.partitions)
        )

    # -- constructors --------------------------------------------------

    @classmethod
    def uniform_loss(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Every link loses ``rate`` of its packets."""
        return cls(seed=seed, links=(LinkFault(loss=rate),))

    @classmethod
    def crash(cls, host: str, at: float = 0.0, seed: int = 0) -> "FaultPlan":
        """One host fail-stops at ``at``."""
        return cls(seed=seed, crashes=(HostCrash(host=host, at=at),))

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "links": [link.to_dict() for link in self.links],
            "crashes": [crash.to_dict() for crash in self.crashes],
            "partitions": [part.to_dict() for part in self.partitions],
            "curious": list(self.curious),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        known = {"seed", "links", "crashes", "partitions", "curious"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys: {', '.join(unknown)}")
        try:
            links = tuple(LinkFault(**item) for item in data.get("links", ()))
            crashes = tuple(HostCrash(**item) for item in data.get("crashes", ()))
            partitions = tuple(Partition(**item) for item in data.get("partitions", ()))
        except TypeError as error:
            raise FaultPlanError(f"malformed fault plan: {error}") from None
        curious = data.get("curious", ())
        if not all(isinstance(name, str) for name in curious):
            raise FaultPlanError("curious entries must be host-name patterns")
        return cls(
            seed=int(data.get("seed", 0)),
            links=links,
            crashes=crashes,
            partitions=partitions,
            curious=tuple(curious),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") from None
        return cls.from_dict(data)


def coerce_plan(faults: Any) -> FaultPlan:
    """Accept a :class:`FaultPlan` or a plain mapping (parsed JSON)."""
    if isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, dict):
        return FaultPlan.from_dict(faults)
    raise FaultPlanError(
        f"faults must be a FaultPlan or a mapping, got {type(faults).__name__}"
    )
