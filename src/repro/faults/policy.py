"""Resilience policies and fault-run accounting.

A :class:`ResiliencePolicy` is the protocol-level answer to the
network-level failures a :class:`~repro.faults.plan.FaultPlan`
injects: how long a synchronous request waits, how many times it
retries with what backoff, and whether an explicit *fallback* runs
after the retries are exhausted.  The fallback is the interesting
part for the decoupling analysis -- real deployments fall back from
the decoupled path to a direct one (ODoH proxy down -> direct DoH),
and that availability choice silently re-couples identity and data.

:class:`FaultStats` accumulates what actually happened during a
faulted run; it becomes the ``faults`` section of the run's JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ResiliencePolicy", "FaultStats"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Timeout/retry/backoff parameters for faulted ``transact`` calls.

    ``timeout`` bounds each attempt in simulated seconds (link
    latencies default to 10 ms, so 250 ms is ~12 round trips of
    headroom).  ``retries`` counts *re*-tries after the first attempt;
    backoff before retry ``n`` (1-based) is
    ``backoff * backoff_factor ** (n - 1)`` simulated seconds.
    """

    timeout: float = 0.25
    retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout <= 0.0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0.0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_before_retry(self, retry: int) -> float:
        """Backoff preceding 1-based retry number ``retry``."""
        return self.backoff * self.backoff_factor ** (retry - 1)


@dataclass
class FaultStats:
    """What the fault runtime did to one run."""

    attempts: int = 0
    successes: int = 0
    retries: int = 0
    timeouts: int = 0
    fallbacks: int = 0
    failures: int = 0
    loss_drops: int = 0
    crash_drops: int = 0
    partition_drops: int = 0
    duplicates: int = 0
    reordered: int = 0
    jittered: int = 0
    crashes: int = 0
    curious_taps: int = 0
    fallback_labels: List[str] = field(default_factory=list)
    phase_errors: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "fallbacks": self.fallbacks,
            "failures": self.failures,
            "loss_drops": self.loss_drops,
            "crash_drops": self.crash_drops,
            "partition_drops": self.partition_drops,
            "duplicates": self.duplicates,
            "reordered": self.reordered,
            "jittered": self.jittered,
            "crashes": self.crashes,
            "curious_taps": self.curious_taps,
            "fallback_labels": list(self.fallback_labels),
            "phase_errors": list(self.phase_errors),
        }
