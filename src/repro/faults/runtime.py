"""The fault runtime: compiling a plan into simulator behaviour.

:class:`FaultRuntime` sits between a :class:`~repro.faults.plan.FaultPlan`
and a live :class:`~repro.net.network.Network`.  Installation registers
the runtime as the network's fault injector (consulted on every send
and every delivery), schedules crash events, arms the network's
``transact`` timeout when the plan can actually make a request go
unanswered, and promotes curious relays to wire observers.

The runtime also implements the *protocol-level* half of resilience:
:meth:`attempt` wraps one synchronous operation in the policy's
timeout/retry/backoff loop, running an explicit fallback -- the
re-coupling path the paper never models -- once retries are
exhausted.  :class:`FaultPlanHook` is the scenario-runtime adapter: a
:data:`~repro.scenario.runtime.PhaseHook` that installs the runtime
after ``build`` (hosts exist, no traffic yet), which is how
``run_scenario(..., faults=plan)`` reaches all 21 registered specs
without touching their code.

Determinism: one ``random.Random(plan.seed)`` drives every draw, and
draws happen in packet-send order, so identical plans reproduce
identical runs byte-for-byte.
"""

from __future__ import annotations

import random
from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, List, Optional

from repro.net.network import Network, SimHost, TransactTimeout, WireObserver
from repro.net.packets import Packet
from repro.obs import runtime as _obs
from repro.obs.metrics import get_registry
from repro.obs.tracing import NOOP_SPAN, get_tracer

from .plan import FaultPlan
from .policy import FaultStats, ResiliencePolicy

__all__ = ["FaultRuntime", "FaultPlanHook"]

#: How far past its nominal latency a reordered packet is pushed, as a
#: multiple of that latency -- enough to land behind the next couple
#: of sends on the same link.
_REORDER_PENALTY = 2.5

#: Where a duplicated copy lands relative to the original, as a
#: multiple of the link latency.
_DUPLICATE_LAG = 0.5


class FaultRuntime:
    """One plan, one network, one seeded stream of failures."""

    def __init__(
        self,
        plan: FaultPlan,
        network: Network,
        policy: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.plan = plan
        self.network = network
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.rng = random.Random(plan.seed)
        self.stats = FaultStats()
        self._down: Dict[str, float] = {}  # host name -> crash time
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Arm the network.  Call once, after hosts exist."""
        if self._installed:
            raise RuntimeError("fault runtime already installed")
        self._installed = True
        self.network.set_fault_injector(self)
        if self.plan.can_drop():
            # Only a plan that can lose a request needs the transact
            # timeout; arming it unconditionally would add deadline
            # events (and change event counts) for purely-curious
            # plans that must not perturb delivery at all.
            self.network.transact_timeout = self.policy.timeout
        for crash in self.plan.crashes:
            self._schedule_crash(crash.host, crash.at)
        for pattern in self.plan.curious:
            self._promote_curious(pattern)

    def _schedule_crash(self, pattern: str, at: float) -> None:
        simulator = self.network.simulator

        def fire() -> None:
            for host in self._hosts_matching(pattern):
                if host.name not in self._down:
                    self._down[host.name] = simulator.now
                    self.stats.crashes += 1
                    if _obs.COUNTERS:
                        get_registry().counter("faults.host_crashes").inc()

        if at <= simulator.now:
            fire()
        else:
            simulator.at(at, fire)

    def _promote_curious(self, pattern: str) -> None:
        for host in self._hosts_matching(pattern):
            observer = WireObserver(host.entity, prefixes=(host.address.prefix,))
            self.network.add_observer(observer)
            self.stats.curious_taps += 1
            if _obs.COUNTERS:
                get_registry().counter("faults.curious_taps").inc()

    def _hosts_matching(self, pattern: str) -> List[SimHost]:
        return [
            host
            for host in self.network.hosts()
            if fnmatchcase(host.name, pattern)
        ]

    # ------------------------------------------------------------------
    # Injector interface (called by Network)
    # ------------------------------------------------------------------

    def _host_name(self, address: Any) -> str:
        host = self.network._hosts.get(address)
        return host.name if host is not None else str(address)

    def _is_down(self, name: str) -> bool:
        return name in self._down

    def _severed(self, src_name: str, dst_name: str) -> bool:
        now = self.network.simulator.now
        return any(
            part.active(now) and part.severs(src_name, dst_name)
            for part in self.plan.partitions
        )

    def on_send(self, packet: Packet, delay: float) -> Optional[List[float]]:
        """Impair one outgoing packet.

        Returns ``None`` to leave the packet untouched, ``[]`` to drop
        it, or a list of delivery delays (one per copy -- length two
        means a duplicate).
        """
        src = self._host_name(packet.src)
        dst = self._host_name(packet.dst)
        if self._is_down(src) or self._is_down(dst):
            self.stats.crash_drops += 1
            self._count_drop("crash")
            return []
        if self._severed(src, dst):
            self.stats.partition_drops += 1
            self._count_drop("partition")
            return []
        loss = duplicate = reorder = jitter = 0.0
        matched = False
        for fault in self.plan.links:
            if fault.matches(src, dst):
                matched = True
                loss = max(loss, fault.loss)
                duplicate = max(duplicate, fault.duplicate)
                reorder = max(reorder, fault.reorder)
                jitter = max(jitter, fault.jitter)
        if not matched:
            return None
        if loss > 0.0 and self.rng.random() < loss:
            self.stats.loss_drops += 1
            self._count_drop("loss")
            return []
        impaired = delay
        if jitter > 0.0:
            impaired += self.rng.uniform(0.0, jitter)
            self.stats.jittered += 1
        if reorder > 0.0 and self.rng.random() < reorder:
            impaired += delay * _REORDER_PENALTY
            self.stats.reordered += 1
        delays = [impaired]
        if duplicate > 0.0 and self.rng.random() < duplicate:
            delays.append(impaired + delay * _DUPLICATE_LAG)
            self.stats.duplicates += 1
            if _obs.COUNTERS:
                get_registry().counter("faults.duplicates").inc()
        return delays

    def on_deliver(self, packet: Packet) -> bool:
        """Last-instant check: may this in-flight packet arrive?

        Catches packets that were legal when sent but whose
        destination crashed -- or whose link partitioned -- while they
        were on the wire.
        """
        dst = self._host_name(packet.dst)
        if self._is_down(dst):
            self.stats.crash_drops += 1
            self._count_drop("crash")
            return False
        src = self._host_name(packet.src)
        if self._severed(src, dst):
            self.stats.partition_drops += 1
            self._count_drop("partition")
            return False
        return True

    def _count_drop(self, cause: str) -> None:
        if _obs.COUNTERS:
            get_registry().counter(f"faults.drops.{cause}").inc()

    # ------------------------------------------------------------------
    # Protocol-level resilience
    # ------------------------------------------------------------------

    def attempt(
        self,
        op: Callable[[], Any],
        fallback: Optional[Callable[[], Any]] = None,
        label: str = "",
    ) -> Any:
        """Run ``op`` under the policy's timeout/retry/backoff loop.

        After retries are exhausted, run ``fallback`` (if any) -- and
        record that the run left its decoupled path, because the
        fallback is exactly where re-coupling happens.  Returns the
        operation's (or fallback's) result, or ``None`` when every
        avenue failed.
        """
        policy = self.policy
        simulator = self.network.simulator
        self.stats.attempts += 1
        for attempt_no in range(policy.retries + 1):
            if attempt_no > 0:
                self.stats.retries += 1
                self._sleep(policy.backoff_before_retry(attempt_no))
            try:
                result = op()
            except TransactTimeout:
                self.stats.timeouts += 1
                if _obs.COUNTERS:
                    get_registry().counter("faults.timeouts").inc()
                continue
            self.stats.successes += 1
            return result
        if fallback is not None:
            self.stats.fallbacks += 1
            self.stats.fallback_labels.append(label or "fallback")
            if _obs.COUNTERS:
                get_registry().counter("faults.fallbacks").inc()
            # Hoisted behind the tracing gate: with spans off this
            # skips the tracer fetch and the kwargs construction, not
            # just the span record.
            if _obs.TRACING:
                span = get_tracer().span(
                    "fallback",
                    kind="faults",
                    sim_time=simulator.now,
                    label=label or "fallback",
                )
            else:
                span = NOOP_SPAN
            try:
                with span:
                    result = fallback()
                    span.end_sim(simulator.now)
                self.stats.successes += 1
                return result
            except TransactTimeout:
                self.stats.timeouts += 1
        self.stats.failures += 1
        if _obs.COUNTERS:
            get_registry().counter("faults.failures").inc()
        return None

    def _sleep(self, duration: float) -> None:
        """Let ``duration`` of simulated time pass, pumping the queue.

        Not ``Simulator.advance``: delayed or duplicated packets may
        still be in flight, and jumping the clock past their events
        would corrupt the timeline.
        """
        if duration <= 0.0:
            return
        simulator = self.network.simulator
        deadline = simulator.now + duration
        simulator.at(deadline, lambda: None)
        simulator.run_until(lambda: simulator.now >= deadline)

    def guard_phase(self, phase: str, fn: Callable[[], Any]) -> Any:
        """Run one lifecycle phase, absorbing fault-induced errors.

        A faulted run must still reach ``analyze`` -- a half-driven
        world with a recorded error is the datum, not a crash.  Only
        ``drive``/``settle`` are guarded; programming errors in
        ``build``/``analyze`` should still raise.
        """
        try:
            return fn()
        except Exception as error:
            self.stats.phase_errors.append(
                f"{phase}: {type(error).__name__}: {error}"
            )
            if _obs.COUNTERS:
                get_registry().counter("faults.phase_errors").inc()
            return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The ``faults`` section attached to the finished run."""
        network = self.network
        return {
            "plan": self.plan.to_dict(),
            "policy": {
                "timeout": self.policy.timeout,
                "retries": self.policy.retries,
                "backoff": self.policy.backoff,
                "backoff_factor": self.policy.backoff_factor,
            },
            "stats": self.stats.to_dict(),
            "network": {
                "packets_sent": network.packets_sent,
                "packets_delivered": network.messages_delivered,
                "packets_dropped": network.packets_dropped,
                "packets_duplicated": network.packets_duplicated,
                "packets_in_flight": network.packets_in_flight,
            },
        }


class FaultPlanHook:
    """A :data:`~repro.scenario.runtime.PhaseHook` installing a plan.

    Attaches a :class:`FaultRuntime` to the program right before
    ``drive`` -- after ``build`` created every host, before any
    traffic -- and stores it as ``program.fault_runtime`` so
    :meth:`ScenarioProgram.attempt` and the phase guards engage.
    """

    def __init__(
        self, plan: FaultPlan, policy: Optional[ResiliencePolicy] = None
    ) -> None:
        self.plan = plan
        self.policy = policy

    def __call__(self, event: str, phase: str, program: Any) -> None:
        if event == "before" and phase == "drive":
            policy = self.policy
            if policy is None:
                policy = getattr(program, "resilience", None)
            runtime = FaultRuntime(self.plan, program.network, policy=policy)
            runtime.install()
            program.fault_runtime = runtime
