"""A toy TLS layer with SNI and Encrypted ClientHello.

Substrate for the section 3.3 cautionary analysis: ECH hides the SNI
from the network but not from the terminating server.
"""

from .handshake import (
    APP_PROTOCOL,
    HELLO_PROTOCOL,
    TlsClientHello,
    TlsClientSession,
    TlsServer,
)

__all__ = [
    "TlsClientHello",
    "TlsClientSession",
    "TlsServer",
    "HELLO_PROTOCOL",
    "APP_PROTOCOL",
]
