"""A toy TLS layer: handshake with SNI, sessions, and ECH.

Just enough TLS to reproduce the paper's section 3.3 point about
Encrypted ClientHello: ECH hides the SNI from the *network observer*
but "does not alter what information the TLS server sees" -- the
handshake still terminates at a server that learns both who connected
and everything they asked for.

The handshake is modeled at the information level (a session key id
shared between client and server entities); the package's real HPKE is
what production ECH uses, and the ODoH/OHTTP models here exercise that
code path already.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.entities import Entity
from repro.core.values import LabeledValue, Sealed, Subject
from repro.http.messages import HttpRequest, HttpResponse, fqdn_value
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["TlsClientHello", "TlsServer", "TlsClientSession", "HELLO_PROTOCOL", "APP_PROTOCOL"]

HELLO_PROTOCOL = "tls-hello"
APP_PROTOCOL = "tls-app"

_session_ids = itertools.count(1)


@dataclass(frozen=True)
class TlsClientHello:
    """A ClientHello: the SNI travels in the clear or under ECH.

    Exactly one of ``sni`` (plaintext, a labeled partially sensitive
    value any wire observer reads) or ``ech`` (the same value sealed to
    the server's ECH key) is set.
    """

    session_hint: int
    sni: Optional[LabeledValue] = None
    ech: Optional[Sealed] = None

    def __post_init__(self) -> None:
        if (self.sni is None) == (self.ech is None):
            raise ValueError("exactly one of sni / ech must be present")


@dataclass(frozen=True)
class _HelloDone:
    """Server's handshake completion, naming the session key."""

    session_key_id: str


class TlsServer:
    """A TLS-terminating origin: handshake, then application data."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        hostname: str,
        app: Optional[Callable[[HttpRequest], str]] = None,
        ech_key_id: Optional[str] = None,
    ) -> None:
        self.hostname = hostname
        self.entity = entity
        self.app = app if app is not None else (lambda req: f"content for {req.path_and_body}")
        self.ech_key_id = ech_key_id if ech_key_id is not None else f"ech:{hostname}"
        entity.grant_key(self.ech_key_id)
        self.host: SimHost = network.add_host(f"tls:{hostname}", entity)
        self.host.register(HELLO_PROTOCOL, self._handle_hello)
        self.host.register(APP_PROTOCOL, self._handle_app)
        self.handshakes = 0
        self.requests_served = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle_hello(self, packet: Packet) -> _HelloDone:
        hello: TlsClientHello = packet.payload
        if hello.ech is not None:
            # Decrypting the ECH extension is an observation: the
            # server (as client-facing server) learns the inner SNI.
            self.entity.observe(
                hello.ech, time=self.host.network.simulator.now, channel="ech"
            )
        self.handshakes += 1
        key_id = f"tls-session:{self.hostname}:{next(_session_ids)}"
        self.entity.grant_key(key_id)
        return _HelloDone(session_key_id=key_id)

    def _handle_app(self, packet: Packet) -> Sealed:
        sealed: Sealed = packet.payload
        (request,) = self.entity.unseal(sealed)
        self.requests_served += 1
        response = HttpResponse(
            status=200,
            body=LabeledValue(
                payload=self.app(request),
                label=request.content.label.downgraded(),
                subject=request.content.subject,
                description="tls response body",
            ),
        )
        return Sealed.wrap(
            sealed.key_id,
            [response],
            subject=request.content.subject,
            description="tls app response",
        )


class TlsClientSession:
    """Client side: handshake (optionally with ECH), then requests."""

    def __init__(
        self,
        host: SimHost,
        server: TlsServer,
        subject: Subject,
        use_ech: bool = False,
    ) -> None:
        self.host = host
        self.server = server
        self.subject = subject
        self.use_ech = use_ech
        self.session_key_id: Optional[str] = None

    def handshake(self) -> None:
        """Run the hello exchange and install the session key."""
        sni = fqdn_value(self.server.hostname, self.subject)
        if self.use_ech:
            hello = TlsClientHello(
                session_hint=next(_session_ids),
                ech=Sealed.wrap(
                    self.server.ech_key_id,
                    [sni],
                    subject=self.subject,
                    description="encrypted client hello",
                ),
            )
        else:
            hello = TlsClientHello(session_hint=next(_session_ids), sni=sni)
        done = self.host.transact(self.server.address, hello, HELLO_PROTOCOL)
        self.session_key_id = done.session_key_id
        self.host.entity.grant_key(self.session_key_id)

    def request(self, request: HttpRequest) -> HttpResponse:
        """Send one request over the established session."""
        if self.session_key_id is None:
            self.handshake()
        sealed = Sealed.wrap(
            self.session_key_id,
            [request],
            subject=self.subject,
            description="tls app data",
        )
        reply: Sealed = self.host.transact(self.server.address, sealed, APP_PROTOCOL)
        (response,) = self.host.entity.unseal(reply)
        return response
