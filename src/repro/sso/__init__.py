"""Single sign-on: centralized authentication analyzed (section 2.2)."""

from .provider import (
    AUTHN_PROTOCOL,
    IdentityProvider,
    LOGIN_PROTOCOL,
    ServiceProvider,
    SsoUser,
)
from .scenario import EXPECTED_TABLES_SSO, SsoRun, run_sso

__all__ = [
    "IdentityProvider",
    "ServiceProvider",
    "SsoUser",
    "AUTHN_PROTOCOL",
    "LOGIN_PROTOCOL",
    "SsoRun",
    "run_sso",
    "EXPECTED_TABLES_SSO",
]
