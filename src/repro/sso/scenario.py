"""SSO scenarios: the three assertion designs compared (section 2.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    register,
    run_scenario,
)

from .provider import IdentityProvider, ServiceProvider, SsoUser

__all__ = ["SsoRun", "run_sso", "EXPECTED_TABLES_SSO"]

#: Derived expectations (the paper describes the concern in prose; the
#: tables are this reproduction's analysis of the three designs).
EXPECTED_TABLES_SSO: Dict[str, Dict[str, str]] = {
    "global": {
        "User": "(▲, ●)",
        "IdP": "(▲, ⊙/●)",
        "Service A": "(▲, ●)",
        "Service B": "(▲, ●)",
    },
    "pairwise": {
        "User": "(▲, ●)",
        "IdP": "(▲, ⊙/●)",
        "Service A": "(△, ●)",
        "Service B": "(△, ●)",
    },
    "anonymous": {
        "User": "(▲, ●)",
        "IdP": "(▲, ⊙)",
        "Service A": "(△, ●)",
        "Service B": "(△, ●)",
    },
}

_SSO_ENTITIES = ("User", "IdP", "Service A", "Service B")


@dataclass
class SsoRun(ScenarioRun):
    mode: str = "global"
    logins: int = 0
    idp: IdentityProvider = None  # type: ignore[assignment]

    @property
    def table_title(self) -> str:
        return f"SSO ({self.mode} identifiers)"


class SsoProgram(ScenarioProgram):
    """One user logging into two services under the chosen design."""

    def validate(self) -> None:
        if self.params["mode"] not in EXPECTED_TABLES_SSO:
            raise ValueError(
                "mode must be global, pairwise, or anonymous"
            )

    def build(self) -> None:
        user_entity = self.world.entity("User", "user-device", trusted_by_user=True)
        idp_entity = self.world.entity("IdP", "idp-org")
        service_a_entity = self.world.entity("Service A", "service-a-org")
        service_b_entity = self.world.entity("Service B", "service-b-org")

        self.idp = IdentityProvider(
            self.network, idp_entity, mode=self.param("mode"), rng=self.rng
        )
        self.service_a = ServiceProvider(self.network, service_a_entity, "service-a", self.idp)
        self.service_b = ServiceProvider(self.network, service_b_entity, "service-b", self.idp)
        self.user = SsoUser(
            self.network, user_entity, Subject("alice"), "alice@idp.example", rng=self.rng
        )

    def drive(self) -> None:
        self.logins = 0
        for index in range(self.param("logins_per_service")):
            for service in (self.service_a, self.service_b):
                outcome = self.user.login(
                    self.idp, service, f"activity {index} at {service.name}"
                )
                self.logins += int(outcome == "welcome")

    def analyze(self) -> SsoRun:
        return SsoRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            mode=self.param("mode"),
            logins=self.logins,
            idp=self.idp,
        )


def _register_sso(mode: str, experiment_id: str, label: str, order: float) -> None:
    register(
        ScenarioSpec(
            id=f"sso-{mode}",
            title=f"SSO, {label} (2.2, extension)",
            program=SsoProgram,
            params=(
                Param("mode", mode, "assertion design: global/pairwise/anonymous"),
                Param("logins_per_service", 2, "logins per service"),
                Param("seed", 20221114, "per-run RNG seed (None: system entropy)"),
            ),
            expected=EXPECTED_TABLES_SSO[mode],
            entities=_SSO_ENTITIES,
            table_constant=f"EXPECTED_TABLES_SSO[{mode!r}]",
            experiment_id=experiment_id,
            order=order,
        )
    )


_register_sso("global", "E2a", "global ids", 120.0)
_register_sso("pairwise", "E2b", "pairwise ids", 121.0)
_register_sso("anonymous", "E2c", "blind tickets", 122.0)


def run_sso(mode: str = "global", logins_per_service: int = 2, seed: int = 20221114) -> SsoRun:
    """One user logging into two services under the chosen design."""
    if mode not in EXPECTED_TABLES_SSO:
        raise ValueError("mode must be global, pairwise, or anonymous")
    return run_scenario(
        f"sso-{mode}", logins_per_service=logins_per_service, seed=seed
    )
