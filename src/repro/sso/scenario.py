"""SSO scenarios: the three assertion designs compared (section 2.2)."""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.values import Subject
from repro.net.network import Network

from .provider import IdentityProvider, ServiceProvider, SsoUser

__all__ = ["SsoRun", "run_sso", "EXPECTED_TABLES_SSO"]

#: Derived expectations (the paper describes the concern in prose; the
#: tables are this reproduction's analysis of the three designs).
EXPECTED_TABLES_SSO: Dict[str, Dict[str, str]] = {
    "global": {
        "User": "(▲, ●)",
        "IdP": "(▲, ⊙/●)",
        "Service A": "(▲, ●)",
        "Service B": "(▲, ●)",
    },
    "pairwise": {
        "User": "(▲, ●)",
        "IdP": "(▲, ⊙/●)",
        "Service A": "(△, ●)",
        "Service B": "(△, ●)",
    },
    "anonymous": {
        "User": "(▲, ●)",
        "IdP": "(▲, ⊙)",
        "Service A": "(△, ●)",
        "Service B": "(△, ●)",
    },
}


@dataclass
class SsoRun:
    world: World
    network: Network
    analyzer: DecouplingAnalyzer
    mode: str
    logins: int
    idp: IdentityProvider

    def table(self):
        return self.analyzer.table(
            entities=["User", "IdP", "Service A", "Service B"],
            title=f"SSO ({self.mode} identifiers)",
        )


def run_sso(mode: str = "global", logins_per_service: int = 2, seed: int = 20221114) -> SsoRun:
    """One user logging into two services under the chosen design."""
    rng = _random.Random(seed)
    world = World()
    network = Network()

    user_entity = world.entity("User", "user-device", trusted_by_user=True)
    idp_entity = world.entity("IdP", "idp-org")
    service_a_entity = world.entity("Service A", "service-a-org")
    service_b_entity = world.entity("Service B", "service-b-org")

    idp = IdentityProvider(network, idp_entity, mode=mode, rng=rng)
    service_a = ServiceProvider(network, service_a_entity, "service-a", idp)
    service_b = ServiceProvider(network, service_b_entity, "service-b", idp)
    user = SsoUser(network, user_entity, Subject("alice"), "alice@idp.example", rng=rng)

    logins = 0
    for index in range(logins_per_service):
        for service in (service_a, service_b):
            outcome = user.login(idp, service, f"activity {index} at {service.name}")
            logins += int(outcome == "welcome")
    network.run()
    return SsoRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        mode=mode,
        logins=logins,
        idp=idp,
    )
