"""Single sign-on: the paper's section 2.2 centralization concern.

"The actors involved are simultaneously decentralized ... and
centralized (such as OAuth and SSO) with a view into the uses of a
huge range of services."

An :class:`IdentityProvider` authenticates a user once and then issues
assertions for every service they visit -- so it accumulates a log of
*which user used which service when*: a sensitive identity coupled with
partially sensitive usage data.  The module offers three assertion
modes the benchmarks compare:

* ``global``   -- one account identifier shared with every service
  (classic OAuth "sub"): every service knows who you are, and any two
  services can join their logs trivially;
* ``pairwise`` -- per-service pseudonyms (SAML pairwise ids, passkeys):
  services can no longer join logs, but the IdP still sees everything;
* ``anonymous`` -- blind-signed single-use tickets (Privacy Pass
  style): the IdP attests without learning the destination, the
  service admits without learning the account.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Set

from repro.core.entities import Entity
from repro.core.labels import (
    NONSENSITIVE_DATA,
    NONSENSITIVE_IDENTITY,
    PARTIAL_SENSITIVE_DATA,
    SENSITIVE_DATA,
    SENSITIVE_IDENTITY,
)
from repro.core.values import LabeledValue, Subject
from repro.crypto.blind import BlindSigner, blind, unblind
from repro.crypto.hashutil import sha256
from repro.crypto.rsa import generate_rsa_keypair
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["IdentityProvider", "ServiceProvider", "SsoUser", "AUTHN_PROTOCOL", "LOGIN_PROTOCOL"]

AUTHN_PROTOCOL = "sso-authn"
LOGIN_PROTOCOL = "sso-login"

_ticket_ids = itertools.count(1)


@dataclass(frozen=True)
class _AuthnRequest:
    account: LabeledValue  # ▲ the user's IdP account
    destination: Optional[LabeledValue]  # ⊙/● which service (None if blinded)
    blinded_ticket: Optional[LabeledValue] = None  # anonymous mode


@dataclass(frozen=True)
class _Assertion:
    subject_identifier: LabeledValue  # ▲ global / △ pairwise / △ ticket
    signature_or_proof: object


@dataclass(frozen=True)
class _LoginRequest:
    assertion: _Assertion
    activity: LabeledValue  # ● what the user does at the service


class IdentityProvider:
    """The centralized authenticator, in one of three assertion modes."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        mode: str = "global",
        rng=None,
    ) -> None:
        if mode not in ("global", "pairwise", "anonymous"):
            raise ValueError("mode must be global, pairwise, or anonymous")
        self.mode = mode
        self.entity = entity
        self._signer = BlindSigner(generate_rsa_keypair(512, rng=rng))
        self.host: SimHost = network.add_host("idp", entity)
        self.host.register(AUTHN_PROTOCOL, self._handle)
        self.assertions_issued = 0
        self.spent_tickets: Set[bytes] = set()

    @property
    def address(self) -> Address:
        return self.host.address

    @property
    def public_key(self):
        return self._signer.public

    def _handle(self, packet: Packet) -> _Assertion:
        request: _AuthnRequest = packet.payload
        self.assertions_issued += 1
        account = str(request.account.payload)
        subject = request.account.subject
        if self.mode == "anonymous":
            signature = self._signer.sign(int(request.blinded_ticket.payload))
            return _Assertion(
                subject_identifier=LabeledValue(
                    payload="(blinded)",
                    label=NONSENSITIVE_DATA,
                    subject=subject,
                    description="blinded ticket signature carrier",
                ),
                signature_or_proof=signature,
            )
        destination = str(request.destination.payload)
        if self.mode == "pairwise":
            pairwise = sha256(
                b"pairwise", account.encode(), destination.encode()
            ).hex()[:16]
            identifier = LabeledValue(
                payload=pairwise,
                label=NONSENSITIVE_IDENTITY,
                subject=subject,
                description="pairwise subject id",
                provenance=("account", "pairwise-hash"),
            )
        else:  # global
            identifier = LabeledValue(
                payload=account,
                label=SENSITIVE_IDENTITY,
                subject=subject,
                description="global subject id",
            )
        token = sha256(b"assertion", str(identifier.payload).encode(), destination.encode())
        return _Assertion(subject_identifier=identifier, signature_or_proof=token)

    def verify_ticket(self, serial: bytes, signature: int) -> bool:
        """Anonymous-mode redemption check (single use)."""
        if serial in self.spent_tickets:
            return False
        if not self.public_key.verify(serial, signature):
            return False
        self.spent_tickets.add(serial)
        return True


class ServiceProvider:
    """A relying service: admits users bearing a valid assertion."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        name: str,
        idp: IdentityProvider,
    ) -> None:
        self.name = name
        self.idp = idp
        self.host: SimHost = network.add_host(f"sp:{name}", entity)
        self.host.register(LOGIN_PROTOCOL, self._handle)
        self.logins = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> str:
        request: _LoginRequest = packet.payload
        assertion = request.assertion
        if self.idp.mode == "anonymous":
            serial_hex, signature = assertion.signature_or_proof
            if not self.idp.verify_ticket(bytes.fromhex(serial_hex), signature):
                return "rejected"
        self.logins += 1
        return "welcome"


class SsoUser:
    """A user logging into services through the IdP."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        subject: Subject,
        account_name: str,
        rng=None,
    ) -> None:
        self.entity = entity
        self.subject = subject
        self.rng = rng
        self.account = LabeledValue(
            payload=account_name,
            label=SENSITIVE_IDENTITY,
            subject=subject,
            description="idp account",
        )
        # Authentication at the IdP is identified by nature; logins at
        # services ride an anonymized connection layer (the comparison
        # isolates the *assertion* design -- compose with an MPR for
        # the network layer, as the integration tests do elsewhere).
        self.host: SimHost = network.add_host(
            f"sso-user:{subject}", entity, identity=self.account
        )
        anonymized = LabeledValue(
            payload="shared-egress-pool",
            label=NONSENSITIVE_IDENTITY,
            subject=subject,
            description="anonymized network identity",
            provenance=("address", "anonymize"),
        )
        self.service_host: SimHost = network.add_host(
            f"sso-browser:{subject}", entity, identity=anonymized
        )

    def login(self, idp: IdentityProvider, service: ServiceProvider, activity: str) -> str:
        """Authenticate at the IdP, then present the assertion."""
        self.entity.observe(self.account, channel="self", session="self")
        activity_value = LabeledValue(
            payload=activity,
            label=SENSITIVE_DATA,
            subject=self.subject,
            description="service activity",
        )
        self.entity.observe(activity_value, channel="self", session="self")

        if idp.mode == "anonymous":
            import secrets as _secrets

            serial = (
                bytes(self.rng.randrange(256) for _ in range(16))
                if self.rng is not None
                else _secrets.token_bytes(16)
            )
            state = blind(idp.public_key, serial, self.rng)
            request = _AuthnRequest(
                account=self.account,
                destination=None,
                blinded_ticket=LabeledValue(
                    payload=state.blinded_value,
                    label=NONSENSITIVE_DATA,
                    subject=self.subject,
                    description="blinded login ticket",
                    provenance=("ticket", "blind"),
                ),
            )
            reply: _Assertion = self.host.transact(idp.address, request, AUTHN_PROTOCOL)
            signature = unblind(idp.public_key, state, int(reply.signature_or_proof))
            assertion = _Assertion(
                subject_identifier=LabeledValue(
                    payload=serial.hex(),
                    label=NONSENSITIVE_IDENTITY,
                    subject=self.subject,
                    description="anonymous login ticket",
                    provenance=("ticket", "unblind"),
                ),
                signature_or_proof=(serial.hex(), signature),
            )
        else:
            destination = LabeledValue(
                payload=service.name,
                label=PARTIAL_SENSITIVE_DATA,
                subject=self.subject,
                description="login destination",
                provenance=("destination",),
            )
            request = _AuthnRequest(account=self.account, destination=destination)
            assertion = self.host.transact(idp.address, request, AUTHN_PROTOCOL)

        login = _LoginRequest(assertion=assertion, activity=activity_value)
        return self.service_host.transact(service.address, login, LOGIN_PROTOCOL)
