"""Trace analytics: aggregate statistics over a run's span tree.

Spans record both clocks (simulated and wall); this module rolls them
up per span name -- count, total, mean, max -- and extracts the
critical path: the chain of spans, root to leaf, that dominates a
run's duration.  The CLI's ``report --trace`` provenance section and
the ``explain`` / ``timeline`` verbs render these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "SpanStats",
    "parent_map",
    "descendant_counts",
    "span_stats",
    "critical_path",
    "render_span_stats",
    "render_critical_path",
]


def parent_map(spans: Sequence[Any]) -> Dict[int, Optional[int]]:
    """``{span_id: parent_id}`` for every span -- the tree's upward view.

    The shared building block for ancestor walks: built once and passed
    around instead of being reconstructed at every call site (the CLI's
    per-experiment rollup used to rebuild it per call).
    """
    return {span.span_id: span.parent_id for span in spans}


def descendant_counts(
    spans: Sequence[Any],
    root_ids: Sequence[int],
    parents: Optional[Dict[int, Optional[int]]] = None,
) -> Dict[int, int]:
    """How many of ``spans`` sit (transitively) under each root id.

    Each span is charged to the first id from ``root_ids`` found on its
    ancestor chain; spans under none of them are uncounted.  ``parents``
    may pass a prebuilt :func:`parent_map` to avoid rebuilding it.
    """
    if parents is None:
        parents = parent_map(spans)
    counts = {root: 0 for root in root_ids}
    for span in spans:
        node = span.parent_id
        while node is not None:
            if node in counts:
                counts[node] += 1
                break
            node = parents.get(node)
    return counts


@dataclass(frozen=True)
class SpanStats:
    """Per-span-name aggregates over both clocks.

    Wall times are milliseconds; sim times are the simulator's seconds.
    Spans missing a clock (never entered, no sim timestamps) count
    toward ``count`` but contribute zero to that clock's totals.
    """

    name: str
    count: int
    wall_total_ms: float
    wall_mean_ms: float
    wall_max_ms: float
    sim_total: float
    sim_mean: float
    sim_max: float


def span_stats(spans: Sequence[Any]) -> List[SpanStats]:
    """Aggregate ``spans`` per name, sorted by wall total, descending.

    Ties (all-zero walls in replayed traces) fall back to name order so
    output stays deterministic.
    """
    buckets: Dict[str, List[Any]] = {}
    for span in spans:
        buckets.setdefault(span.name, []).append(span)
    stats: List[SpanStats] = []
    for name, members in buckets.items():
        walls = [s.wall_seconds or 0.0 for s in members]
        sims = [s.sim_duration or 0.0 for s in members]
        count = len(members)
        wall_total = sum(walls) * 1000.0
        sim_total = sum(sims)
        stats.append(
            SpanStats(
                name=name,
                count=count,
                wall_total_ms=wall_total,
                wall_mean_ms=wall_total / count,
                wall_max_ms=max(walls) * 1000.0,
                sim_total=sim_total,
                sim_mean=sim_total / count,
                sim_max=max(sims),
            )
        )
    stats.sort(key=lambda s: (-s.wall_total_ms, s.name))
    return stats


def _duration(span: Any, clock: str) -> float:
    if clock == "wall":
        return span.wall_seconds or 0.0
    return span.sim_duration or 0.0


def critical_path(spans: Sequence[Any], clock: str = "wall") -> List[Any]:
    """The heaviest root-to-leaf chain of the span tree.

    Starts at the longest root (a span whose parent is absent from the
    capture counts as a root) and greedily descends into the longest
    child at each level.  ``clock`` is ``"wall"`` or ``"sim"``.
    """
    if clock not in ("wall", "sim"):
        raise ValueError(f"clock must be 'wall' or 'sim', not {clock!r}")
    if not spans:
        return []
    ids = {span.span_id for span in spans}
    children: Dict[Optional[int], List[Any]] = {}
    roots: List[Any] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    path: List[Any] = []
    # Ties broken by span id so replays pick the same path.
    current = max(roots, key=lambda s: (_duration(s, clock), -s.span_id))
    while current is not None:
        path.append(current)
        below = children.get(current.span_id)
        if not below:
            break
        current = max(below, key=lambda s: (_duration(s, clock), -s.span_id))
    return path


def render_span_stats(stats: Sequence[SpanStats]) -> str:
    """A fixed-width table of per-name aggregates."""
    if not stats:
        return "(no spans recorded)"
    header = (
        f"{'span':<18} {'count':>6} {'wall total':>11} {'wall mean':>10}"
        f" {'wall max':>9} {'sim total':>10} {'sim max':>9}"
    )
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.name:<18} {s.count:>6} {s.wall_total_ms:>9.2f}ms"
            f" {s.wall_mean_ms:>8.3f}ms {s.wall_max_ms:>7.3f}ms"
            f" {s.sim_total:>9.4f}s {s.sim_max:>8.4f}s"
        )
    return "\n".join(lines)


def render_critical_path(path: Sequence[Any], clock: str = "wall") -> str:
    """The critical path as an indented chain with per-span durations."""
    if not path:
        return "(no spans recorded)"
    lines = [f"critical path ({clock} clock):"]
    for depth, span in enumerate(path):
        duration = _duration(span, clock)
        rendered = (
            f"{duration * 1000.0:.3f}ms" if clock == "wall" else f"{duration:.4f}s"
        )
        lines.append(f"{'  ' * depth}-> {span.name} [{rendered}]")
    return "\n".join(lines)
