"""The process-wide observability switch, now tiered.

Instrumentation in the simulator, network, ledger, and harness is
gated on module attributes that hot paths (``Simulator._step``,
``Ledger.record_fast``, ``Network._deliver_fast``) read directly --
tracing off must cost one attribute check and nothing more.

Since PR 8 the switch is a *mode*, not a boolean.  Four tiers:

``off``
    Nothing is recorded.  The drive fast path is taken.
``counters``
    Metrics only.  The drive fast path is **kept**; deliveries and
    ledger batches fold into the slotted
    :class:`repro.obs.metrics.MetricsBatch` accumulator, which is
    merged into the :class:`~repro.obs.metrics.MetricsRegistry` once
    per capture (not once per value).  No spans.
``sampled``
    Metrics (batched, as in ``counters``) plus a seeded head-based
    span sampler: a deterministic subset of ``transact`` / ``deliver``
    / ``experiment`` spans is traced while every unsampled delivery
    keeps the fast path.  Same seed => byte-identical sampled span
    set.
``full``
    The pre-PR 8 behaviour, byte-identical to the old
    ``obs.capture()``: every span, every per-value metric, fast path
    off.

Three derived booleans are what instrumented code actually checks:

* :data:`ENABLED`  -- full-fidelity instrumentation (``full`` only);
  the fast-path preconditions test ``not ENABLED``, so ``counters``
  and ``sampled`` keep batched delivery.
* :data:`COUNTERS` -- some metric recording is active (``counters`` /
  ``sampled`` / ``full``).
* :data:`TRACING`  -- spans may record (``sampled`` / ``full``).

:data:`SAMPLER` holds the :class:`SpanSampler` in ``sampled`` mode and
``None`` otherwise, so the per-packet check in ``Network.send`` is one
attribute read plus an ``is not None`` in every other mode.

``REPRO_OBS_MODE`` (read once at import) selects the process-default
mode; ``REPRO_OBS_SAMPLE`` / ``REPRO_OBS_SEED`` configure the default
sampler.  :func:`repro.obs.capture` and the CLI's ``--obs-mode`` flag
select per-run modes on top.
"""

from __future__ import annotations

import os
import random
from typing import Dict, Optional, Tuple

__all__ = [
    "MODES",
    "MODE",
    "ENABLED",
    "COUNTERS",
    "TRACING",
    "SAMPLER",
    "SpanSampler",
    "set_mode",
    "resolve_mode",
    "sample",
    "state",
    "restore",
    "enable",
    "disable",
    "is_enabled",
]

#: The recognised tiers, cheapest first.
MODES: Tuple[str, ...] = ("off", "counters", "sampled", "full")

#: Default head-sampling rate for the hot span kinds.
DEFAULT_SAMPLE_RATE = 0.01


class SpanSampler:
    """A seeded head-based sampler with per-span-kind rates.

    Each span kind (``"transact"``, ``"deliver"``, ``"experiment"``,
    ...) gets its own deterministic decision stream: the n-th decision
    for a kind is ``Random(f"{seed}:{kind}").random() < rate``, with
    the stream advancing one draw per decision.  Decisions are made in
    send/driver order, which is itself deterministic, so the same seed
    reproduces the same sampled span set byte-for-byte while a
    different seed picks a different subset.

    ``rates`` overrides the default rate per kind; a kind mapped to
    ``1.0`` is always traced, ``0.0`` never.
    """

    __slots__ = ("rate", "rates", "seed", "_streams", "decisions", "sampled")

    def __init__(
        self,
        rate: float = DEFAULT_SAMPLE_RATE,
        seed: int = 0,
        rates: Optional[Dict[str, float]] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], not {rate!r}")
        self.rate = rate
        self.rates = dict(rates) if rates else {}
        for kind, kind_rate in self.rates.items():
            if not 0.0 <= kind_rate <= 1.0:
                raise ValueError(
                    f"sample rate for {kind!r} must be in [0, 1],"
                    f" not {kind_rate!r}"
                )
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}
        self.decisions = 0
        self.sampled = 0

    def decide(self, kind: str) -> bool:
        """Advance ``kind``'s stream one draw; ``True`` means trace."""
        self.decisions += 1
        rate = self.rates.get(kind, self.rate)
        stream = self._streams.get(kind)
        if stream is None:
            # Seeding with a string is deterministic in CPython (the
            # bytes are hashed with sha512, not the randomized hash).
            stream = self._streams[kind] = random.Random(f"{self.seed}:{kind}")
        hit = stream.random() < rate
        if hit:
            self.sampled += 1
        return hit

    def fresh(self) -> "SpanSampler":
        """An unadvanced copy (same rates/seed) for a repeat run."""
        return SpanSampler(self.rate, self.seed, self.rates)

    def __repr__(self) -> str:
        return (
            f"SpanSampler(rate={self.rate}, seed={self.seed},"
            f" rates={self.rates})"
        )


def _env_mode() -> Optional[str]:
    mode = os.environ.get("REPRO_OBS_MODE", "").strip().lower()
    if not mode:
        return None
    if mode not in MODES:
        raise ValueError(
            f"REPRO_OBS_MODE must be one of {'/'.join(MODES)}, not {mode!r}"
        )
    return mode


def _env_sampler() -> SpanSampler:
    rate = float(os.environ.get("REPRO_OBS_SAMPLE", DEFAULT_SAMPLE_RATE))
    seed = int(os.environ.get("REPRO_OBS_SEED", 0))
    return SpanSampler(rate, seed)


#: The mode named by ``REPRO_OBS_MODE``, or ``None`` when unset.
ENV_MODE: Optional[str] = _env_mode()

#: The current tier.
MODE: str = ENV_MODE or "off"

#: Full-fidelity gate (``full`` only): per-value metrics, every span,
#: fast path off.  This is the flag the fast-path preconditions test.
ENABLED: bool = MODE == "full"

#: Any metric recording active (``counters`` / ``sampled`` / ``full``).
COUNTERS: bool = MODE in ("counters", "sampled", "full")

#: Spans may record (``sampled`` / ``full``).
TRACING: bool = MODE in ("sampled", "full")

#: The active :class:`SpanSampler` in ``sampled`` mode, else ``None``.
SAMPLER: Optional[SpanSampler] = _env_sampler() if MODE == "sampled" else None


def set_mode(mode: str, sampler: Optional[SpanSampler] = None) -> None:
    """Install ``mode`` (and, for ``sampled``, its sampler) process-wide.

    Recomputes every derived gate.  ``sampler`` defaults to a fresh
    environment-configured :class:`SpanSampler` when ``sampled`` is
    selected without one; it is ignored for other modes.
    """
    global MODE, ENABLED, COUNTERS, TRACING, SAMPLER
    if mode not in MODES:
        raise ValueError(f"mode must be one of {'/'.join(MODES)}, not {mode!r}")
    MODE = mode
    ENABLED = mode == "full"
    COUNTERS = mode in ("counters", "sampled", "full")
    TRACING = mode in ("sampled", "full")
    SAMPLER = (sampler or _env_sampler()) if mode == "sampled" else None


def resolve_mode(mode: Optional[str]) -> str:
    """The capture-time mode: explicit arg, else env, else ``full``.

    ``obs.capture()`` with no arguments must stay byte-identical to
    the pre-tier behaviour, so its default is ``full`` -- unless the
    environment pins ``REPRO_OBS_MODE``, which wins over the default
    (but never over an explicit argument).
    """
    if mode is not None:
        if mode not in MODES:
            raise ValueError(
                f"mode must be one of {'/'.join(MODES)}, not {mode!r}"
            )
        return mode
    return ENV_MODE or "full"


def sample(kind: str) -> bool:
    """Should an explicitly instrumented site trace this span kind?

    ``True`` in every mode except ``sampled``, where the seeded
    sampler decides (advancing ``kind``'s stream one draw).  In
    ``off`` / ``counters`` the tracer hands back a no-op span anyway,
    so returning ``True`` costs nothing.
    """
    sampler = SAMPLER
    return sampler is None or sampler.decide(kind)


def state() -> Tuple[str, Optional[SpanSampler]]:
    """The restorable (mode, sampler) pair for nested captures."""
    return MODE, SAMPLER


def restore(saved: Tuple[str, Optional[SpanSampler]]) -> None:
    """Reinstall a pair captured by :func:`state`."""
    mode, sampler = saved
    global MODE, ENABLED, COUNTERS, TRACING, SAMPLER
    MODE = mode
    ENABLED = mode == "full"
    COUNTERS = mode in ("counters", "sampled", "full")
    TRACING = mode in ("sampled", "full")
    SAMPLER = sampler if mode == "sampled" else None


def enable() -> None:
    """Turn full observability on for the whole process (legacy API)."""
    set_mode("full")


def disable() -> None:
    """Turn observability off (the default)."""
    set_mode("off")


def is_enabled() -> bool:
    """Is *any* tier active?  (``full`` for the legacy boolean view.)"""
    return MODE != "off"
