"""The process-wide observability switch.

Instrumentation in the simulator, network, ledger, and harness is
gated on :data:`ENABLED`.  The flag lives in its own dependency-free
module so hot paths (``Simulator._step``, ``Ledger.record``,
``Network._deliver``) can check one module attribute and fall through
-- tracing off must cost nothing measurable.
"""

from __future__ import annotations

__all__ = ["ENABLED", "enable", "disable", "is_enabled"]

#: The global gate.  Off by default; flip via :func:`enable` /
#: :func:`disable` or, preferably, :func:`repro.obs.capture`.
ENABLED = False


def enable() -> None:
    """Turn observability on for the whole process."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn observability off (the default)."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED
