"""Run metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a namespace of named instruments,
get-or-created on first touch so instrumentation sites never need
registration ceremony::

    get_registry().counter("net.messages").inc()
    get_registry().histogram("net.packet_bytes", SIZE_BUCKETS).observe(512)

Histograms are fixed-bucket (cumulative counts per upper bound, plus
an overflow bucket) -- enough for packet-size and hop-latency
distributions without holding every sample.

The ``counters`` and ``sampled`` observability tiers do not touch the
registry from the hot loop at all: deliveries and ledger batches fold
into the process-wide slotted :class:`MetricsBatch` accumulator
(:data:`BATCH`), which :func:`flush_batch` merges into the registry
once per capture.  The merge reproduces exactly the instruments a
``full``-mode run would have created -- same names, same counts, same
histogram buckets, byte-equal snapshots -- because the batch observes
values in the same delivery order and folds each total exactly once.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsBatch",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "BATCH",
    "flush_batch",
    "reset_batch",
    "get_registry",
    "set_registry",
]

#: Default byte-size buckets (powers of two around typical payloads).
SIZE_BUCKETS: Tuple[float, ...] = (64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Default simulated-latency buckets, in seconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, clock reading)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed upper-bound buckets plus an overflow bucket.

    ``counts[i]`` holds samples ``<= buckets[i]`` (non-cumulative);
    ``counts[-1]`` holds everything beyond the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(sorted(buckets))
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram bucket bounds must be distinct")
        self.name = name
        self.buckets = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments, get-or-created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = SIZE_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    def counter_value(self, name: str, default: int = 0) -> int:
        """Read a counter without creating it."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every instrument as a plain dict, counters first, by name."""
        rows: List[Dict[str, Any]] = []
        for group in (self._counters, self._gauges, self._histograms):
            for name in sorted(group):
                rows.append(group[name].to_dict())
        return rows

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class MetricsBatch:
    """Slotted per-batch accumulators for the fast-path obs tiers.

    One process-wide instance (:data:`BATCH`) absorbs the per-delivery
    and per-ledger-batch accounting that ``full`` mode would write to
    the registry per value: plain attribute increments and two local
    histograms, no registry lookups, no name formatting.  The whole
    batch folds into a :class:`MetricsRegistry` in one
    :meth:`flush` -- instruments are only created for non-zero
    accumulators, so a flushed ``counters``-mode registry snapshot is
    byte-equal to the ``full``-mode one for the same run.
    """

    #: Raw histogram values buffered before a drain -- deep enough to
    #: amortize bucketing, small enough to bound batch memory.
    DRAIN_THRESHOLD = 4096

    __slots__ = (
        "events",
        "messages",
        "bytes",
        "dropped",
        "packet_bytes",
        "hop_latency",
        "observations",
        "segments_sealed",
        "segments_spilled",
        "rows_spilled",
        "_sizes",
        "_latencies",
    )

    def __init__(self) -> None:
        self.events = 0
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.packet_bytes = Histogram("net.packet_bytes", SIZE_BUCKETS)
        self.hop_latency = Histogram("net.hop_latency", LATENCY_BUCKETS)
        self.observations: Dict[str, int] = {}
        self.segments_sealed = 0
        self.segments_spilled = 0
        self.rows_spilled = 0
        self._sizes: List[float] = []
        self._latencies: List[float] = []

    def note_delivery(self, size: int, latency: Optional[float]) -> None:
        """Account one delivered packet (``latency`` may be unknown).

        Histogram values are appended raw and bucketed later (at the
        capture-exit flush, or every :data:`DRAIN_THRESHOLD` values) so
        the per-delivery cost is two int adds and a list append.  The
        drain observes values in arrival order, which keeps the folded
        float totals bit-equal to ``full`` mode's per-value sums.
        """
        self.messages += 1
        self.bytes += size
        sizes = self._sizes
        sizes.append(size)
        if latency is not None:
            self._latencies.append(latency)
        if len(sizes) >= self.DRAIN_THRESHOLD:
            self._drain()

    def note_observations(self, channel: str, count: int) -> None:
        """Account one ledger batch of ``count`` observations."""
        observations = self.observations
        observations[channel] = observations.get(channel, 0) + count

    def note_segment(
        self, *, sealed: int = 0, spilled: int = 0, rows_spilled: int = 0
    ) -> None:
        """Account ledger segment lifecycle events (seal / spill)."""
        self.segments_sealed += sealed
        self.segments_spilled += spilled
        self.rows_spilled += rows_spilled

    def _drain(self) -> None:
        """Bucket the buffered raw values into the local histograms."""
        if self._sizes:
            observe = self.packet_bytes.observe
            for value in self._sizes:
                observe(value)
            self._sizes.clear()
        if self._latencies:
            observe = self.hop_latency.observe
            for value in self._latencies:
                observe(value)
            self._latencies.clear()

    def clear(self) -> None:
        self.events = 0
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.packet_bytes = Histogram("net.packet_bytes", SIZE_BUCKETS)
        self.hop_latency = Histogram("net.hop_latency", LATENCY_BUCKETS)
        self.observations.clear()
        self.segments_sealed = 0
        self.segments_spilled = 0
        self.rows_spilled = 0
        self._sizes.clear()
        self._latencies.clear()

    @staticmethod
    def _fold_histogram(registry: "MetricsRegistry", local: Histogram) -> None:
        if not local.count:
            return
        histogram = registry.histogram(local.name, local.buckets)
        counts = histogram.counts
        for index, count in enumerate(local.counts):
            if count:
                counts[index] += count
        histogram.count += local.count
        histogram.total += local.total
        if histogram.min is None or local.min < histogram.min:
            histogram.min = local.min
        if histogram.max is None or local.max > histogram.max:
            histogram.max = local.max

    def flush(self, registry: "MetricsRegistry") -> None:
        """Merge every non-zero accumulator into ``registry``; reset."""
        self._drain()
        if self.events:
            registry.counter("sim.events").inc(self.events)
        if self.messages:
            # ``full`` mode creates ``net.bytes`` per delivery even for
            # zero-size packets, so its existence follows messages, not
            # the byte total.
            registry.counter("net.messages").inc(self.messages)
            registry.counter("net.bytes").inc(self.bytes)
        self._fold_histogram(registry, self.packet_bytes)
        self._fold_histogram(registry, self.hop_latency)
        if self.dropped:
            registry.counter("net.packets_dropped").inc(self.dropped)
        if self.observations:
            total = sum(self.observations.values())
            registry.counter("ledger.observations").inc(total)
            for channel in sorted(self.observations):
                registry.counter(f"ledger.observations.{channel}").inc(
                    self.observations[channel]
                )
        if self.segments_sealed:
            registry.counter("ledger.segments.sealed").inc(self.segments_sealed)
        if self.segments_spilled:
            registry.counter("ledger.segments.spilled").inc(self.segments_spilled)
        if self.rows_spilled:
            registry.counter("ledger.rows.spilled").inc(self.rows_spilled)
        self.clear()


#: The process-wide batch accumulator.  A singleton mutated in place --
#: hot modules bind it once at import time -- so never rebind it.
BATCH = MetricsBatch()


def flush_batch(registry: Optional[MetricsRegistry] = None) -> None:
    """Fold :data:`BATCH` into ``registry`` (default: the process one)."""
    BATCH.flush(registry if registry is not None else get_registry())


def reset_batch() -> None:
    """Drop any pending batched accounting (test isolation)."""
    BATCH.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
