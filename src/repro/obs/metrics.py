"""Run metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a namespace of named instruments,
get-or-created on first touch so instrumentation sites never need
registration ceremony::

    get_registry().counter("net.messages").inc()
    get_registry().histogram("net.packet_bytes", SIZE_BUCKETS).observe(512)

Histograms are fixed-bucket (cumulative counts per upper bound, plus
an overflow bucket) -- enough for packet-size and hop-latency
distributions without holding every sample.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
]

#: Default byte-size buckets (powers of two around typical payloads).
SIZE_BUCKETS: Tuple[float, ...] = (64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Default simulated-latency buckets, in seconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, clock reading)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed upper-bound buckets plus an overflow bucket.

    ``counts[i]`` holds samples ``<= buckets[i]`` (non-cumulative);
    ``counts[-1]`` holds everything beyond the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(sorted(buckets))
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram bucket bounds must be distinct")
        self.name = name
        self.buckets = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments, get-or-created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = SIZE_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    def counter_value(self, name: str, default: int = 0) -> int:
        """Read a counter without creating it."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every instrument as a plain dict, counters first, by name."""
        rows: List[Dict[str, Any]] = []
        for group in (self._counters, self._gauges, self._histograms):
            for name in sorted(group):
                rows.append(group[name].to_dict())
        return rows

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
