"""Exporters: spans, metrics, and provenance to JSONL and a text tree.

The JSONL stream is line-delimited JSON, one record per line, each
tagged with a ``"type"`` -- ``"span"``, ``"counter"``, ``"gauge"``,
``"histogram"``, or ``"provenance"`` -- so one file can archive a
whole traced run.  Span records carry both clocks
(``sim_start``/``sim_end`` in simulated seconds, ``wall_ms`` in host
milliseconds) plus the parent link that reconstructs the tree;
provenance records are the nodes and edges of a
:class:`repro.obs.provenance.ProvenanceGraph` and round-trip through
:func:`provenance_from_jsonl`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .metrics import MetricsRegistry
from .tracing import Span, Tracer

__all__ = [
    "StreamingWriter",
    "span_to_dict",
    "spans_to_jsonl",
    "to_jsonl",
    "write_jsonl",
    "render_span_tree",
    "provenance_from_jsonl",
]


def span_to_dict(span: Span) -> Dict[str, Any]:
    wall = span.wall_seconds
    return {
        "type": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "sim_start": span.sim_start,
        "sim_end": span.sim_end,
        "wall_ms": wall * 1000.0 if wall is not None else None,
        "attributes": dict(span.attributes),
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    return "\n".join(
        json.dumps(span_to_dict(span), ensure_ascii=False, sort_keys=True)
        for span in spans
    )


def to_jsonl(
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
    graph: Optional[Any] = None,
) -> str:
    """Spans (tree order), metrics, then provenance, one object per line.

    ``graph`` is a :class:`repro.obs.provenance.ProvenanceGraph` (or
    anything with ``to_dicts()``); its typed records are appended so a
    single file archives the complete causal account of a run.
    """
    lines = [
        json.dumps(span_to_dict(span), ensure_ascii=False, sort_keys=True)
        for span in sorted(tracer.spans, key=lambda s: s.span_id)
    ]
    if registry is not None:
        lines.extend(
            json.dumps(row, ensure_ascii=False, sort_keys=True)
            for row in registry.snapshot()
        )
    if graph is not None:
        lines.extend(
            json.dumps(row, ensure_ascii=False, sort_keys=True, default=str)
            for row in graph.to_dicts()
        )
    return "\n".join(lines)


def write_jsonl(
    path: str,
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
    graph: Optional[Any] = None,
) -> int:
    """Write the JSONL export to ``path``; returns the line count."""
    text = to_jsonl(tracer, registry, graph)
    with open(path, "w", encoding="utf-8") as handle:
        if text:
            handle.write(text + "\n")
    return 0 if not text else text.count("\n") + 1


class StreamingWriter:
    """A segmented JSONL span sink with bounded memory.

    Plugs into ``Tracer(sink=...)``: each finished span is serialized
    immediately and buffered; every ``segment_spans`` spans the buffer
    is written out as ``<prefix>-NNNNN.jsonl`` and dropped, so peak
    span memory is one segment (plus the optional ring), regardless of
    run length.  Segments hold spans in *completion* order -- sort by
    ``span_id`` after concatenating if tree order matters.

    ``ring`` keeps the last N span objects in a bounded deque
    (:meth:`tail`) so interactive consumers (``report --trace``, the
    ``profile`` command's tree preview) can render recent activity
    without ever holding the full trace.

    :meth:`close` flushes the final partial segment, optionally
    appends a metrics segment from a registry snapshot, and returns a
    manifest dict (segment paths, span count, peak buffered spans).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_spans: int = 1000,
        ring: int = 0,
        prefix: str = "spans",
    ) -> None:
        if segment_spans < 1:
            raise ValueError("segment_spans must be at least 1")
        self.directory = directory
        self.segment_spans = segment_spans
        self.prefix = prefix
        self.segments: List[str] = []
        self.spans_written = 0
        self.peak_buffered = 0
        self.ring: Optional[deque] = deque(maxlen=ring) if ring > 0 else None
        self._buffer: List[str] = []
        self._closed = False
        os.makedirs(directory, exist_ok=True)

    def emit(self, span: Span) -> None:
        """Accept one finished span (the ``Tracer`` sink interface)."""
        if self._closed:
            raise RuntimeError("StreamingWriter is closed")
        self._buffer.append(
            json.dumps(span_to_dict(span), ensure_ascii=False, sort_keys=True)
        )
        self.spans_written += 1
        if len(self._buffer) > self.peak_buffered:
            self.peak_buffered = len(self._buffer)
        if self.ring is not None:
            self.ring.append(span)
        if len(self._buffer) >= self.segment_spans:
            self._flush_segment()

    def _flush_segment(self) -> None:
        if not self._buffer:
            return
        path = os.path.join(
            self.directory, f"{self.prefix}-{len(self.segments):05d}.jsonl"
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(self._buffer) + "\n")
        self.segments.append(path)
        self._buffer.clear()

    def tail(self) -> List[Span]:
        """The last-N finished spans (empty when ``ring=0``)."""
        return list(self.ring) if self.ring is not None else []

    def close(
        self, registry: Optional[MetricsRegistry] = None
    ) -> Dict[str, Any]:
        """Flush the tail segment (+ optional metrics); return a manifest."""
        if not self._closed:
            self._flush_segment()
            if registry is not None and len(registry):
                path = os.path.join(
                    self.directory, f"{self.prefix}-metrics.jsonl"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    for row in registry.snapshot():
                        handle.write(
                            json.dumps(row, ensure_ascii=False, sort_keys=True)
                            + "\n"
                        )
                self.segments.append(path)
            self._closed = True
        return {
            "directory": self.directory,
            "segments": list(self.segments),
            "spans": self.spans_written,
            "peak_buffered": self.peak_buffered,
            "ring": len(self.ring) if self.ring is not None else 0,
        }


def provenance_from_jsonl(text: str) -> Any:
    """Rebuild the provenance graph embedded in a JSONL export.

    Skips span/metric records; imports lazily because
    :mod:`repro.obs.provenance` pulls in :mod:`repro.core`, which in
    turn imports this package at startup.
    """
    from .provenance import ProvenanceGraph

    return ProvenanceGraph.from_jsonl(text)


def _format_span(span: Span) -> str:
    bits = [span.name]
    if span.sim_start is not None and span.sim_end is not None:
        bits.append(f"sim={span.sim_start:.4f}..{span.sim_end:.4f}")
    wall = span.wall_seconds
    if wall is not None:
        bits.append(f"wall={wall * 1000.0:.2f}ms")
    for key in sorted(span.attributes):
        bits.append(f"{key}={span.attributes[key]}")
    return " ".join(bits)


def render_span_tree(spans: Sequence[Span]) -> str:
    """An indented text tree of the span forest, in span-id order.

    Spans whose parent is missing from ``spans`` (e.g. still open when
    the export ran) render as roots.
    """
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.span_id)

    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        lines.append("  " * depth + _format_span(span))
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)
