"""Span-based tracing for protocol runs.

A :class:`Span` is one timed region of a run -- a ``transact`` call, a
packet delivery, a harness experiment -- carrying both clocks that
matter here: *simulated* time (the event queue's ``now``) and *wall*
time (what the host CPU actually spent).  Spans form a tree through
parent links; the tracer keeps a stack of active spans so nesting
falls out of ``with`` blocks, and callers that schedule work for later
(a packet in flight) can capture :meth:`Tracer.current_span` and pass
it back as an explicit ``parent`` when the work runs.

The default tracer follows the global :mod:`repro.obs.runtime` gate:
while observability is disabled, :meth:`Tracer.span` hands back a
shared no-op span and records nothing, so instrumented code pays one
attribute check per call site.
"""

from __future__ import annotations

import itertools
import time as _time
from typing import Any, Dict, List, Optional

from . import runtime

__all__ = ["Span", "Tracer", "NOOP_SPAN", "get_tracer", "set_tracer"]

_AUTO = object()  # sentinel: derive the parent from the active-span stack


class Span:
    """One timed, attributed region of a run.

    ``sim_start`` / ``sim_end`` are simulated-clock timestamps supplied
    by the caller (the tracer has no simulator of its own); wall times
    are taken from ``time.perf_counter`` on enter/exit.  ``kind`` tags
    the instrumentation layer ("net", "harness", ...) so tooling can
    slice the tree without string-matching names.
    """

    __slots__ = (
        "name",
        "kind",
        "span_id",
        "parent_id",
        "sim_start",
        "sim_end",
        "wall_start",
        "wall_end",
        "attributes",
        "_tracer",
        "_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        *,
        kind: str = "",
        sim_time: Optional[float] = None,
        parent: Any = _AUTO,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self._parent = parent
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.sim_start = sim_time
        self.sim_end: Optional[float] = None
        self.wall_start: Optional[float] = None
        self.wall_end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}

    # -- recording ------------------------------------------------------

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; chainable."""
        self.attributes[key] = value
        return self

    def end_sim(self, sim_time: float) -> None:
        """Record the simulated-clock end of this span."""
        self.sim_end = sim_time

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.wall_start is None or self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        parent = self._parent
        if parent is _AUTO:
            parent = self._tracer.current_span()
        if isinstance(parent, Span):
            self.parent_id = parent.span_id
        self.wall_start = _time.perf_counter()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_end = _time.perf_counter()
        if self.sim_end is None:
            self.sim_end = self.sim_start
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: mis-nested exit
            stack.remove(self)
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id},"
            f" sim=[{self.sim_start}, {self.sim_end}])"
        )


class _NoopSpan:
    """The disabled path: every method is a cheap no-op."""

    __slots__ = ()

    name = ""
    kind = ""
    span_id = 0
    parent_id = None
    sim_start = None
    sim_end = None
    wall_start = None
    wall_end = None
    wall_seconds = None
    sim_duration = None
    attributes: Dict[str, Any] = {}

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def end_sim(self, sim_time: float) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "NOOP_SPAN"


#: The shared no-op span returned whenever tracing is off.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans and keeps the finished ones, in completion order.

    ``enabled=None`` (the default) defers to the process-wide
    :mod:`repro.obs.runtime` gate; ``True`` / ``False`` force it, which
    standalone tests use.

    ``sink`` replaces the unbounded in-memory :attr:`spans` list with a
    streaming consumer (anything with an ``emit(span)`` method, e.g.
    :class:`repro.obs.export.StreamingWriter`): finished spans are
    handed to the sink instead of accumulating, so peak span memory is
    bounded by the sink's segment/ring sizes, not the run length.
    """

    def __init__(self, enabled: Optional[bool] = None, sink: Any = None) -> None:
        self._enabled = enabled
        self._sink = sink
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    @property
    def enabled(self) -> bool:
        if self._enabled is None:
            # ``sampled`` mode records spans too (TRACING); the plain
            # ENABLED check keeps legacy direct-flag flips working.
            return runtime.TRACING or runtime.ENABLED
        return self._enabled

    @property
    def sink(self) -> Any:
        return self._sink

    def _finish(self, span: Span) -> None:
        """One span completed: stream it, or keep it in memory."""
        if self._sink is None:
            self.spans.append(span)
        else:
            self._sink.emit(span)

    def span(
        self,
        name: str,
        *,
        kind: str = "",
        sim_time: Optional[float] = None,
        parent: Any = _AUTO,
        **attributes: Any,
    ):
        """A new span (use as a context manager), or the no-op when off.

        ``parent`` defaults to whatever span is active when the span is
        *entered*; pass an explicit :class:`Span` (or ``None`` for a
        root) to link work that was scheduled earlier -- e.g. a packet
        delivery parented to the span active when it was sent.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(
            self,
            name,
            next(self._ids),
            kind=kind,
            sim_time=sim_time,
            parent=parent,
            attributes=attributes,
        )

    def current_span(self) -> Optional[Span]:
        """The innermost active span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._ids = itertools.count(1)

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        return len(self.spans)


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous
