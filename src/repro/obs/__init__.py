"""``repro.obs`` -- observability for simulator and harness runs.

Five pieces, all off by default:

* :mod:`repro.obs.tracing` -- span trees over both clocks (simulated
  and wall time), fed by instrumentation in ``repro.net`` and the
  harness;
* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-bucket
  histograms (events processed, messages, bytes, packet sizes, hop
  latencies, ledger observations);
* :mod:`repro.obs.export` -- JSONL and text-tree exporters;
* :mod:`repro.obs.provenance` -- the causal event graph joining
  ledger observations, wire packets, and spans, with the
  ``why`` / ``knowledge_timeline`` / ``breach_chain`` queries;
* :mod:`repro.obs.analyze` -- per-span-name statistics and
  critical-path extraction over a captured trace.

``provenance`` and ``analyze`` are deliberately *not* imported here:
they depend on :mod:`repro.core`, which imports this package at
startup -- import them directly (``from repro.obs import provenance``)
after the core is loaded.

The usual entry point is :func:`capture`::

    with obs.capture() as (tracer, registry):
        run = run_mixnet()
    print(export.render_span_tree(tracer.spans))

which installs a fresh tracer/registry as the process defaults, turns
the requested observability *mode* on, and restores everything on
exit.  ``mode`` defaults to ``full`` (the pre-tier behaviour,
byte-identical), unless ``REPRO_OBS_MODE`` pins another tier; see
:mod:`repro.obs.runtime` for the ``off`` / ``counters`` / ``sampled``
/ ``full`` ladder.  While the gate is off, every instrumented hot path
short-circuits on one module-attribute check -- a run with
observability disabled performs like one built without it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Tuple

from . import export, runtime
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsBatch,
    MetricsRegistry,
    SIZE_BUCKETS,
    flush_batch,
    get_registry,
    set_registry,
)
from .runtime import SpanSampler
from .tracing import NOOP_SPAN, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsBatch",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SIZE_BUCKETS",
    "Span",
    "SpanSampler",
    "Tracer",
    "capture",
    "disable",
    "enable",
    "export",
    "flush_batch",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "runtime",
    "set_registry",
    "set_tracer",
]

enable = runtime.enable
disable = runtime.disable
is_enabled = runtime.is_enabled


@contextmanager
def capture(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    mode: Optional[str] = None,
    sampler: Optional[SpanSampler] = None,
    sink: Any = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable observability into a (fresh by default) tracer/registry.

    Installs both as the process defaults and turns the requested
    ``mode`` on (explicit arg wins over ``REPRO_OBS_MODE``, which wins
    over the ``full`` default); on exit the previous defaults and mode
    come back, so captures nest and never leak into later runs.

    In the batched tiers (``counters`` / ``sampled``) hot paths fold
    metrics into the process-wide :class:`MetricsBatch`; it is flushed
    into the capture's registry on exit, so the registry is
    authoritative once the ``with`` block ends (not before).  Any
    accounting pending from an *enclosing* batched capture is flushed
    to its own registry on entry, so nesting never mixes runs.

    ``sampler`` customizes the ``sampled`` tier (rate/seed/per-kind
    rates); ``sink`` streams finished spans instead of accumulating
    them on ``tracer.spans`` (see
    :class:`repro.obs.export.StreamingWriter`) and is only consulted
    when no explicit ``tracer`` is passed.
    """
    resolved = runtime.resolve_mode(mode)
    capture_tracer = tracer if tracer is not None else Tracer(sink=sink)
    capture_registry = registry if registry is not None else MetricsRegistry()
    flush_batch()  # settle any enclosing batched capture first
    previous_tracer = set_tracer(capture_tracer)
    previous_registry = set_registry(capture_registry)
    previous_state = runtime.state()
    runtime.set_mode(resolved, sampler=sampler)
    try:
        yield capture_tracer, capture_registry
    finally:
        flush_batch(capture_registry)
        runtime.restore(previous_state)
        set_tracer(previous_tracer)
        set_registry(previous_registry)
