"""``repro.obs`` -- observability for simulator and harness runs.

Five pieces, all off by default:

* :mod:`repro.obs.tracing` -- span trees over both clocks (simulated
  and wall time), fed by instrumentation in ``repro.net`` and the
  harness;
* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-bucket
  histograms (events processed, messages, bytes, packet sizes, hop
  latencies, ledger observations);
* :mod:`repro.obs.export` -- JSONL and text-tree exporters;
* :mod:`repro.obs.provenance` -- the causal event graph joining
  ledger observations, wire packets, and spans, with the
  ``why`` / ``knowledge_timeline`` / ``breach_chain`` queries;
* :mod:`repro.obs.analyze` -- per-span-name statistics and
  critical-path extraction over a captured trace.

``provenance`` and ``analyze`` are deliberately *not* imported here:
they depend on :mod:`repro.core`, which imports this package at
startup -- import them directly (``from repro.obs import provenance``)
after the core is loaded.

The usual entry point is :func:`capture`::

    with obs.capture() as (tracer, registry):
        run = run_mixnet()
    print(export.render_span_tree(tracer.spans))

which installs a fresh tracer/registry as the process defaults, flips
the global gate on, and restores everything on exit.  While the gate is
off, every instrumented hot path short-circuits on one module-attribute
check -- a run with observability disabled performs like one built
without it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from . import export, runtime
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
    get_registry,
    set_registry,
)
from .tracing import NOOP_SPAN, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
    "capture",
    "disable",
    "enable",
    "export",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "runtime",
    "set_registry",
    "set_tracer",
]

enable = runtime.enable
disable = runtime.disable
is_enabled = runtime.is_enabled


@contextmanager
def capture(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable observability into a (fresh by default) tracer/registry.

    Installs both as the process defaults and turns the global gate on;
    on exit the previous defaults and gate state come back, so captures
    nest and never leak into later runs.
    """
    capture_tracer = tracer if tracer is not None else Tracer()
    capture_registry = registry if registry is not None else MetricsRegistry()
    previous_tracer = set_tracer(capture_tracer)
    previous_registry = set_registry(capture_registry)
    previous_enabled = runtime.ENABLED
    runtime.ENABLED = True
    try:
        yield capture_tracer, capture_registry
    finally:
        runtime.ENABLED = previous_enabled
        set_tracer(previous_tracer)
        set_registry(previous_registry)
