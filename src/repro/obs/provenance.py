"""The provenance graph: why does an entity know what it knows?

The reproduction's central claim is that knowledge tables are *derived
from actual protocol runs, not asserted*.  This module is the receipt:
it joins the three records a run already produces --

* the observation ledger (:mod:`repro.core.ledger`): who learned what,
* the traffic trace (:mod:`repro.net.trace`): which packets crossed
  which links when, and
* the span tree (:mod:`repro.obs.tracing`): which delivery caused
  which send,

-- into one causal event graph, keyed on the packet ids the network
stamps into every delivery-caused observation.  On top of the graph,
:meth:`ProvenanceGraph.why` answers "why does the resolver know the
query?" with the full chain from originating send through every
forwarding hop to the recorded observation, including the value's
derivation steps (``blind``, ``seal``, ``aggregate``, ...);
:meth:`ProvenanceGraph.knowledge_timeline` shows when each entity's
knowledge tuple grew; and :meth:`ProvenanceGraph.breach_chain` traces a
re-coupling back to the concrete observations (and packets) that
enabled it.

Nothing here guesses: every edge is read off a recorded artifact.
Edges and their sources:

``delivered``  deliver-span -> packet     span ``packet_id`` attribute
``forwarded``  packet -> packet           span ancestry (a send issued
                                          while delivering another
                                          packet is a forwarding hop)
``observed``   packet -> observation      ``Observation.packet_id``
``session``    observation -> observation shared ``session`` tag
``value``      observation -> observation shared value digest
``child``      span -> span               span parent links

The graph serializes to typed ``provenance`` JSONL records
(:meth:`ProvenanceGraph.to_dicts` / :meth:`ProvenanceGraph.from_dicts`)
that round-trip: every query works identically on a graph rebuilt from
disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.analysis import BreachReport, _DisjointSet
from repro.core.labels import Label
from repro.core.ledger import Ledger, Observation
from repro.core.serialize import label_to_dict

__all__ = [
    "ProvenanceError",
    "PacketHop",
    "ProvenanceChain",
    "TimelineEvent",
    "BreachChain",
    "ProvenanceGraph",
    "build_provenance",
    "knowledge_timeline",
    "render_timeline",
]


class ProvenanceError(LookupError):
    """Raised when a provenance query asks about a fact nobody recorded."""


# ----------------------------------------------------------------------
# Query results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PacketHop:
    """One wire packet along a chain, origin-to-destination ordered."""

    packet_id: int
    time: Optional[float] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    protocol: Optional[str] = None
    size: Optional[int] = None

    @classmethod
    def from_node(cls, node: Dict[str, Any]) -> "PacketHop":
        return cls(
            packet_id=node["packet_id"],
            time=node.get("time"),
            src=node.get("src"),
            dst=node.get("dst"),
            protocol=node.get("protocol"),
            size=node.get("size"),
        )

    def render(self) -> str:
        where = (
            f"{self.src} -> {self.dst}"
            if self.src is not None and self.dst is not None
            else "(wire metadata not captured)"
        )
        extras = []
        if self.protocol is not None:
            extras.append(self.protocol)
        if self.time is not None:
            extras.append(f"t={self.time:.3f}")
        if self.size is not None:
            extras.append(f"{self.size}B")
        suffix = f"  [{', '.join(extras)}]" if extras else ""
        return f"pkt#{self.packet_id}  {where}{suffix}"


@dataclass(frozen=True)
class ProvenanceChain:
    """The full causal account of one observation.

    ``hops`` runs origin-first: the packet the information left on,
    each forwarding hop, and finally the packet whose delivery produced
    the observation.  Empty ``hops`` means a local act (a self
    observation, an attestation, a breach) -- ``origin`` says which.
    """

    observation: Dict[str, Any]
    hops: Tuple[PacketHop, ...]
    derivation: Tuple[str, ...]
    origin: str

    @property
    def entity(self) -> str:
        return self.observation["entity"]

    @property
    def subject(self) -> str:
        return self.observation["subject"]

    @property
    def glyph(self) -> str:
        return self.observation["glyph"]

    def render(self) -> str:
        obs = self.observation
        lines = [
            f"{obs['glyph']}[{obs['description'] or '(unnamed)'}]"
            f" of {obs['subject']} -- held by {obs['entity']}"
        ]
        if self.derivation:
            lines.append(f"  derivation: {' -> '.join(self.derivation)}")
        lines.append(f"  origin: {self.origin}")
        for step, hop in enumerate(self.hops, start=1):
            lines.append(f"  {step}. {hop.render()}")
        session = f" (session {obs['session']!r})" if obs["session"] else ""
        lines.append(
            f"  => observed via {obs['channel']!r}"
            f" at t={obs['time']:.3f}{session}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class TimelineEvent:
    """One growth step of one entity's knowledge tuple."""

    time: float
    entity: str
    subject: str
    glyph: str
    description: str
    channel: str
    packet_id: Optional[int] = None

    def render(self) -> str:
        cause = f"pkt#{self.packet_id}" if self.packet_id is not None else "local act"
        return (
            f"t={self.time:8.3f}  {self.entity:<20} +{self.glyph:<4}"
            f" of {self.subject:<12} {self.description or '(unnamed)':<28}"
            f" [{self.channel}, {cause}]"
        )


@dataclass(frozen=True)
class BreachChain:
    """Why breaching one organization couples one subject.

    ``identity_chain`` and ``data_chain`` are the wire-level accounts
    of the two witness observations; ``link`` says how the analyzer
    joins them (shared session, shared value, share reconstruction, or
    transitive linkage through further observations).
    """

    organization: str
    subject: str
    link: str
    identity_chain: ProvenanceChain
    data_chain: ProvenanceChain

    def render(self) -> str:
        lines = [
            f"breach of {self.organization} couples {self.subject}:"
            f" {self.link}",
            "  identity witness:",
        ]
        lines.extend("  " + line for line in self.identity_chain.render().splitlines())
        lines.append("  data witness:")
        lines.extend("  " + line for line in self.data_chain.render().splitlines())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------


class ProvenanceGraph:
    """A causal event graph over one run's recorded artifacts.

    Nodes are plain dicts (so the graph round-trips through JSONL
    unchanged); ids are ``pkt:<packet_id>``, ``obs:<ledger-index>``
    and ``span:<span_id>``.  Edges are ``(type, src, dst)`` triples.
    Build one with :func:`build_provenance` or rebuild from disk with
    :meth:`from_dicts`.
    """

    def __init__(self) -> None:
        self.nodes: Dict[str, Dict[str, Any]] = {}
        self.edges: List[Tuple[str, str, str]] = []
        self._out: Dict[Tuple[str, str], List[str]] = {}
        self._in: Dict[Tuple[str, str], List[str]] = {}

    # -- construction ---------------------------------------------------

    def add_node(self, node: Dict[str, Any]) -> None:
        self.nodes[node["id"]] = node

    def add_edge(self, etype: str, src: str, dst: str) -> None:
        self.edges.append((etype, src, dst))
        self._out.setdefault((etype, src), []).append(dst)
        self._in.setdefault((etype, dst), []).append(src)

    def _ensure_packet(self, packet_id: int) -> str:
        """The node id for a packet, creating a stub if the wire trace
        was not captured (ledger-only builds still end at a concrete
        packet id)."""
        node_id = f"pkt:{packet_id}"
        if node_id not in self.nodes:
            self.add_node({"node": "packet", "id": node_id, "packet_id": packet_id})
        return node_id

    # -- views ----------------------------------------------------------

    def _obs_nodes(self) -> List[Dict[str, Any]]:
        return [n for n in self.nodes.values() if n["node"] == "observation"]

    def entities(self) -> Tuple[str, ...]:
        """Entity names with observations, in first-appearance order."""
        seen: Dict[str, None] = {}
        for node in self._obs_nodes():
            seen.setdefault(node["entity"], None)
        return tuple(seen)

    def summary(self) -> Dict[str, int]:
        """Node/edge counts by type, for report sections."""
        counts: Dict[str, int] = {}
        for node in self.nodes.values():
            key = f"nodes.{node['node']}"
            counts[key] = counts.get(key, 0) + 1
        for etype, _, _ in self.edges:
            key = f"edges.{etype}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- why ------------------------------------------------------------

    def why(
        self,
        entity: str,
        fact: Optional[Any] = None,
        *,
        subject: Optional[Any] = None,
    ) -> List[ProvenanceChain]:
        """The causal chains behind an entity's knowledge of ``fact``.

        ``fact`` may be ``None`` (every *sensitive* fact the entity
        holds), a :class:`~repro.core.labels.Label`, a glyph string
        (``"▲"``, ``"⊙/●"``, ``"▲_N"``), a kind/facet/sensitivity word
        (``"identity"``, ``"network"``, ``"sensitive"``), or a
        case-insensitive description substring (``"source IP"``).
        Chains are deduplicated by (subject, glyph, description) and
        ordered earliest-first.

        Raises :class:`ProvenanceError` -- listing what *is* held -- if
        the entity does not hold any matching fact.
        """
        pool = [n for n in self._obs_nodes() if n["entity"] == entity]
        if not pool:
            known = ", ".join(self.entities()) or "(none)"
            raise ProvenanceError(
                f"no observations by entity {entity!r};"
                f" entities in this run: {known}"
            )
        if subject is not None:
            subject_name = getattr(subject, "name", None) or str(subject)
            pool = [n for n in pool if n["subject"] == subject_name]
            if not pool:
                raise ProvenanceError(
                    f"{entity} observed nothing about subject {subject_name!r}"
                )
        matching = [n for n in pool if _fact_matches(n, fact)]
        if not matching:
            held = sorted(
                {
                    f"{n['glyph']}[{n['description'] or '(unnamed)'}]"
                    f" of {n['subject']}"
                    for n in pool
                }
            )
            wanted = "any sensitive fact" if fact is None else f"{_describe_fact(fact)}"
            raise ProvenanceError(
                f"{entity} does not hold {wanted}; facts held: "
                + "; ".join(held)
            )
        matching.sort(key=lambda n: (n["time"], n["index"]))
        seen: Set[Tuple[str, str, str]] = set()
        chains: List[ProvenanceChain] = []
        for node in matching:
            key = (node["subject"], node["glyph"], node["description"])
            if key in seen:
                continue
            seen.add(key)
            chains.append(self.chain_for(node))
        return chains

    def chain_for(self, node: Dict[str, Any]) -> ProvenanceChain:
        """The send -> hops -> delivery -> observation chain of one node."""
        packet_id = node.get("packet_id")
        hops: List[PacketHop] = []
        if packet_id is not None:
            chain_ids: List[str] = []
            current: Optional[str] = f"pkt:{packet_id}"
            while current is not None and current not in chain_ids:
                chain_ids.append(current)
                predecessors = self._in.get(("forwarded", current))
                current = predecessors[0] if predecessors else None
            chain_ids.reverse()  # origin first
            hops = [PacketHop.from_node(self.nodes[nid]) for nid in chain_ids]
            first = hops[0]
            origin = (
                f"sent from {first.src}"
                if first.src is not None
                else f"wire packet #{first.packet_id}"
            )
        else:
            origin = f"local act via channel {node['channel']!r}"
        return ProvenanceChain(
            observation=node,
            hops=tuple(hops),
            derivation=tuple(node.get("provenance", ())),
            origin=origin,
        )

    # -- timeline -------------------------------------------------------

    def knowledge_timeline(self) -> List[TimelineEvent]:
        """When each entity's knowledge tuple grew, in time order.

        One event per *new* (entity, subject, glyph) -- repeat
        observations of an already-held mark do not grow the tuple and
        are skipped.
        """
        grown: Set[Tuple[str, str, str]] = set()
        events: List[TimelineEvent] = []
        for node in sorted(self._obs_nodes(), key=lambda n: (n["time"], n["index"])):
            key = (node["entity"], node["subject"], node["glyph"])
            if key in grown:
                continue
            grown.add(key)
            events.append(
                TimelineEvent(
                    time=node["time"],
                    entity=node["entity"],
                    subject=node["subject"],
                    glyph=node["glyph"],
                    description=node["description"],
                    channel=node["channel"],
                    packet_id=node.get("packet_id"),
                )
            )
        return events

    # -- breach ---------------------------------------------------------

    def breach_chain(self, breach: BreachReport) -> List[BreachChain]:
        """Trace each coupled subject of a breach to witness packets.

        Rebuilds the analyzer's linkage components (sessions, value
        digests, reconstructable share groups) over the breached
        organization's observations and, per coupled subject, picks the
        earliest sensitive-identity and sensitive-data witnesses in a
        shared component, returning both wire-level chains plus a
        description of the joining link.
        """
        chains: List[BreachChain] = []
        for subject in breach.coupled_subjects:
            subject_name = getattr(subject, "name", None) or str(subject)
            pool = [
                n
                for n in self._obs_nodes()
                if n["organization"] == breach.organization
                and n["subject"] == subject_name
            ]
            witness = _find_witness(pool)
            if witness is None:
                continue  # graph lacks the observations the report saw
            identity_node, data_node, link = witness
            chains.append(
                BreachChain(
                    organization=breach.organization,
                    subject=subject_name,
                    link=link,
                    identity_chain=self.chain_for(identity_node),
                    data_chain=self.chain_for(data_node),
                )
            )
        return chains

    # -- serialization --------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Typed ``provenance`` records: nodes first, then edges."""
        rows: List[Dict[str, Any]] = []
        for node in self.nodes.values():
            rows.append({"type": "provenance", "record": "node", **node})
        for etype, src, dst in self.edges:
            rows.append(
                {
                    "type": "provenance",
                    "record": "edge",
                    "edge": etype,
                    "src": src,
                    "dst": dst,
                }
            )
        return rows

    @classmethod
    def from_dicts(cls, rows: Iterable[Dict[str, Any]]) -> "ProvenanceGraph":
        """Rebuild a graph from :meth:`to_dicts` rows.

        Rows of other types (spans, metrics in a shared JSONL file) are
        ignored, so the full export can be fed back unfiltered.
        """
        graph = cls()
        for row in rows:
            if row.get("type") != "provenance":
                continue
            if row.get("record") == "node":
                node = {
                    k: v for k, v in row.items() if k not in ("type", "record")
                }
                if "provenance" in node:
                    node["provenance"] = tuple(node["provenance"])
                graph.add_node(node)
            elif row.get("record") == "edge":
                graph.add_edge(row["edge"], row["src"], row["dst"])
        return graph

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(row, ensure_ascii=False, sort_keys=True, default=str)
            for row in self.to_dicts()
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "ProvenanceGraph":
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
        return cls.from_dicts(rows)

    def __len__(self) -> int:
        return len(self.nodes)


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def build_provenance(
    run: Any = None,
    tracer: Any = None,
    *,
    ledger: Optional[Ledger] = None,
    network: Any = None,
) -> ProvenanceGraph:
    """Assemble the provenance graph of one run.

    ``run`` is duck-typed: any object with a ``world`` (or ``ledger``)
    and optionally a ``network`` works -- every scenario's run object
    does.  ``tracer`` supplies the span tree (pass the tracer a
    :func:`repro.obs.capture` block installed); missing pieces degrade
    gracefully: without spans, chains have no forwarding hops; without
    the network trace, packets are id-only stubs.
    """
    if ledger is None:
        world = getattr(run, "world", None)
        if world is None:
            world = getattr(getattr(run, "analyzer", None), "world", None)
        ledger = world.ledger if world is not None else getattr(run, "ledger", None)
    if ledger is None:
        raise ValueError("build_provenance needs a run with a world/ledger")
    if network is None:
        network = getattr(run, "network", None)
    trace = getattr(network, "trace", None)
    spans: Sequence[Any] = tracer.spans if tracer is not None else ()

    graph = ProvenanceGraph()

    # Packets, in wire order.  A packet delivered twice (impossible
    # today) would keep its first record.
    if trace is not None:
        for record in trace:
            node_id = f"pkt:{record.packet_id}"
            if node_id in graph.nodes:
                continue
            graph.add_node(
                {
                    "node": "packet",
                    "id": node_id,
                    "packet_id": record.packet_id,
                    "time": record.time,
                    "src": str(record.src),
                    "dst": str(record.dst),
                    "size": record.size,
                    "protocol": record.protocol,
                }
            )

    # Observations, in ledger order.
    for index, obs in enumerate(ledger):
        graph.add_node(_observation_node(index, obs))

    # Spans, in completion order.
    span_ids: Set[int] = set()
    for span in spans:
        span_ids.add(span.span_id)
        wall = span.wall_seconds
        graph.add_node(
            {
                "node": "span",
                "id": f"span:{span.span_id}",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "kind": span.kind,
                "sim_start": span.sim_start,
                "sim_end": span.sim_end,
                "wall_ms": round(wall * 1000.0, 3) if wall is not None else None,
                "attributes": dict(span.attributes),
            }
        )

    # child: span parent links.
    for span in spans:
        if span.parent_id is not None and span.parent_id in span_ids:
            graph.add_edge("child", f"span:{span.parent_id}", f"span:{span.span_id}")

    # delivered + forwarded: read hop causality off the span tree.  A
    # deliver span's nearest deliver ancestor delivered the packet that
    # caused this one to be sent (the handler ran inside that span).
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.name != "deliver" or "packet_id" not in span.attributes:
            continue
        packet_node = graph._ensure_packet(span.attributes["packet_id"])
        graph.add_edge("delivered", f"span:{span.span_id}", packet_node)
        ancestor_id = span.parent_id
        while ancestor_id is not None:
            ancestor = by_id.get(ancestor_id)
            if ancestor is None:
                break
            if ancestor.name == "deliver" and "packet_id" in ancestor.attributes:
                previous = graph._ensure_packet(ancestor.attributes["packet_id"])
                graph.add_edge("forwarded", previous, packet_node)
                break
            ancestor_id = ancestor.parent_id

    # observed: the packet each observation rode in on.
    for index, obs in enumerate(ledger):
        if obs.packet_id is not None:
            graph.add_edge(
                "observed", graph._ensure_packet(obs.packet_id), f"obs:{index}"
            )

    # session / value: the linkage edges the coupling analysis uses.
    # Chained consecutively (not as cliques) to keep the graph linear
    # in the ledger.
    sessions: Dict[str, str] = {}
    digests: Dict[str, str] = {}
    for index, obs in enumerate(ledger):
        node_id = f"obs:{index}"
        if obs.session:
            previous = sessions.get(obs.session)
            if previous is not None:
                graph.add_edge("session", previous, node_id)
            sessions[obs.session] = node_id
        previous = digests.get(obs.value_digest)
        if previous is not None:
            graph.add_edge("value", previous, node_id)
        digests[obs.value_digest] = node_id

    return graph


def _observation_node(index: int, obs: Observation) -> Dict[str, Any]:
    node: Dict[str, Any] = {
        "node": "observation",
        "id": f"obs:{index}",
        "index": index,
        "entity": obs.entity,
        "organization": obs.organization,
        "subject": obs.subject.name,
        "glyph": obs.label.glyph,
        "label": label_to_dict(obs.label),
        "description": obs.description,
        "time": obs.time,
        "channel": obs.channel,
        "session": obs.session,
        "provenance": tuple(obs.provenance),
        "value_digest": obs.value_digest,
        "packet_id": obs.packet_id,
    }
    if obs.share_info is not None:
        node["share_info"] = {
            "group": obs.share_info.group,
            "index": obs.share_info.index,
            "total": obs.share_info.total,
        }
    return node


# ----------------------------------------------------------------------
# Fact matching and breach witnesses
# ----------------------------------------------------------------------

_KIND_WORDS = {"identity", "data"}
_FACET_WORDS = {"human": "human", "network": "network", "generic": "generic"}
_SENSITIVITY_WORDS = {
    "sensitive": True,
    "nonsensitive": False,
    "non-sensitive": False,
}


def _fact_matches(node: Dict[str, Any], fact: Optional[Any]) -> bool:
    label = node["label"]
    if fact is None:
        return label["sensitivity"] == "sensitive"
    if isinstance(fact, Label):
        return label == label_to_dict(fact)
    text = str(fact)
    if text == node["glyph"]:
        return True
    lowered = text.lower()
    if lowered in _KIND_WORDS:
        return label["kind"] == lowered
    if lowered in _FACET_WORDS:
        return label["kind"] == "identity" and label["facet"] == _FACET_WORDS[lowered]
    if lowered in _SENSITIVITY_WORDS:
        return (label["sensitivity"] == "sensitive") is _SENSITIVITY_WORDS[lowered]
    return lowered in node["description"].lower()


def _describe_fact(fact: Any) -> str:
    if isinstance(fact, Label):
        return f"label {fact.glyph}"
    return f"{fact!r}"


def _find_witness(
    pool: List[Dict[str, Any]],
) -> Optional[Tuple[Dict[str, Any], Dict[str, Any], str]]:
    """Earliest (identity, data, link) witness triple in a linked pool.

    Mirrors :func:`repro.core.analysis._observations_couple` -- same
    session/digest/share-group unions -- but keeps the witnesses rather
    than just the boolean.
    """
    if not pool:
        return None
    dsu = _DisjointSet()
    share_indices: Dict[str, Set[int]] = {}
    share_totals: Dict[str, int] = {}
    share_nodes: Dict[str, List[Dict[str, Any]]] = {}
    for position, node in enumerate(pool):
        token = ("obs", position)
        if node["session"]:
            dsu.union(token, ("session", node["session"]))
        dsu.union(token, ("digest", node["value_digest"]))
        share = node.get("share_info")
        if share is not None:
            share_indices.setdefault(share["group"], set()).add(share["index"])
            share_totals[share["group"]] = share["total"]
            share_nodes.setdefault(share["group"], []).append(node)

    reconstructed: List[Tuple[str, Dict[str, Any]]] = []
    for group, indices in share_indices.items():
        if len(indices) >= share_totals[group]:
            members = share_nodes[group]
            first = ("obs", pool.index(members[0]))
            for other in members[1:]:
                dsu.union(first, ("obs", pool.index(other)))
            reconstructed.append((group, members[0]))

    def root(node: Dict[str, Any]) -> object:
        return dsu.find(("obs", pool.index(node)))

    identity_nodes = [
        n
        for n in pool
        if n["label"]["kind"] == "identity" and n["label"]["sensitivity"] == "sensitive"
    ]
    data_nodes = [
        n
        for n in pool
        if n["label"]["kind"] == "data" and n["label"]["sensitivity"] == "sensitive"
    ]
    for identity_node in sorted(identity_nodes, key=lambda n: (n["time"], n["index"])):
        identity_root = root(identity_node)
        for data_node in sorted(data_nodes, key=lambda n: (n["time"], n["index"])):
            if root(data_node) != identity_root:
                continue
            if (
                identity_node["session"]
                and identity_node["session"] == data_node["session"]
            ):
                link = f"shared session {identity_node['session']!r}"
            elif identity_node["value_digest"] == data_node["value_digest"]:
                link = "the same value seen in both observations"
            else:
                link = "transitive linkage through further observations"
            return identity_node, data_node, link
        # No directly sensitive data in the component: a reconstructable
        # share group may supply it (Prio-style coalitions).
        for group, member in reconstructed:
            if root(member) == identity_root:
                return (
                    identity_node,
                    member,
                    f"reconstruction of all secret shares of group {group!r}",
                )
    return None


# ----------------------------------------------------------------------
# Conveniences
# ----------------------------------------------------------------------


def knowledge_timeline(source: Any, tracer: Any = None) -> List[TimelineEvent]:
    """Timeline of a world, run object, or pre-built graph."""
    if isinstance(source, ProvenanceGraph):
        return source.knowledge_timeline()
    ledger = getattr(source, "ledger", None)
    if isinstance(ledger, Ledger):
        # A World (or anything ledger-bearing): build from the ledger.
        return build_provenance(None, tracer, ledger=ledger).knowledge_timeline()
    return build_provenance(source, tracer).knowledge_timeline()


def render_timeline(events: Sequence[TimelineEvent]) -> str:
    if not events:
        return "(no observations)"
    return "\n".join(event.render() for event in events)
