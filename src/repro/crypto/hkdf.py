"""HKDF (RFC 5869) over HMAC-SHA-256.

The extract-and-expand key derivation function used by HPKE and the
simulated TLS handshake.  Verified against the RFC 5869 test vectors in
``tests/test_crypto_hkdf.py``.
"""

from __future__ import annotations

from .hashutil import hmac_sha256

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf"]

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: a pseudorandom key from input keying material."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: ``length`` bytes of output keying material."""
    if length > 255 * _HASH_LEN:
        raise ValueError("requested HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(prk, previous, info, bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """Extract-then-expand in one call."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
