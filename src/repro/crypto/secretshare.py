"""Secret sharing and Prio-style validated aggregation.

The substrate for the paper's Private Aggregate Statistics analysis
(section 3.2.5): additive sharing over a prime field (what Prio/PPM
deployments use for sums), Shamir threshold sharing, and a
Beaver-triple multiplication check that lets aggregators verify a
shared value is boolean without learning it.

The validity check follows Prio's *structure* (client-supplied
multiplication triples, aggregators exchanging only masked openings);
full SNIP soundness against *malicious* clients additionally requires
random-point polynomial evaluation, which we note in DESIGN.md as out
of scope -- the privacy (decoupling) properties, which are what the
paper analyzes, are identical.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .numtheory import modinv, random_below

__all__ = [
    "FIELD_PRIME",
    "COUNTER_MODULUS",
    "share_additive",
    "reconstruct_additive",
    "share_counter",
    "combine_shares",
    "shamir_share",
    "shamir_reconstruct",
    "BeaverTriple",
    "BooleanValidityProof",
    "make_boolean_proof",
    "check_boolean_shares",
    "HistogramProof",
    "make_histogram_proof",
    "check_histogram_shares",
]

#: A 61-bit Mersenne prime: fast arithmetic, room for large sums.
FIELD_PRIME = 2**61 - 1

#: The PrivCount-style counter modulus: a power of two, *not* a prime.
#: Counter arithmetic only ever adds and subtracts, so any modulus
#: works, and 2**64 matches the fixed-width registers deployed
#: collectors actually hold.
COUNTER_MODULUS = 2**64


def share_additive(
    value: int,
    parties: int,
    prime: int = FIELD_PRIME,
    rng: Optional[_random.Random] = None,
) -> List[int]:
    """Split ``value`` into ``parties`` additive shares mod ``prime``.

    Any proper subset of shares is uniformly random and independent of
    ``value`` -- the information-theoretic heart of PPM decoupling.
    """
    if parties < 1:
        raise ValueError("need at least one party")
    shares = [random_below(prime, rng) for _ in range(parties - 1)]
    last = (value - sum(shares)) % prime
    shares.append(last)
    return shares


def reconstruct_additive(shares: Sequence[int], prime: int = FIELD_PRIME) -> int:
    """Sum shares mod ``prime`` (requires *all* shares)."""
    return sum(shares) % prime


def share_counter(
    value: int,
    parties: int,
    modulus: int = COUNTER_MODULUS,
    rng: Optional[_random.Random] = None,
) -> List[int]:
    """Split an event counter into ``parties`` additive shares mod q.

    The PrivCount register split: the first ``parties - 1`` shares are
    uniform blinding values (one per share keeper), the last is the
    balancing *blinded register* a data collector holds in memory.
    Any strict subset of shares is uniformly random and independent of
    ``value``; only the full set recombines.  Unlike
    :func:`share_additive` the modulus need not be prime, and ``value``
    may be any integer (negative deltas reduce mod q).
    """
    if parties < 1:
        raise ValueError("need at least one party")
    if modulus < 2:
        raise ValueError("modulus must be at least 2")
    shares = [random_below(modulus, rng) for _ in range(parties - 1)]
    shares.append((value - sum(shares)) % modulus)
    return shares


def combine_shares(
    shares: Sequence[int],
    modulus: int = COUNTER_MODULUS,
    signed: bool = False,
) -> int:
    """Recombine counter shares mod q (requires *all* shares).

    ``signed`` decodes the result into ``(-q/2, q/2]``, the convention
    PrivCount uses so a register that went negative (noise, or a
    decrement-heavy statistic) reads back as a negative count instead
    of a huge positive one.
    """
    if not shares:
        raise ValueError("no shares given")
    if modulus < 2:
        raise ValueError("modulus must be at least 2")
    total = sum(shares) % modulus
    if signed and total > modulus // 2:
        total -= modulus
    return total


def _poly_eval(coefficients: Sequence[int], x: int, prime: int) -> int:
    acc = 0
    for coefficient in reversed(coefficients):
        acc = (acc * x + coefficient) % prime
    return acc


def shamir_share(
    value: int,
    parties: int,
    threshold: int,
    prime: int = FIELD_PRIME,
    rng: Optional[_random.Random] = None,
) -> List[Tuple[int, int]]:
    """Shamir ``threshold``-of-``parties`` sharing: [(x, f(x)), ...]."""
    if not 1 <= threshold <= parties:
        raise ValueError("need 1 <= threshold <= parties")
    coefficients = [value % prime] + [
        random_below(prime, rng) for _ in range(threshold - 1)
    ]
    return [(x, _poly_eval(coefficients, x, prime)) for x in range(1, parties + 1)]


def shamir_reconstruct(
    shares: Sequence[Tuple[int, int]], prime: int = FIELD_PRIME
) -> int:
    """Lagrange interpolation at 0 from any ``threshold`` shares."""
    if not shares:
        raise ValueError("no shares given")
    xs = [x for x, _ in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share indices")
    secret = 0
    for i, (xi, yi) in enumerate(shares):
        numerator, denominator = 1, 1
        for j, (xj, _) in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-xj)) % prime
            denominator = (denominator * (xi - xj)) % prime
        secret = (secret + yi * numerator * modinv(denominator, prime)) % prime
    return secret


@dataclass(frozen=True)
class BeaverTriple:
    """Shares of a multiplication triple ``c = a * b`` for one party."""

    a: int
    b: int
    c: int


@dataclass(frozen=True)
class BooleanValidityProof:
    """Per-aggregator material proving a shared value is 0 or 1.

    Contains this aggregator's shares of ``x``, of ``x - 1``, and of a
    client-generated Beaver triple.  Aggregators run
    :func:`check_boolean_shares` to jointly verify ``x * (x - 1) = 0``
    while each sees only uniformly random field elements.
    """

    x_share: int
    x_minus_one_share: int
    triple: BeaverTriple


def make_boolean_proof(
    value: int,
    parties: int,
    prime: int = FIELD_PRIME,
    rng: Optional[_random.Random] = None,
) -> List[BooleanValidityProof]:
    """Client side: share ``value`` with boolean-validity material."""
    x_shares = share_additive(value, parties, prime, rng)
    x1_shares = share_additive((value - 1) % prime, parties, prime, rng)
    a = random_below(prime, rng)
    b = random_below(prime, rng)
    c = (a * b) % prime
    a_shares = share_additive(a, parties, prime, rng)
    b_shares = share_additive(b, parties, prime, rng)
    c_shares = share_additive(c, parties, prime, rng)
    return [
        BooleanValidityProof(
            x_share=x_shares[i],
            x_minus_one_share=x1_shares[i],
            triple=BeaverTriple(a=a_shares[i], b=b_shares[i], c=c_shares[i]),
        )
        for i in range(parties)
    ]


@dataclass(frozen=True)
class HistogramProof:
    """One aggregator's share of a one-hot histogram report.

    A histogram report is a vector with exactly one 1 (the client's
    bucket).  Validity = every entry is boolean (per-entry Beaver
    material) *and* the entries sum to 1 (checkable locally per
    aggregator since summation is linear: the aggregators' published
    sums of their entry-shares must total 1).
    """

    entries: Tuple[BooleanValidityProof, ...]

    def entry_share_sum(self, prime: int = FIELD_PRIME) -> int:
        """This aggregator's share of sum(x): safe to publish once per
        report (it is a share of the public constant 1 for valid
        reports)."""
        return sum(entry.x_share for entry in self.entries) % prime


def make_histogram_proof(
    bucket: int,
    buckets: int,
    parties: int,
    prime: int = FIELD_PRIME,
    rng: Optional[_random.Random] = None,
) -> List[HistogramProof]:
    """Client side: share a one-hot vector with validity material."""
    if not 0 <= bucket < buckets:
        raise ValueError("bucket out of range")
    per_entry: List[List[BooleanValidityProof]] = []
    for index in range(buckets):
        value = 1 if index == bucket else 0
        per_entry.append(make_boolean_proof(value, parties, prime, rng))
    return [
        HistogramProof(entries=tuple(per_entry[j][i] for j in range(buckets)))
        for i in range(parties)
    ]


def check_histogram_shares(
    proofs: Sequence[HistogramProof], prime: int = FIELD_PRIME
) -> bool:
    """Aggregator side: one-hot validity over the parties' shares.

    Every entry must pass the Beaver boolean check and the published
    entry-share sums must reconstruct exactly 1.
    """
    if not proofs:
        raise ValueError("no proofs given")
    buckets = len(proofs[0].entries)
    if any(len(p.entries) != buckets for p in proofs):
        raise ValueError("inconsistent histogram widths")
    for entry_index in range(buckets):
        entry_shares = [p.entries[entry_index] for p in proofs]
        if not check_boolean_shares(entry_shares, prime):
            return False
    total = sum(p.entry_share_sum(prime) for p in proofs) % prime
    return total == 1


def check_boolean_shares(
    proofs: Sequence[BooleanValidityProof], prime: int = FIELD_PRIME
) -> bool:
    """Aggregator side: jointly verify ``x * (x - 1) == 0``.

    Beaver's protocol: parties open ``d = x - a`` and ``e = (x-1) - b``
    (both uniformly random, revealing nothing), then the product shares
    are ``de/n + d*b_i + e*a_i + c_i``; the sum must be 0.

    The function simulates the aggregators' exchange; each step uses
    only values an individual aggregator could see.
    """
    n = len(proofs)
    if n == 0:
        raise ValueError("no proofs given")
    # Each aggregator broadcasts its d/e shares; everyone sums them.
    d = sum((p.x_share - p.triple.a) % prime for p in proofs) % prime
    e = sum((p.x_minus_one_share - p.triple.b) % prime for p in proofs) % prime
    de_term = (d * e) % prime
    total = 0
    for index, proof in enumerate(proofs):
        share = (d * proof.triple.b + e * proof.triple.a + proof.triple.c) % prime
        if index == 0:  # exactly one party adds the public d*e term
            share = (share + de_term) % prime
        total = (total + share) % prime
    return total == 0
