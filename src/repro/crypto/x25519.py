"""X25519 Diffie-Hellman (RFC 7748), implemented from scratch.

The Montgomery-ladder scalar multiplication over Curve25519, exactly
as specified in RFC 7748 section 5, including scalar clamping and
little-endian encodings.  Verified against the RFC's test vectors in
``tests/test_crypto_x25519.py``.

This is the KEM substrate for HPKE (:mod:`repro.crypto.hpke`), which in
turn powers the ODoH and OHTTP models.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["X25519PrivateKey", "x25519", "X25519_BASEPOINT"]

P = 2**255 - 19
A24 = 121665
X25519_BASEPOINT = b"\x09" + b"\x00" * 31


def _decode_u_coordinate(u: bytes) -> int:
    if len(u) != 32:
        raise ValueError("u-coordinate must be 32 bytes")
    value = int.from_bytes(u, "little")
    return value & ((1 << 255) - 1)  # mask the high bit per RFC 7748


def _encode_u_coordinate(value: int) -> bytes:
    return (value % P).to_bytes(32, "little")


def _decode_scalar(scalar: bytes) -> int:
    if len(scalar) != 32:
        raise ValueError("scalar must be 32 bytes")
    raw = bytearray(scalar)
    raw[0] &= 248
    raw[31] &= 127
    raw[31] |= 64
    return int.from_bytes(bytes(raw), "little")


def _cswap(swap: int, a: int, b: int) -> Tuple[int, int]:
    """Conditional swap; branchless in spirit (this is a simulator)."""
    mask = -swap  # 0 or all-ones (Python ints extend infinitely)
    dummy = mask & (a ^ b)
    return a ^ dummy, b ^ dummy


def x25519(scalar: bytes, u: bytes = X25519_BASEPOINT) -> bytes:
    """The X25519 function: scalar multiplication on Curve25519.

    ``scalar`` and ``u`` are 32-byte strings; returns the 32-byte
    little-endian u-coordinate of the product.
    """
    k = _decode_scalar(scalar)
    x1 = _decode_u_coordinate(u)
    x2, z2 = 1, 0
    x3, z3 = x1, 1
    swap = 0
    for t in reversed(range(255)):
        k_t = (k >> t) & 1
        swap ^= k_t
        x2, x3 = _cswap(swap, x2, x3)
        z2, z3 = _cswap(swap, z2, z3)
        swap = k_t

        a = (x2 + z2) % P
        aa = (a * a) % P
        b = (x2 - z2) % P
        bb = (b * b) % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = (d * a) % P
        cb = (c * b) % P
        x3 = (da + cb) % P
        x3 = (x3 * x3) % P
        z3 = (da - cb) % P
        z3 = (z3 * z3) % P
        z3 = (z3 * x1) % P
        x2 = (aa * bb) % P
        z2 = (e * ((aa + A24 * e) % P)) % P

    x2, x3 = _cswap(swap, x2, x3)
    z2, z3 = _cswap(swap, z2, z3)
    result = (x2 * pow(z2, P - 2, P)) % P
    return _encode_u_coordinate(result)


@dataclass(frozen=True)
class X25519PrivateKey:
    """A clamped X25519 private key with its public key."""

    private_bytes: bytes

    @staticmethod
    def generate(seed: Optional[bytes] = None) -> "X25519PrivateKey":
        """A fresh key; pass a 32-byte ``seed`` for determinism."""
        raw = seed if seed is not None else secrets.token_bytes(32)
        if len(raw) != 32:
            raise ValueError("seed must be 32 bytes")
        return X25519PrivateKey(private_bytes=raw)

    @property
    def public_bytes(self) -> bytes:
        return x25519(self.private_bytes, X25519_BASEPOINT)

    def exchange(self, peer_public: bytes) -> bytes:
        """The shared secret with ``peer_public``.

        Raises ``ValueError`` on an all-zero result (non-contributory
        key exchange), per RFC 7748's MUST-check guidance.
        """
        shared = x25519(self.private_bytes, peer_public)
        if shared == b"\x00" * 32:
            raise ValueError("non-contributory X25519 exchange (zero shared secret)")
        return shared
