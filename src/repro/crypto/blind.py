"""Chaum blind signatures over RSA (paper section 3.1.1).

The protocol that first demonstrated the Decoupling Principle: a signer
authorizes a message it cannot read, and the unblinded signature cannot
be linked back to the signing session.

Protocol (all arithmetic mod ``n``)::

    requester: m' = H(m) * r^e        (blind with random unit r)
    signer:    s' = (m')^d            (sign the blinded value)
    requester: s  = s' * r^{-1}       (unblind)
    anyone:    s^e == H(m)            (verify as a normal RSA-FDH sig)

Unlinkability is information-theoretic: for *any* (blinded message,
final signature) pair there exists exactly one blinding factor
connecting them, so the signer's view is independent of which final
signature corresponds to which session.  A property test in
``tests/test_crypto_blind.py`` checks exactly this.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from .numtheory import modinv, random_unit
from .rsa import RsaPrivateKey, RsaPublicKey

__all__ = ["BlindingState", "blind", "sign_blinded", "unblind", "BlindSigner"]


@dataclass(frozen=True)
class BlindingState:
    """The requester's secret state: the blinding factor and message."""

    message: bytes
    blinding_factor: int
    blinded_value: int


def blind(
    public: RsaPublicKey, message: bytes, rng: Optional[_random.Random] = None
) -> BlindingState:
    """Blind ``message`` for signing under ``public``."""
    r = random_unit(public.n, rng)
    hashed = public.hash_to_modulus(message)
    blinded = (hashed * pow(r, public.e, public.n)) % public.n
    return BlindingState(message=message, blinding_factor=r, blinded_value=blinded)


def sign_blinded(private: RsaPrivateKey, blinded_value: int) -> int:
    """The signer's operation: a raw RSA signature on the blinded value.

    The signer learns nothing about the underlying message: the blinded
    value is uniformly distributed in the group of units mod ``n``.
    """
    return private.raw_sign_value(blinded_value)


def unblind(public: RsaPublicKey, state: BlindingState, blinded_signature: int) -> int:
    """Strip the blinding factor, yielding a plain RSA-FDH signature.

    Raises ``ValueError`` if the signer cheated (signature does not
    verify after unblinding).
    """
    signature = (blinded_signature * modinv(state.blinding_factor, public.n)) % public.n
    if not public.verify(state.message, signature):
        raise ValueError("unblinded signature failed verification")
    return signature


class BlindSigner:
    """A stateful signer that also tracks (blinded) signing sessions.

    The session log is what a curious or breached signer would hold;
    the unlinkability tests feed it to the analyzer to show the log
    cannot be correlated with redeemed signatures.
    """

    def __init__(self, private: RsaPrivateKey) -> None:
        self._private = private
        self.sessions: list[int] = []

    @property
    def public(self) -> RsaPublicKey:
        return self._private.public

    def sign(self, blinded_value: int) -> int:
        self.sessions.append(blinded_value)
        return sign_blinded(self._private, blinded_value)

    def could_link(self, message: bytes, signature: int) -> bool:
        """Whether the session log pins down which session signed this.

        For RSA blind signatures the answer is always ``False`` when
        more than one session exists: every session is consistent with
        every final signature (there is a blinding factor connecting
        each pair).  Implemented by exhibiting that factor.
        """
        n = self.public.n
        hashed = self.public.hash_to_modulus(message)
        consistent = 0
        for blinded in self.sessions:
            # The connecting factor r^e = blinded / H(m); it exists
            # whenever H(m) is invertible, making the session consistent.
            try:
                _ = (blinded * modinv(hashed, n)) % n
                consistent += 1
            except ValueError:
                continue
        return consistent <= 1 and bool(self.sessions)
