"""Message padding for traffic-analysis resistance (paper section 4.3).

Tor-style constant-size cells and bucket padding: encryption hides
content but not size, so decoupled relay systems pad to fixed sizes.
The mix-net model and the D3 traffic-analysis benchmark use these.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["pad_to_cell", "unpad_from_cell", "padded_length", "bucket_pad_length", "CELL_SIZE"]

#: Tor's classic fixed cell payload size.
CELL_SIZE = 512

_LENGTH_PREFIX = 4


def padded_length(payload_length: int, cell_size: int = CELL_SIZE) -> int:
    """Total padded size: the smallest multiple of ``cell_size`` that
    fits the payload plus its 4-byte length prefix."""
    needed = payload_length + _LENGTH_PREFIX
    cells = max(1, math.ceil(needed / cell_size))
    return cells * cell_size


def pad_to_cell(payload: bytes, cell_size: int = CELL_SIZE) -> bytes:
    """Pad ``payload`` to a whole number of fixed-size cells."""
    if len(payload) >= 1 << 32:
        raise ValueError("payload too large")
    total = padded_length(len(payload), cell_size)
    framed = len(payload).to_bytes(_LENGTH_PREFIX, "big") + payload
    return framed + b"\x00" * (total - len(framed))


def unpad_from_cell(padded: bytes) -> bytes:
    """Recover the payload from :func:`pad_to_cell` output."""
    if len(padded) < _LENGTH_PREFIX:
        raise ValueError("padded message too short")
    length = int.from_bytes(padded[:_LENGTH_PREFIX], "big")
    if length > len(padded) - _LENGTH_PREFIX:
        raise ValueError("corrupt padding: declared length exceeds data")
    return padded[_LENGTH_PREFIX : _LENGTH_PREFIX + length]


def bucket_pad_length(payload_length: int, buckets: Sequence[int]) -> int:
    """The smallest bucket size that fits; exposes only the bucket.

    Used when constant cells are too costly: sizes leak only
    ``log2(len(buckets))`` bits instead of the exact length.
    """
    for bucket in sorted(buckets):
        if payload_length <= bucket:
            return bucket
    raise ValueError(f"payload of {payload_length} bytes exceeds all buckets")
