"""Schnorr groups: prime-order subgroups of Z_p* for a safe prime p.

The discrete-log substrate for the VOPRF (:mod:`repro.crypto.voprf`)
behind Privacy Pass.  With ``p = 2q + 1`` (p a safe prime), the
quadratic residues form a subgroup of prime order ``q``; elements are
integers, scalars live in ``Z_q``, and hashing to the group squares a
hash-to-field output.

Fixed parameters were generated once with the seeded script recorded
below (``random.Random(20221114)``), so every run of the test suite and
benchmarks uses identical groups::

    from repro.crypto.numtheory import random_safe_prime
    import random
    rng = random.Random(20221114)
    [random_safe_prime(bits, rng) for bits in (256, 512, 768)]
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from .hashutil import expand_message_xmd, os2ip
from .numtheory import is_probable_prime, modinv, random_below

__all__ = ["SchnorrGroup", "GROUP_256", "GROUP_512", "GROUP_768", "default_group"]

#: Window width (bits) for fixed-base exponentiation.  Six keeps the
#: per-group table small (ceil(|q|/6) rows x 63 entries) while cutting
#: generator exponentiations to ~1/4 the cost of ``pow`` -- measured
#: 126us -> 29us on schnorr-256, 594us -> 130us on schnorr-512.
_FIXED_BASE_WINDOW = 6

_P256 = 0x8FCD5BF9765E1180A34EC7F9B23DDCD1642E9D8F94BF81E9F4B2D667D1AC031F
_P512 = (
    0xEC403FA91E29C6D775FD9D6E17EDACB4F9FDCB90A33FDA540FCBD574686E7BFB
    * 2**256
    + 0x24B4ECF9F39AA3DE0F53668430DCD17FC5951267BDFDFCED6B62A4C273DA8347
)
_P768 = int(
    "e4eae008c1a205da9c72a83ef678cf4c9a769d7fa0785410c9bb3edd39dea051"
    "371c99a91baf200da320d0bd1b0a538d9f8b1378d881037b34ff5d824d23d2c6"
    "99c186b00e0a69aa5708b91c98da80bcc4a9325022e5f092e54887a830d66263",
    16,
)


@dataclass(frozen=True)
class SchnorrGroup:
    """A prime-order-q subgroup of Z_p*, p = 2q + 1 a safe prime."""

    p: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.p % 2 == 0 or not is_probable_prime(self.p):
            raise ValueError("p must be an odd prime")
        if not is_probable_prime(self.order):
            raise ValueError("p must be a safe prime (so (p-1)/2 is prime)")
        # Lazily built windowed table for generator exponentiation,
        # cached per group instance (the dataclass is frozen, hence the
        # object.__setattr__).
        object.__setattr__(self, "_generator_table", None)

    @property
    def order(self) -> int:
        """The subgroup order q = (p - 1) / 2."""
        return (self.p - 1) // 2

    @property
    def generator(self) -> int:
        """4 = 2^2, always a quadratic residue and of order q."""
        return 4

    @property
    def element_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8

    def is_element(self, x: int) -> bool:
        """Membership test: x is a QR mod p (Euler criterion), x != 0."""
        return 0 < x < self.p and pow(x, self.order, self.p) == 1

    def exp(self, base: int, scalar: int) -> int:
        return pow(base, scalar % self.order, self.p)

    def _fixed_base_rows(self) -> tuple:
        """The generator's windowed-exponent table, built on first use.

        Row ``i`` holds ``g**(d << (w*i)) mod p`` for every window
        digit ``d``, so one exponentiation is a product of one table
        entry per window of the scalar -- ceil(|q|/w) modular
        multiplications, no squarings.
        """
        rows = self._generator_table  # type: ignore[attr-defined]
        if rows is None:
            w = _FIXED_BASE_WINDOW
            width = 1 << w
            built = []
            row_base = self.generator
            for _ in range((self.order.bit_length() + w - 1) // w):
                row = [1] * width
                for digit in range(1, width):
                    row[digit] = row[digit - 1] * row_base % self.p
                built.append(tuple(row))
                row_base = row[width - 1] * row_base % self.p
            rows = tuple(built)
            object.__setattr__(self, "_generator_table", rows)
        return rows

    def exp_gen(self, scalar: int) -> int:
        """``generator ** scalar mod p`` via the cached windowed table.

        Every VOPRF issuance and DLEQ proof/verification performs
        fixed-base exponentiations; this routes them through the
        precomputed table instead of a full square-and-multiply.
        """
        rows = self._fixed_base_rows()
        k = scalar % self.order
        mask = (1 << _FIXED_BASE_WINDOW) - 1
        acc = 1
        index = 0
        while k:
            digit = k & mask
            if digit:
                acc = acc * rows[index][digit] % self.p
            k >>= _FIXED_BASE_WINDOW
            index += 1
        return acc

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        return modinv(a, self.p)

    def random_scalar(self, rng: Optional[_random.Random] = None) -> int:
        """Uniform non-zero scalar in Z_q."""
        return random_below(self.order - 1, rng) + 1

    def scalar_inv(self, scalar: int) -> int:
        return modinv(scalar % self.order, self.order)

    def hash_to_group(self, message: bytes, dst: bytes = b"repro-h2g") -> int:
        """Hash a message to a group element (square of hash-to-field).

        Squaring maps any unit into the QR subgroup; the composition is
        a random-oracle-style map adequate for the OPRF construction.
        """
        width = self.element_bytes + 16  # oversample to flatten mod bias
        candidate = os2ip(expand_message_xmd(message, dst, width)) % self.p
        if candidate == 0:
            candidate = 1
        return (candidate * candidate) % self.p

    def encode_element(self, x: int) -> bytes:
        return x.to_bytes(self.element_bytes, "big")

    def decode_element(self, data: bytes) -> int:
        x = os2ip(data)
        if not self.is_element(x):
            raise ValueError("not a group element")
        return x


GROUP_256 = SchnorrGroup(_P256, name="schnorr-256")
GROUP_512 = SchnorrGroup(_P512, name="schnorr-512")
GROUP_768 = SchnorrGroup(_P768, name="schnorr-768")


def default_group() -> SchnorrGroup:
    """The group used by the system models (fast yet structurally real)."""
    return GROUP_256
