"""From-scratch cryptographic substrates for the decoupled systems.

Everything here is implemented on Python integers and bytes with no
third-party dependencies: number theory, RSA and Chaum blind
signatures, X25519, ChaCha20-Poly1305, HKDF, HPKE (RFC 9180 profile),
a Schnorr-group VOPRF with DLEQ proofs, secret sharing with
Prio-style boolean validity checks, and traffic-padding helpers.

These are *simulation-grade* implementations: algorithmically faithful
(verified against RFC test vectors where they exist) but not hardened
against side channels, and used with reduced parameter sizes where
speed matters.
"""

from .blind import BlindingState, BlindSigner, blind, sign_blinded, unblind
from .chacha20poly1305 import ChaCha20Poly1305, chacha20_block, chacha20_encrypt, poly1305_mac
from .group import GROUP_256, GROUP_512, GROUP_768, SchnorrGroup, default_group
from .hashutil import (
    constant_time_equal,
    expand_message_xmd,
    full_domain_hash,
    hmac_sha256,
    i2osp,
    os2ip,
    sha256,
)
from .hkdf import hkdf, hkdf_expand, hkdf_extract
from .hpke import (
    HpkeKeyPair,
    HpkeRecipientContext,
    HpkeSenderContext,
    open_sealed,
    seal,
    setup_base_recipient,
    setup_base_sender,
)
from .numtheory import (
    crt_pair,
    egcd,
    is_probable_prime,
    modinv,
    random_below,
    random_prime,
    random_safe_prime,
    random_unit,
)
from .padding import (
    CELL_SIZE,
    bucket_pad_length,
    pad_to_cell,
    padded_length,
    unpad_from_cell,
)
from .rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from .secretshare import (
    FIELD_PRIME,
    BeaverTriple,
    BooleanValidityProof,
    HistogramProof,
    check_boolean_shares,
    check_histogram_shares,
    make_boolean_proof,
    make_histogram_proof,
    reconstruct_additive,
    shamir_reconstruct,
    shamir_share,
    share_additive,
)
from .voprf import (
    DleqProof,
    VoprfClientState,
    VoprfServer,
    verify_dleq,
    voprf_blind,
    voprf_finalize,
)
from .x25519 import X25519PrivateKey, X25519_BASEPOINT, x25519

__all__ = [
    # numtheory
    "is_probable_prime", "random_prime", "random_safe_prime", "modinv",
    "egcd", "crt_pair", "random_below", "random_unit",
    # hashes
    "i2osp", "os2ip", "sha256", "hmac_sha256", "full_domain_hash",
    "expand_message_xmd", "constant_time_equal",
    # rsa / blind
    "RsaPublicKey", "RsaPrivateKey", "generate_rsa_keypair",
    "BlindingState", "BlindSigner", "blind", "sign_blinded", "unblind",
    # group / voprf
    "SchnorrGroup", "GROUP_256", "GROUP_512", "GROUP_768", "default_group",
    "VoprfServer", "VoprfClientState", "DleqProof", "voprf_blind",
    "voprf_finalize", "verify_dleq",
    # symmetric
    "ChaCha20Poly1305", "chacha20_block", "chacha20_encrypt", "poly1305_mac",
    "hkdf", "hkdf_extract", "hkdf_expand",
    # hpke
    "HpkeKeyPair", "HpkeSenderContext", "HpkeRecipientContext",
    "setup_base_sender", "setup_base_recipient", "seal", "open_sealed",
    # x25519
    "X25519PrivateKey", "x25519", "X25519_BASEPOINT",
    # secret sharing
    "FIELD_PRIME", "share_additive", "reconstruct_additive",
    "shamir_share", "shamir_reconstruct", "BeaverTriple",
    "BooleanValidityProof", "make_boolean_proof", "check_boolean_shares",
    "HistogramProof", "make_histogram_proof", "check_histogram_shares",
    # padding
    "CELL_SIZE", "pad_to_cell", "unpad_from_cell", "padded_length",
    "bucket_pad_length",
]
