"""Byte/integer conversion and hashing helpers (RFC 8017 style).

Small, dependency-free utilities shared by every cryptographic module:
``i2osp``/``os2ip`` integer-string conversion, SHA-256 conveniences, a
full-domain hash for RSA signatures, and an expandable hash for
hash-to-field operations.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

__all__ = [
    "i2osp",
    "os2ip",
    "sha256",
    "hmac_sha256",
    "full_domain_hash",
    "expand_message_xmd",
    "constant_time_equal",
]


def i2osp(value: int, length: int) -> bytes:
    """Integer-to-octet-string primitive (big endian, fixed length)."""
    if value < 0:
        raise ValueError("i2osp requires a non-negative integer")
    if value >= 1 << (8 * length):
        raise ValueError(f"integer too large for {length} octets")
    return value.to_bytes(length, "big")


def os2ip(data: bytes) -> int:
    """Octet-string-to-integer primitive (big endian)."""
    return int.from_bytes(data, "big")


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()


def hmac_sha256(key: bytes, *parts: bytes) -> bytes:
    """HMAC-SHA-256 over the concatenation of ``parts``."""
    mac = _hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.digest()


def full_domain_hash(message: bytes, target_bytes: int, domain: bytes = b"FDH") -> int:
    """A full-domain hash: ``message`` -> integer of ``target_bytes`` size.

    Used by RSA-FDH signatures (and their blind variant) so the signed
    value covers the whole modulus range rather than a fixed digest
    size.  Implemented as counter-mode SHA-256 (MGF1 style).
    """
    out = bytearray()
    counter = 0
    while len(out) < target_bytes:
        out.extend(sha256(domain, i2osp(counter, 4), message))
        counter += 1
    return os2ip(bytes(out[:target_bytes]))


def expand_message_xmd(
    message: bytes, dst: bytes, length: int
) -> bytes:
    """``expand_message_xmd`` from RFC 9380 section 5.3.1 (SHA-256).

    Produces a uniformly pseudorandom byte string of ``length`` bytes,
    suitable for hash-to-field / hash-to-group constructions.
    """
    b_in_bytes = 32
    r_in_bytes = 64
    ell = (length + b_in_bytes - 1) // b_in_bytes
    if ell > 255 or length > 65535 or len(dst) > 255:
        raise ValueError("expand_message_xmd parameter out of range")
    dst_prime = dst + i2osp(len(dst), 1)
    z_pad = b"\x00" * r_in_bytes
    l_i_b_str = i2osp(length, 2)
    b0 = sha256(z_pad, message, l_i_b_str, i2osp(0, 1), dst_prime)
    b1 = sha256(b0, i2osp(1, 1), dst_prime)
    blocks = [b1]
    for i in range(2, ell + 1):
        prev = blocks[-1]
        mixed = bytes(x ^ y for x, y in zip(b0, prev))
        blocks.append(sha256(mixed, i2osp(i, 1), dst_prime))
    return b"".join(blocks)[:length]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe byte comparison (wraps :func:`hmac.compare_digest`)."""
    return _hmac.compare_digest(a, b)
