"""HPKE (RFC 9180): DHKEM(X25519, HKDF-SHA256) + HKDF-SHA256 + ChaCha20-Poly1305.

Hybrid public-key encryption, base mode, implemented from scratch on the
package's own X25519, HKDF, and ChaCha20-Poly1305.  HPKE is the
workhorse of the decoupled systems the paper discusses: ODoH and OHTTP
seal the user's query to the *target* so the proxy relays bytes it
cannot read.

Ciphersuite (fixed): kem_id 0x0020, kdf_id 0x0001, aead_id 0x0003.
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import Optional, Tuple

from .chacha20poly1305 import ChaCha20Poly1305
from .hashutil import i2osp
from .hkdf import hkdf_expand, hkdf_extract
from .x25519 import X25519PrivateKey

__all__ = [
    "HpkeKeyPair",
    "HpkeSenderContext",
    "HpkeRecipientContext",
    "setup_base_sender",
    "setup_base_recipient",
    "seal",
    "open_sealed",
]

KEM_ID = 0x0020
KDF_ID = 0x0001
AEAD_ID = 0x0003
_NK = 32
_NN = 12
_NSECRET = 32
_MODE_BASE = b"\x00"

_KEM_SUITE_ID = b"KEM" + i2osp(KEM_ID, 2)
_HPKE_SUITE_ID = b"HPKE" + i2osp(KEM_ID, 2) + i2osp(KDF_ID, 2) + i2osp(AEAD_ID, 2)


def _labeled_extract(salt: bytes, label: bytes, ikm: bytes, suite_id: bytes) -> bytes:
    return hkdf_extract(salt, b"HPKE-v1" + suite_id + label + ikm)


def _labeled_expand(
    prk: bytes, label: bytes, info: bytes, length: int, suite_id: bytes
) -> bytes:
    labeled_info = i2osp(length, 2) + b"HPKE-v1" + suite_id + label + info
    return hkdf_expand(prk, labeled_info, length)


@dataclass(frozen=True)
class HpkeKeyPair:
    """A recipient keypair for HPKE base mode."""

    private: X25519PrivateKey

    @staticmethod
    def generate(seed: Optional[bytes] = None) -> "HpkeKeyPair":
        return HpkeKeyPair(private=X25519PrivateKey.generate(seed))

    @property
    def public_bytes(self) -> bytes:
        return self.private.public_bytes


def _extract_and_expand(dh: bytes, kem_context: bytes) -> bytes:
    eae_prk = _labeled_extract(b"", b"eae_prk", dh, _KEM_SUITE_ID)
    return _labeled_expand(
        eae_prk, b"shared_secret", kem_context, _NSECRET, _KEM_SUITE_ID
    )


def _encap(
    recipient_public: bytes, ephemeral_seed: Optional[bytes] = None
) -> Tuple[bytes, bytes]:
    """KEM encapsulation: (shared_secret, enc)."""
    ephemeral = X25519PrivateKey.generate(ephemeral_seed)
    dh = ephemeral.exchange(recipient_public)
    enc = ephemeral.public_bytes
    shared_secret = _extract_and_expand(dh, enc + recipient_public)
    return shared_secret, enc


def _decap(enc: bytes, keypair: HpkeKeyPair) -> bytes:
    dh = keypair.private.exchange(enc)
    return _extract_and_expand(dh, enc + keypair.public_bytes)


def _key_schedule(shared_secret: bytes, info: bytes) -> Tuple[bytes, bytes, bytes]:
    """Base-mode key schedule: (key, base_nonce, exporter_secret)."""
    psk_id_hash = _labeled_extract(b"", b"psk_id_hash", b"", _HPKE_SUITE_ID)
    info_hash = _labeled_extract(b"", b"info_hash", info, _HPKE_SUITE_ID)
    context = _MODE_BASE + psk_id_hash + info_hash
    secret = _labeled_extract(shared_secret, b"secret", b"", _HPKE_SUITE_ID)
    key = _labeled_expand(secret, b"key", context, _NK, _HPKE_SUITE_ID)
    base_nonce = _labeled_expand(secret, b"base_nonce", context, _NN, _HPKE_SUITE_ID)
    exporter = _labeled_expand(secret, b"exp", context, 32, _HPKE_SUITE_ID)
    return key, base_nonce, exporter


class _HpkeContext:
    """Shared nonce/sequence machinery for both directions."""

    def __init__(self, key: bytes, base_nonce: bytes, exporter_secret: bytes) -> None:
        self._aead = ChaCha20Poly1305(key)
        self._base_nonce = base_nonce
        self.exporter_secret = exporter_secret
        self._sequence = 0

    def _current_nonce(self) -> bytes:
        seq_bytes = i2osp(self._sequence, _NN)
        return bytes(a ^ b for a, b in zip(self._base_nonce, seq_bytes))

    def _advance(self) -> None:
        self._sequence += 1

    def export(self, exporter_context: bytes, length: int) -> bytes:
        """The HPKE secret-export interface."""
        return _labeled_expand(
            self.exporter_secret, b"sec", exporter_context, length, _HPKE_SUITE_ID
        )


class HpkeSenderContext(_HpkeContext):
    """Sender side: seals a sequence of messages to the recipient."""

    def __init__(
        self, enc: bytes, key: bytes, base_nonce: bytes, exporter_secret: bytes
    ) -> None:
        super().__init__(key, base_nonce, exporter_secret)
        self.enc = enc

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        sealed = self._aead.seal(self._current_nonce(), plaintext, aad)
        self._advance()
        return sealed


class HpkeRecipientContext(_HpkeContext):
    """Recipient side: opens the sender's sealed messages in order."""

    def open(self, ciphertext: bytes, aad: bytes = b"") -> bytes:
        # The sequence advances only on success (RFC 9180 semantics):
        # a forged or reordered message must not desynchronize us.
        plaintext = self._aead.open(self._current_nonce(), ciphertext, aad)
        self._advance()
        return plaintext


def setup_base_sender(
    recipient_public: bytes,
    info: bytes = b"",
    ephemeral_seed: Optional[bytes] = None,
) -> HpkeSenderContext:
    """HPKE SetupBaseS: a sender context plus its encapsulated key."""
    shared_secret, enc = _encap(recipient_public, ephemeral_seed)
    key, base_nonce, exporter = _key_schedule(shared_secret, info)
    return HpkeSenderContext(enc, key, base_nonce, exporter)


def setup_base_recipient(
    enc: bytes, keypair: HpkeKeyPair, info: bytes = b""
) -> HpkeRecipientContext:
    """HPKE SetupBaseR from the sender's encapsulated key."""
    shared_secret = _decap(enc, keypair)
    key, base_nonce, exporter = _key_schedule(shared_secret, info)
    return HpkeRecipientContext(key, base_nonce, exporter)


def seal(
    recipient_public: bytes,
    plaintext: bytes,
    info: bytes = b"",
    aad: bytes = b"",
    ephemeral_seed: Optional[bytes] = None,
) -> Tuple[bytes, bytes]:
    """Single-shot HPKE seal: returns ``(enc, ciphertext)``."""
    context = setup_base_sender(recipient_public, info, ephemeral_seed)
    return context.enc, context.seal(plaintext, aad)


def open_sealed(
    enc: bytes,
    ciphertext: bytes,
    keypair: HpkeKeyPair,
    info: bytes = b"",
    aad: bytes = b"",
) -> bytes:
    """Single-shot HPKE open; raises ``ValueError`` on failure."""
    context = setup_base_recipient(enc, keypair, info)
    return context.open(ciphertext, aad)
