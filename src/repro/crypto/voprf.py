"""A verifiable oblivious PRF (2HashDH with Chaum-Pedersen DLEQ proofs).

The cryptographic core of Privacy Pass (paper section 3.2.1).  The
client obtains ``F_k(input) = H2(input, H1(input)^k)`` without the
server learning ``input``, and the server proves in zero knowledge that
it used its committed key ``k`` (so it cannot segregate users by key).

Protocol::

    client:  P = H1(input); pick blind r; M = P^r       -> server
    server:  Z = M^k; DLEQ proof that log_g(Y) = log_M(Z) -> client
    client:  verify proof; N = Z^(1/r) = P^k; token = H2(input, N)

Unlinkability: the server sees only ``M`` (uniformly random for random
``r``) at issuance and ``token`` at redemption; tokens are independent
of issuance transcripts.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional, Tuple

from .group import SchnorrGroup, default_group
from .hashutil import sha256
from .numtheory import random_below

__all__ = [
    "VoprfServer",
    "VoprfClientState",
    "DleqProof",
    "voprf_blind",
    "voprf_finalize",
]


@dataclass(frozen=True)
class DleqProof:
    """A Chaum-Pedersen proof that two pairs share a discrete log."""

    challenge: int
    response: int


@dataclass(frozen=True)
class VoprfClientState:
    """Client-side secret state between blind and finalize."""

    input_data: bytes
    blind: int
    blinded_element: int


def _dleq_challenge(
    group: SchnorrGroup, y: int, m: int, z: int, a: int, b: int
) -> int:
    encoded = b"".join(
        group.encode_element(v) for v in (group.generator, y, m, z, a, b)
    )
    return int.from_bytes(sha256(b"DLEQ", encoded), "big") % group.order


class VoprfServer:
    """The issuer's side: a PRF key, evaluation, and DLEQ proving."""

    def __init__(
        self,
        group: Optional[SchnorrGroup] = None,
        key: Optional[int] = None,
        rng: Optional[_random.Random] = None,
    ) -> None:
        self.group = group if group is not None else default_group()
        self._rng = rng
        self._key = key if key is not None else self.group.random_scalar(rng)
        self.public_key = self.group.exp_gen(self._key)

    def evaluate(self, blinded_element: int) -> Tuple[int, DleqProof]:
        """Evaluate the PRF on a blinded element, with proof."""
        g = self.group
        if not g.is_element(blinded_element):
            raise ValueError("blinded element is not in the group")
        z = g.exp(blinded_element, self._key)
        t = random_below(g.order - 1, self._rng) + 1
        a = g.exp_gen(t)
        b = g.exp(blinded_element, t)
        c = _dleq_challenge(g, self.public_key, blinded_element, z, a, b)
        s = (t - c * self._key) % g.order
        return z, DleqProof(challenge=c, response=s)

    def evaluate_unblinded(self, input_data: bytes) -> bytes:
        """The PRF value the server could compute alone (for tests)."""
        g = self.group
        n = g.exp(g.hash_to_group(input_data), self._key)
        return sha256(b"VOPRF-finalize", input_data, g.encode_element(n))


def verify_dleq(
    group: SchnorrGroup,
    public_key: int,
    blinded_element: int,
    evaluated: int,
    proof: DleqProof,
) -> bool:
    """Check a Chaum-Pedersen DLEQ proof."""
    g = group
    a = g.mul(
        g.exp_gen(proof.response), g.exp(public_key, proof.challenge)
    )
    b = g.mul(
        g.exp(blinded_element, proof.response), g.exp(evaluated, proof.challenge)
    )
    expected = _dleq_challenge(g, public_key, blinded_element, evaluated, a, b)
    return expected == proof.challenge


def voprf_blind(
    input_data: bytes,
    group: Optional[SchnorrGroup] = None,
    rng: Optional[_random.Random] = None,
) -> VoprfClientState:
    """Client step 1: hash to the group and blind."""
    g = group if group is not None else default_group()
    r = g.random_scalar(rng)
    element = g.hash_to_group(input_data)
    return VoprfClientState(
        input_data=input_data, blind=r, blinded_element=g.exp(element, r)
    )


def voprf_finalize(
    state: VoprfClientState,
    evaluated: int,
    proof: DleqProof,
    public_key: int,
    group: Optional[SchnorrGroup] = None,
) -> bytes:
    """Client step 2: verify the proof, unblind, and hash to the output.

    Raises ``ValueError`` if the DLEQ proof fails (a key-segregating
    or misbehaving server).
    """
    g = group if group is not None else default_group()
    if not verify_dleq(g, public_key, state.blinded_element, evaluated, proof):
        raise ValueError("DLEQ proof verification failed")
    unblinded = g.exp(evaluated, g.scalar_inv(state.blind))
    return sha256(b"VOPRF-finalize", state.input_data, g.encode_element(unblinded))
