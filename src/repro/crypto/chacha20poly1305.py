"""ChaCha20-Poly1305 AEAD (RFC 8439), implemented from scratch.

The AEAD used by HPKE and by the simulated transport layers.  The
implementation follows RFC 8439 exactly: the ChaCha20 block function
(section 2.3), counter-mode encryption (2.4), the Poly1305 MAC (2.5),
the one-time-key derivation (2.6), and the AEAD construction (2.8).
Verified against the RFC's test vectors in
``tests/test_crypto_chacha.py``.
"""

from __future__ import annotations

import struct
from typing import List

from .hashutil import constant_time_equal

__all__ = ["chacha20_block", "chacha20_encrypt", "poly1305_mac", "ChaCha20Poly1305"]

_MASK32 = 0xFFFFFFFF


def _rotl32(v: int, c: int) -> int:
    return ((v << c) & _MASK32) | (v >> (32 - c))


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 section 2.3)."""
    if len(key) != 32:
        raise ValueError("key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("nonce must be 12 bytes")
    constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
    state = list(constants)
    state.extend(struct.unpack("<8L", key))
    state.append(counter & _MASK32)
    state.extend(struct.unpack("<3L", nonce))
    working = state.copy()
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16L", *out)


def chacha20_encrypt(key: bytes, counter: int, nonce: bytes, plaintext: bytes) -> bytes:
    """ChaCha20 counter-mode encryption (RFC 8439 section 2.4)."""
    out = bytearray()
    for block_index in range(0, len(plaintext), 64):
        keystream = chacha20_block(key, counter + block_index // 64, nonce)
        chunk = plaintext[block_index : block_index + 64]
        out.extend(x ^ y for x, y in zip(chunk, keystream))
    return bytes(out)


def _poly1305_clamp(r: int) -> int:
    return r & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """The Poly1305 one-time authenticator (RFC 8439 section 2.5)."""
    if len(key) != 32:
        raise ValueError("poly1305 key must be 32 bytes")
    r = _poly1305_clamp(int.from_bytes(key[:16], "little"))
    s = int.from_bytes(key[16:], "little")
    p = (1 << 130) - 5
    accumulator = 0
    for i in range(0, len(message), 16):
        chunk = message[i : i + 16]
        n = int.from_bytes(chunk + b"\x01", "little")
        accumulator = ((accumulator + n) * r) % p
    accumulator = (accumulator + s) & ((1 << 128) - 1)
    return accumulator.to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return b""
    return b"\x00" * (16 - len(data) % 16)


class ChaCha20Poly1305:
    """The AEAD_CHACHA20_POLY1305 construction (RFC 8439 section 2.8)."""

    KEY_SIZE = 32
    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != self.KEY_SIZE:
            raise ValueError("key must be 32 bytes")
        self._key = key

    def _one_time_key(self, nonce: bytes) -> bytes:
        return chacha20_block(self._key, 0, nonce)[:32]

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        mac_data = (
            aad
            + _pad16(aad)
            + ciphertext
            + _pad16(ciphertext)
            + struct.pack("<Q", len(aad))
            + struct.pack("<Q", len(ciphertext))
        )
        return poly1305_mac(self._one_time_key(nonce), mac_data)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError("nonce must be 12 bytes")
        ciphertext = chacha20_encrypt(self._key, 1, nonce, plaintext)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises ``ValueError`` on forgery."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError("nonce must be 12 bytes")
        if len(sealed) < self.TAG_SIZE:
            raise ValueError("ciphertext too short")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        expected = self._tag(nonce, ciphertext, aad)
        if not constant_time_equal(tag, expected):
            raise ValueError("authentication tag mismatch")
        return chacha20_encrypt(self._key, 1, nonce, ciphertext)
