"""Number-theoretic primitives: primality, prime generation, inverses.

Everything the RSA, Schnorr-group, and secret-sharing modules need,
implemented from scratch on Python integers.  Random numbers come from
:mod:`secrets` by default; deterministic generation (for reproducible
tests and benchmarks) is available by passing a ``random.Random``.
"""

from __future__ import annotations

import random as _random
import secrets
from typing import Optional, Tuple

__all__ = [
    "is_probable_prime",
    "random_prime",
    "random_safe_prime",
    "modinv",
    "egcd",
    "crt_pair",
    "random_below",
    "random_unit",
]

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """True if ``a`` witnesses that odd ``n = d * 2^r + 1`` is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[_random.Random] = None) -> bool:
    """Miller-Rabin primality test with ``rounds`` random bases.

    Deterministic for n < 3317044064679887385961981 when the first 13
    prime bases are used, which we always include.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    bases = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
    for a in bases:
        if a % n == 0:
            continue
        if _miller_rabin_witness(n, a, d, r):
            return False
    extra = max(0, rounds - len(bases))
    for _ in range(extra):
        if rng is not None:
            a = rng.randrange(2, n - 1)
        else:
            a = secrets.randbelow(n - 3) + 2
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def _random_odd(bits: int, rng: Optional[_random.Random]) -> int:
    if bits < 2:
        raise ValueError("need at least 2 bits")
    if rng is not None:
        n = rng.getrandbits(bits)
    else:
        n = secrets.randbits(bits)
    n |= (1 << (bits - 1)) | 1  # full bit length, odd
    return n


def random_prime(bits: int, rng: Optional[_random.Random] = None) -> int:
    """A random prime of exactly ``bits`` bits."""
    while True:
        candidate = _random_odd(bits, rng)
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_safe_prime(bits: int, rng: Optional[_random.Random] = None) -> int:
    """A random safe prime ``p`` (``(p-1)/2`` also prime) of ``bits`` bits.

    Safe primes give prime-order subgroups of order ``(p-1)/2``, the
    setting the Schnorr-group and VOPRF modules use.  Generation is
    slow for large sizes; the :mod:`repro.crypto.group` module ships
    fixed well-known parameters for production-size groups.
    """
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y = g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """The inverse of ``a`` modulo ``m``; raises if not invertible."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m}")
    return x % m


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """The unique ``x mod m1*m2`` with ``x = r1 (mod m1)``, ``x = r2 (mod m2)``.

    Moduli must be coprime.  Used by RSA-CRT private operations.
    """
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise ValueError("moduli are not coprime")
    diff = (r2 - r1) % m2
    return (r1 + m1 * ((diff * p) % m2)) % (m1 * m2)


def random_below(bound: int, rng: Optional[_random.Random] = None) -> int:
    """Uniform integer in ``[0, bound)``."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    if rng is not None:
        return rng.randrange(bound)
    return secrets.randbelow(bound)


def random_unit(modulus: int, rng: Optional[_random.Random] = None) -> int:
    """Uniform integer in ``[1, modulus)`` coprime to ``modulus``."""
    while True:
        candidate = random_below(modulus - 1, rng) + 1
        if egcd(candidate, modulus)[0] == 1:
            return candidate
