"""RSA key generation and full-domain-hash signatures.

The substrate for Chaum blind signatures (:mod:`repro.crypto.blind`).
Signing uses RSA-FDH: the message is hashed onto the full modulus range
and the signature is the eth root.  Private operations use the CRT.

Key sizes are configurable; tests and simulations use 512-1024 bit
keys for speed (security is not the point of a simulator), and the
structure is identical at any size.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from .hashutil import full_domain_hash
from .numtheory import crt_pair, egcd, modinv, random_prime

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_rsa_keypair"]

_DEFAULT_E = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)`` with FDH verification."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_verify_value(self, signature: int) -> int:
        """The RSA verification function ``s^e mod n``."""
        if not 0 <= signature < self.n:
            raise ValueError("signature out of range")
        return pow(signature, self.e, self.n)

    def hash_to_modulus(self, message: bytes) -> int:
        """FDH of ``message`` into ``[0, n)``."""
        return full_domain_hash(message, self.byte_length, b"RSA-FDH") % self.n

    def verify(self, message: bytes, signature: int) -> bool:
        """Verify an RSA-FDH signature."""
        try:
            return self.raw_verify_value(signature) == self.hash_to_modulus(message)
        except ValueError:
            return False


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT acceleration."""

    public: RsaPublicKey
    d: int
    p: int
    q: int

    def raw_sign_value(self, value: int) -> int:
        """The RSA signing function ``value^d mod n`` via the CRT."""
        if not 0 <= value < self.public.n:
            raise ValueError("value out of range")
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        sp = pow(value % self.p, dp, self.p)
        sq = pow(value % self.q, dq, self.q)
        return crt_pair(sp, self.p, sq, self.q)

    def sign(self, message: bytes) -> int:
        """RSA-FDH signature of ``message``."""
        return self.raw_sign_value(self.public.hash_to_modulus(message))


def generate_rsa_keypair(
    bits: int = 1024,
    e: int = _DEFAULT_E,
    rng: Optional[_random.Random] = None,
) -> RsaPrivateKey:
    """Generate an RSA keypair with modulus of roughly ``bits`` bits.

    Pass a seeded ``random.Random`` for deterministic test keys.
    """
    if bits < 128:
        raise ValueError("modulus below 128 bits is not even a simulation")
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if egcd(e, phi)[0] != 1:
            continue
        d = modinv(e, phi)
        return RsaPrivateKey(public=RsaPublicKey(n=n, e=e), d=d, p=p, q=q)
