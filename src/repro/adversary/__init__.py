"""Adversaries: passive correlation, coalitions, and breaches.

Linkage-based coalition and breach analysis live in
:class:`repro.core.analysis.DecouplingAnalyzer` (re-exported here);
this package adds the metadata-only *traffic analysis* adversary of
paper section 4.3.
"""

from repro.core.analysis import BreachReport, DecouplingAnalyzer

from .disclosure import (
    RoundObservation,
    StatisticalDisclosureAttack,
    generate_sda_rounds,
)
from .timing import CorrelationGuess, PassiveCorrelator, correlation_accuracy

__all__ = [
    "PassiveCorrelator",
    "CorrelationGuess",
    "correlation_accuracy",
    "RoundObservation",
    "StatisticalDisclosureAttack",
    "generate_sda_rounds",
    "DecouplingAnalyzer",
    "BreachReport",
]
