"""Statistical disclosure: the long-term limit of mix-net privacy.

Paper section 3.1.2 scopes mix-net anonymity "up to the limits of what
is feasible to reconstruct or infer from traffic analysis".  The
classic such limit is the *statistical disclosure attack* (Danezis'03
formulation of the intersection attack): a passive observer who watches
many mixing rounds learns, round by round, which senders were active
and which recipients received.  Rounds where the target sender was
active skew the recipient distribution toward the target's true
correspondent; averaging enough rounds and subtracting the background
reveals them -- no matter how well each individual round mixed.

The module provides both the attack and a round generator that runs
genuine batched mixing for every observed round.
"""

from __future__ import annotations

import random as _random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.entities import World
from repro.core.labels import SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Subject
from repro.mixnet.mix import MIX_PROTOCOL, MixNode, MixReceiver
from repro.mixnet.onion import build_onion, make_message
from repro.net.network import Network

__all__ = [
    "RoundObservation",
    "StatisticalDisclosureAttack",
    "generate_sda_rounds",
]


@dataclass(frozen=True)
class RoundObservation:
    """What the edge observer records about one mixing round."""

    active_senders: frozenset
    recipient_counts: Tuple[Tuple[str, int], ...]

    def counts(self) -> Counter:
        return Counter(dict(self.recipient_counts))


class StatisticalDisclosureAttack:
    """Estimate a target sender's correspondent from round statistics."""

    def estimate(
        self, rounds: Sequence[RoundObservation], target_sender: str
    ) -> Optional[str]:
        """The recipient whose excess-over-background is largest.

        Averages the recipient distribution over rounds where the
        target was active and subtracts the average over rounds where
        they were not; requires at least one round of each kind.
        """
        active = [r for r in rounds if target_sender in r.active_senders]
        background = [r for r in rounds if target_sender not in r.active_senders]
        if not active or not background:
            return None
        signal = self._mean_distribution(active)
        noise = self._mean_distribution(background)
        excess = {
            recipient: signal.get(recipient, 0.0) - noise.get(recipient, 0.0)
            for recipient in set(signal) | set(noise)
        }
        if not excess:
            return None
        return max(sorted(excess), key=lambda r: excess[r])

    @staticmethod
    def _mean_distribution(rounds: Sequence[RoundObservation]) -> Dict[str, float]:
        totals: Counter = Counter()
        for observation in rounds:
            counts = observation.counts()
            round_total = sum(counts.values())
            if round_total == 0:
                continue
            for recipient, count in counts.items():
                totals[recipient] += count / round_total
        return {r: v / len(rounds) for r, v in totals.items()}


def generate_sda_rounds(
    rounds: int,
    covers: int = 7,
    recipients: int = 5,
    target_activity: float = 0.5,
    seed: int = 20221114,
) -> Tuple[List[RoundObservation], str, str]:
    """Run ``rounds`` genuine mixing rounds and observe their edges.

    The target sender ("alice") is active in roughly
    ``target_activity`` of the rounds and always writes to the same
    recipient; cover senders are active at random and write uniformly.
    Returns ``(observations, target_sender_name, true_recipient_name)``.

    Every round runs a real batch mix (fresh world; one mix whose batch
    is the round's active-sender count), so the observations are what a
    tap would actually record -- not synthetic draws.
    """
    rng = _random.Random(seed)
    target_sender = "alice"
    true_recipient = f"inbox-{rng.randrange(recipients)}"
    observations: List[RoundObservation] = []

    for round_index in range(rounds):
        active: List[Tuple[str, str]] = []  # (sender, recipient)
        if rng.random() < target_activity:
            active.append((target_sender, true_recipient))
        for cover_index in range(covers):
            if rng.random() < 0.5:
                active.append(
                    (
                        f"cover-{cover_index}",
                        f"inbox-{rng.randrange(recipients)}",
                    )
                )
        if not active:
            continue

        world = World()
        network = Network()
        mix = MixNode(
            network,
            world.entity("Mix", "mix-org"),
            "mix",
            "mk",
            batch_size=len(active),
            rng=_random.Random(seed * 1000 + round_index),
        )
        inboxes: Dict[str, MixReceiver] = {}
        for inbox_index in range(recipients):
            name = f"inbox-{inbox_index}"
            inboxes[name] = MixReceiver(
                network,
                world.entity(name, f"{name}-org"),
                name=name,
                key_id=f"rk-{inbox_index}",
            )
        for sender_name, recipient_name in active:
            subject = Subject(sender_name)
            entity = world.entity(
                sender_name, f"{sender_name}-dev", trusted_by_user=True
            )
            host = network.add_host(
                f"host-{sender_name}",
                entity,
                identity=LabeledValue(
                    f"ip-{sender_name}", SENSITIVE_IDENTITY, subject, "sender ip"
                ),
            )
            inbox = inboxes[recipient_name]
            onion = build_onion(
                [("mk", mix.address)],
                inbox.key_id,
                inbox.address,
                make_message(f"round {round_index}", subject),
            )
            host.send(mix.address, onion, MIX_PROTOCOL)
        network.run()

        recipient_counts = Counter(
            {name: len(inbox.received) for name, inbox in inboxes.items() if inbox.received}
        )
        observations.append(
            RoundObservation(
                active_senders=frozenset(sender for sender, _ in active),
                recipient_counts=tuple(sorted(recipient_counts.items())),
            )
        )
    return observations, target_sender, true_recipient
