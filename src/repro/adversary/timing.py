"""Passive traffic analysis: timing and size correlation (section 4.3).

"Encryption protects the confidentiality of data, but it does not
protect against other attributes of application data such as the size
and timestamps of data while in transit."  A passive observer of a
mix's ingress and egress links tries to match each outgoing message to
an incoming one.  Batching defeats first-in-first-out timing (the
shuffle randomizes intra-batch order) and padding defeats size
matching; the D3 benchmark quantifies both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.net.addressing import Address
from repro.net.trace import PacketRecord, TrafficTrace

__all__ = ["CorrelationGuess", "PassiveCorrelator", "correlation_accuracy"]


@dataclass(frozen=True)
class CorrelationGuess:
    """One claimed (ingress packet, egress packet) correspondence."""

    ingress: PacketRecord
    egress: PacketRecord


class PassiveCorrelator:
    """An adversary with taps on a mix cascade's edges."""

    def __init__(self, trace: TrafficTrace) -> None:
        self.trace = trace

    def _edge_records(
        self, entry: Address, exit_src: Address, exit_dst: Address
    ) -> Tuple[List[PacketRecord], List[PacketRecord]]:
        ingress = sorted(
            (r for r in self.trace if r.dst == entry),
            key=lambda r: (r.time, r.packet_id),
        )
        egress = sorted(
            (r for r in self.trace if r.src == exit_src and r.dst == exit_dst),
            key=lambda r: (r.time, r.packet_id),
        )
        return ingress, egress

    def fifo_guesses(
        self, entry: Address, exit_src: Address, exit_dst: Address
    ) -> List[CorrelationGuess]:
        """Assume first-in-first-out: k-th in matches k-th out.

        Perfect against an unbatched relay; defeated by a shuffling
        batch mix (within a batch, success drops to 1/batch).
        """
        ingress, egress = self._edge_records(entry, exit_src, exit_dst)
        return [
            CorrelationGuess(ingress=i, egress=e)
            for i, e in zip(ingress, egress)
        ]

    def size_guesses(
        self, entry: Address, exit_src: Address, exit_dst: Address
    ) -> List[CorrelationGuess]:
        """Match by message size (onion layers shrink by a constant).

        Works when payload sizes are distinctive; defeated by padding
        to constant-size cells.  Sizes are matched by *rank*: the
        layered encryption changes absolute sizes but preserves order.
        """
        ingress, egress = self._edge_records(entry, exit_src, exit_dst)
        by_size_in = sorted(ingress, key=lambda r: (r.size, r.time, r.packet_id))
        by_size_out = sorted(egress, key=lambda r: (r.size, r.time, r.packet_id))
        return [
            CorrelationGuess(ingress=i, egress=e)
            for i, e in zip(by_size_in, by_size_out)
        ]


def correlation_accuracy(
    guesses: Sequence[CorrelationGuess],
    truth: Dict[int, int],
) -> float:
    """Fraction of guesses matching ground truth.

    ``truth`` maps an egress ``packet_id`` to the ingress ``packet_id``
    that actually carried the same message (the scenario knows this).
    """
    if not guesses:
        return 0.0
    correct = sum(
        1
        for guess in guesses
        if truth.get(guess.egress.packet_id) == guess.ingress.packet_id
    )
    return correct / len(guesses)
