"""The T4 scenarios: plain DNS (baseline), ODNS, and ODoH.

Each run resolves a handful of names and then fetches content from the
web origin.  Following the paper's layering argument (section 2.1), the
fetch rides a connection-level privacy layer (an anonymized network
identity, as Private Relay or Tor would provide): the T4 table analyzes
the *resolution* path, and its Origin column presumes the connection
layer is not re-identifying the user.  The plain-DNS baseline shows the
coupled alternative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis import DecouplingAnalyzer
from repro.core.entities import World
from repro.core.labels import NONSENSITIVE_IDENTITY, SENSITIVE_IDENTITY
from repro.core.values import LabeledValue, Sealed, Subject
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
from repro.http.messages import make_request
from repro.http.origin import OriginDirectory, OriginServer, TLS_HTTP_PROTOCOL
from repro.net.network import Network

from .doh import DohClient, DohResolver
from .odns import ObliviousResolver, OdnsAwareResolver, OdnsClient
from .odoh import ObliviousProxy, ObliviousTarget, OdohClient

__all__ = [
    "OdnsRun",
    "run_plain_dns",
    "run_doh",
    "run_odns",
    "run_odoh",
    "PAPER_TABLE_T4_ODNS",
    "PAPER_TABLE_T4_ODOH",
]

#: The paper's section 3.2.2 table (ODNS naming), exactly as printed.
PAPER_TABLE_T4_ODNS: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Resolver": "(▲, ⊙)",
    "Oblivious Resolver": "(△, ⊙/●)",
    "Origin": "(△, ●)",
}

#: The same analysis under ODoH naming (proxy/target).
PAPER_TABLE_T4_ODOH: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Oblivious Proxy": "(▲, ⊙)",
    "Oblivious Target": "(△, ⊙/●)",
    "Origin": "(△, ●)",
}

_NAMES = ["www.example.com", "mail.example.com", "news.example.com"]


@dataclass
class OdnsRun:
    """Everything produced by one DNS-privacy scenario run."""

    world: World
    network: Network
    analyzer: DecouplingAnalyzer
    variant: str
    table_entities: List[str]
    answers: List[str]
    fetches: int
    #: The protocol client (OdnsClient / OdohClient / StubResolver),
    #: kept so benchmarks can issue further queries against the run.
    client: Optional[object] = None

    def table(self):
        return self.analyzer.table(
            entities=self.table_entities,
            title=f"T4: {self.variant}",
        )


def _base_world(variant: str):
    world = World()
    network = Network()
    registry = ZoneRegistry()
    zone = Zone("example.com")
    for name in _NAMES:
        zone.add(name, "93.184.216.34")
    auth_entity = world.entity("Authoritative (example.com)", "dns-infra")
    AuthoritativeServer(network, auth_entity, zone, registry)
    subject = Subject("alice")
    client_entity = world.entity("Client", "client-device", trusted_by_user=True)
    client_identity = LabeledValue(
        payload="198.51.100.7",
        label=SENSITIVE_IDENTITY,
        subject=subject,
        description="client ip",
    )
    query_host = network.add_host("client", client_entity, identity=client_identity)
    client_entity.observe(client_identity, channel="self", session="self")
    return world, network, registry, subject, client_entity, query_host, client_identity


def _fetch_via_anonymized(world, network, subject, client_entity, names) -> int:
    """Fetch each resolved name over an anonymized connection layer."""
    origin_entity = world.entity("Origin", "origin-org")
    directory = OriginDirectory()
    origin = OriginServer(
        network, origin_entity, "www.example.com", directory=directory
    )
    anonymized = LabeledValue(
        payload="relay-egress-pool",
        label=NONSENSITIVE_IDENTITY,
        subject=subject,
        description="anonymized network identity",
        provenance=("address", "anonymize"),
    )
    fetch_host = network.add_host("client-anon", client_entity, identity=anonymized)
    client_entity.grant_key(origin.tls_key_id)
    fetches = 0
    for name in names:
        request = make_request("www.example.com", f"/{name}", subject)
        client_entity.observe(request.content, channel="self", session="self")
        sealed = Sealed.wrap(
            origin.tls_key_id,
            [request],
            subject=subject,
            description="tls request",
        )
        reply = fetch_host.transact(origin.address, sealed, TLS_HTTP_PROTOCOL)
        if reply is not None:
            fetches += 1
    return fetches


def run_plain_dns(queries: int = 3) -> OdnsRun:
    """The coupled baseline: a stock recursive resolver sees all."""
    world, network, registry, subject, client_entity, host, _ = _base_world("plain")
    resolver_entity = world.entity("Resolver", "resolver-org")
    resolver = RecursiveResolver(network, resolver_entity, registry)
    stub = StubResolver(host, resolver.address)
    answers = []
    for name in _NAMES[:queries]:
        answers.append(stub.lookup(name, subject).rdata or "NXDOMAIN")
    fetches = _fetch_via_anonymized(world, network, subject, client_entity, _NAMES[:queries])
    network.run()
    return OdnsRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="plain DNS (baseline)",
        table_entities=["Client", "Resolver", "Origin"],
        answers=answers,
        fetches=fetches,
        client=stub,
    )


def run_doh(queries: int = 3, key_seed: Optional[bytes] = b"\x51" * 32) -> OdnsRun:
    """DNS over HTTPS: encrypted to the resolver, still coupled there.

    The rung between plain DNS and ODoH: a wire observer no longer sees
    query names, but the resolver's knowledge is unchanged -- the
    paper's motivation for *oblivious* designs.
    """
    from repro.net.network import WireObserver

    world, network, registry, subject, client_entity, host, _ = _base_world("doh")
    # The observer is the client's access network (coffee-shop WiFi,
    # ISP): it taps the client's links, not the resolver's upstream
    # (where recursion to authoritatives is plaintext regardless).
    observer_entity = world.entity("Network Observer", "access-isp")
    network.add_observer(
        WireObserver(observer_entity, prefixes=(host.address.prefix,))
    )
    resolver_entity = world.entity("Resolver", "resolver-org")
    resolver = DohResolver(network, resolver_entity, registry, key_seed=key_seed)
    client = DohClient(host, resolver, subject)
    answers = []
    for name in _NAMES[:queries]:
        answers.append(client.lookup(name).rdata or "NXDOMAIN")
    fetches = _fetch_via_anonymized(world, network, subject, client_entity, _NAMES[:queries])
    network.run()
    return OdnsRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="DoH (encrypted, not oblivious)",
        table_entities=["Client", "Network Observer", "Resolver", "Origin"],
        answers=answers,
        fetches=fetches,
        client=client,
    )


def run_odns(queries: int = 3) -> OdnsRun:
    """The original ODNS protocol run."""
    world, network, registry, subject, client_entity, host, _ = _base_world("odns")
    resolver_entity = world.entity("Resolver", "resolver-org")
    oblivious_entity = world.entity("Oblivious Resolver", "oblivious-org")
    resolver = OdnsAwareResolver(network, resolver_entity, registry)
    oblivious = ObliviousResolver(network, oblivious_entity, registry)
    client = OdnsClient(host, resolver.address, oblivious, subject)
    answers = []
    for name in _NAMES[:queries]:
        answers.append(client.lookup(name).rdata or "NXDOMAIN")
    fetches = _fetch_via_anonymized(world, network, subject, client_entity, _NAMES[:queries])
    network.run()
    return OdnsRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="ODNS",
        table_entities=["Client", "Resolver", "Oblivious Resolver", "Origin"],
        answers=answers,
        fetches=fetches,
        client=client,
    )


def run_odoh(queries: int = 3, key_seed: Optional[bytes] = b"\x42" * 32) -> OdnsRun:
    """The ODoH protocol run (real HPKE on the wire)."""
    world, network, registry, subject, client_entity, host, _ = _base_world("odoh")
    proxy_entity = world.entity("Oblivious Proxy", "proxy-org")
    target_entity = world.entity("Oblivious Target", "target-org")
    target = ObliviousTarget(network, target_entity, registry, key_seed=key_seed)
    proxy = ObliviousProxy(network, proxy_entity, target.address)
    client = OdohClient(host, proxy, target, subject)
    answers = []
    for name in _NAMES[:queries]:
        answers.append(client.lookup(name).rdata or "NXDOMAIN")
    fetches = _fetch_via_anonymized(world, network, subject, client_entity, _NAMES[:queries])
    network.run()
    return OdnsRun(
        world=world,
        network=network,
        analyzer=DecouplingAnalyzer(world),
        variant="ODoH",
        table_entities=["Client", "Oblivious Proxy", "Oblivious Target", "Origin"],
        answers=answers,
        fetches=fetches,
        client=client,
    )
