"""The T4 scenarios: plain DNS (baseline), ODNS, and ODoH.

Each run resolves a handful of names and then fetches content from the
web origin.  Following the paper's layering argument (section 2.1), the
fetch rides a connection-level privacy layer (an anonymized network
identity, as Private Relay or Tor would provide): the T4 table analyzes
the *resolution* path, and its Origin column presumes the connection
layer is not re-identifying the user.  The plain-DNS baseline shows the
coupled alternative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis import DecouplingAnalyzer
from repro.core.values import Subject
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
from repro.scenario import (
    Param,
    ScenarioProgram,
    ScenarioRun,
    ScenarioSpec,
    client_ip_identity,
    fetch_via_anonymized,
    register,
    run_scenario,
)

from .doh import DohClient, DohResolver
from .odns import ObliviousResolver, OdnsAwareResolver, OdnsClient
from .odoh import ObliviousProxy, ObliviousTarget, OdohClient

__all__ = [
    "OdnsRun",
    "run_plain_dns",
    "run_doh",
    "run_odns",
    "run_odoh",
    "PAPER_TABLE_T4_ODNS",
    "PAPER_TABLE_T4_ODOH",
]

#: The paper's section 3.2.2 table (ODNS naming), exactly as printed.
PAPER_TABLE_T4_ODNS: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Resolver": "(▲, ⊙)",
    "Oblivious Resolver": "(△, ⊙/●)",
    "Origin": "(△, ●)",
}

#: The same analysis under ODoH naming (proxy/target).
PAPER_TABLE_T4_ODOH: Dict[str, str] = {
    "Client": "(▲, ●)",
    "Oblivious Proxy": "(▲, ⊙)",
    "Oblivious Target": "(△, ⊙/●)",
    "Origin": "(△, ●)",
}

_NAMES = ["www.example.com", "mail.example.com", "news.example.com"]


@dataclass
class OdnsRun(ScenarioRun):
    """Everything produced by one DNS-privacy scenario run."""

    variant: str = ""
    table_entities: List[str] = None  # type: ignore[assignment]
    answers: List[str] = None  # type: ignore[assignment]
    fetches: int = 0
    #: The protocol client (OdnsClient / OdohClient / StubResolver),
    #: kept so benchmarks can issue further queries against the run.
    client: Optional[object] = None

    @property
    def table_title(self) -> str:
        return f"T4: {self.variant}"


class _DnsBase(ScenarioProgram):
    """Shared authoritative zone, client host, and resolve-then-fetch loop.

    Subclasses add the variant's resolution topology in
    :meth:`build_resolution` and must set ``self.client`` (an object
    with a ``lookup(name)`` method returning a DNS answer).
    """

    variant = ""
    table_entities: List[str] = []

    def build(self) -> None:
        self.registry = ZoneRegistry()
        zone = Zone("example.com")
        for name in _NAMES:
            zone.add(name, "93.184.216.34")
        auth_entity = self.world.entity("Authoritative (example.com)", "dns-infra")
        AuthoritativeServer(self.network, auth_entity, zone, self.registry)
        self.subject = Subject("alice")
        self.client_entity = self.world.entity(
            "Client", "client-device", trusted_by_user=True
        )
        client_identity = client_ip_identity(self.subject, "198.51.100.7")
        self.query_host = self.network.add_host(
            "client", self.client_entity, identity=client_identity
        )
        self.client_entity.observe(client_identity, channel="self", session="self")
        self.build_resolution()

    def build_resolution(self) -> None:
        raise NotImplementedError

    def _lookup(self, name: str):
        return self.client.lookup(name)

    def _fallback_for(self, name: str):
        """The variant's availability fallback for one lookup, or ``None``.

        Only consulted under fault injection, after retries are
        exhausted -- the degraded path a real deployment would take.
        """
        return None

    def drive(self) -> None:
        # Cycle the zone's names so ``queries`` scales past the name
        # list (drive-phase benchmarks run hundreds); for queries <=
        # len(_NAMES) this is exactly the old ``_NAMES[:queries]``
        # prefix, so default runs stay byte-identical.
        names = [_NAMES[i % len(_NAMES)] for i in range(self.param("queries"))]
        self.answers = []
        self.fetches = 0
        for name in names:
            answer = self.attempt(
                lambda name=name: self._lookup(name),
                fallback=self._fallback_for(name),
                label=f"resolve {name}",
            )
            self.answers.append(
                "DROPPED" if answer is None else answer.rdata or "NXDOMAIN"
            )
        self.fetches = fetch_via_anonymized(
            self.world, self.network, self.subject, self.client_entity, names,
            attempt=self.attempt,
        )

    def analyze(self) -> OdnsRun:
        return OdnsRun(
            world=self.world,
            network=self.network,
            analyzer=DecouplingAnalyzer(self.world),
            variant=self.variant,
            table_entities=list(self.table_entities),
            answers=self.answers,
            fetches=self.fetches,
            client=self.client,
        )


class PlainDnsProgram(_DnsBase):
    """The coupled baseline: a stock recursive resolver sees all."""

    variant = "plain DNS (baseline)"
    table_entities = ["Client", "Resolver", "Origin"]

    def build_resolution(self) -> None:
        resolver_entity = self.world.entity("Resolver", "resolver-org")
        resolver = RecursiveResolver(self.network, resolver_entity, self.registry)
        self.client = StubResolver(self.query_host, resolver.address)

    def _lookup(self, name: str):
        return self.client.lookup(name, self.subject)


class DohProgram(_DnsBase):
    """DNS over HTTPS: encrypted to the resolver, still coupled there.

    The rung between plain DNS and ODoH: a wire observer no longer sees
    query names, but the resolver's knowledge is unchanged -- the
    paper's motivation for *oblivious* designs.
    """

    variant = "DoH (encrypted, not oblivious)"
    table_entities = ["Client", "Network Observer", "Resolver", "Origin"]

    def build_resolution(self) -> None:
        from repro.net.network import WireObserver

        # The observer is the client's access network (coffee-shop WiFi,
        # ISP): it taps the client's links, not the resolver's upstream
        # (where recursion to authoritatives is plaintext regardless).
        observer_entity = self.world.entity("Network Observer", "access-isp")
        self.network.add_observer(
            WireObserver(observer_entity, prefixes=(self.query_host.address.prefix,))
        )
        resolver_entity = self.world.entity("Resolver", "resolver-org")
        resolver = DohResolver(
            self.network, resolver_entity, self.registry,
            key_seed=self.param("key_seed"),
        )
        self.client = DohClient(self.query_host, resolver, self.subject)


class OdnsProgram(_DnsBase):
    """The original ODNS protocol run."""

    variant = "ODNS"
    table_entities = ["Client", "Resolver", "Oblivious Resolver", "Origin"]

    def build_resolution(self) -> None:
        resolver_entity = self.world.entity("Resolver", "resolver-org")
        oblivious_entity = self.world.entity("Oblivious Resolver", "oblivious-org")
        resolver = OdnsAwareResolver(self.network, resolver_entity, self.registry)
        oblivious = ObliviousResolver(self.network, oblivious_entity, self.registry)
        self.client = OdnsClient(
            self.query_host, resolver.address, oblivious, self.subject
        )


class OdohProgram(_DnsBase):
    """The ODoH protocol run (real HPKE on the wire)."""

    variant = "ODoH"
    table_entities = ["Client", "Oblivious Proxy", "Oblivious Target", "Origin"]

    def build_resolution(self) -> None:
        proxy_entity = self.world.entity("Oblivious Proxy", "proxy-org")
        target_entity = self.world.entity("Oblivious Target", "target-org")
        target = ObliviousTarget(
            self.network, target_entity, self.registry,
            key_seed=self.param("key_seed"),
        )
        proxy = ObliviousProxy(self.network, proxy_entity, target.address)
        self.client = OdohClient(self.query_host, proxy, target, self.subject)
        self.target = target
        self._direct_stub: Optional[StubResolver] = None

    def _fallback_for(self, name: str):
        """Proxy down -> query the target directly, as deployed DoH does.

        This is the paper's unstated failure mode: the target now sees
        the client's network identity next to the plaintext query name
        on one connection, re-coupling exactly what the oblivious
        layering decoupled.  The analyzer's verdict flips accordingly.
        """

        def direct_doh():
            if self._direct_stub is None:
                self._direct_stub = StubResolver(
                    self.query_host, self.target.address
                )
            return self._direct_stub.lookup(name, self.subject)

        return direct_doh


_QUERIES_PARAM = Param("queries", 3, "names resolved and fetched")
_SEED_PARAM = Param("seed", None, "unused: the scenario is deterministic")

register(
    ScenarioSpec(
        id="odns",
        title="Oblivious DNS -- ODNS (3.2.2)",
        program=OdnsProgram,
        params=(_QUERIES_PARAM, _SEED_PARAM),
        expected=PAPER_TABLE_T4_ODNS,
        entities=("Client", "Resolver", "Oblivious Resolver", "Origin"),
        table_constant="PAPER_TABLE_T4_ODNS",
        experiment_id="T4a",
        order=40.0,
    )
)

register(
    ScenarioSpec(
        id="odoh",
        title="Oblivious DNS -- ODoH (3.2.2)",
        program=OdohProgram,
        params=(
            _QUERIES_PARAM,
            Param("key_seed", b"\x42" * 32, "HPKE key seed for the target"),
            _SEED_PARAM,
        ),
        expected=PAPER_TABLE_T4_ODOH,
        entities=("Client", "Oblivious Proxy", "Oblivious Target", "Origin"),
        table_constant="PAPER_TABLE_T4_ODOH",
        experiment_id="T4b",
        order=41.0,
    )
)

register(
    ScenarioSpec(
        id="plain-dns",
        title="Plain DNS, coupled baseline (3.2.2)",
        program=PlainDnsProgram,
        params=(_QUERIES_PARAM, _SEED_PARAM),
        entities=("Client", "Resolver", "Origin"),
        order=42.0,
    )
)

register(
    ScenarioSpec(
        id="doh",
        title="DNS over HTTPS, encrypted not oblivious (3.2.2)",
        program=DohProgram,
        params=(
            _QUERIES_PARAM,
            Param("key_seed", b"\x51" * 32, "TLS key seed for the resolver"),
            _SEED_PARAM,
        ),
        entities=("Client", "Network Observer", "Resolver", "Origin"),
        order=43.0,
    )
)


def run_plain_dns(queries: int = 3) -> OdnsRun:
    """The coupled baseline: a stock recursive resolver sees all."""
    return run_scenario("plain-dns", queries=queries)


def run_doh(queries: int = 3, key_seed: Optional[bytes] = b"\x51" * 32) -> OdnsRun:
    """DNS over HTTPS: encrypted to the resolver, still coupled there."""
    return run_scenario("doh", queries=queries, key_seed=key_seed)


def run_odns(queries: int = 3) -> OdnsRun:
    """The original ODNS protocol run."""
    return run_scenario("odns", queries=queries)


def run_odoh(queries: int = 3, key_seed: Optional[bytes] = b"\x42" * 32) -> OdnsRun:
    """The ODoH protocol run (real HPKE on the wire)."""
    return run_scenario("odoh", queries=queries, key_seed=key_seed)
