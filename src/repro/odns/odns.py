"""Original Oblivious DNS (paper section 3.2.2, ODNS variant).

The client encrypts the real query and disguises it as a name under a
special zone (``<blob>.odns.example``).  The user's *regular recursive
resolver* handles it like any query: it recurses to the authoritative
server for ``odns.example`` -- which is the *oblivious resolver*,
holding the decryption key.  The oblivious resolver recovers the real
query, resolves it recursively, and returns the answer encrypted under
a client-chosen session key carried inside the query.

The recursive resolver learns who asked (client IP) but only sees an
opaque label; the oblivious resolver sees the query but only the
recursive resolver's address.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


from repro.core.entities import Entity
from repro.core.values import Sealed, Subject
from repro.dns.messages import DnsAnswer, DnsQuery, make_query
from repro.dns.resolver import DNS_PROTOCOL, RecursiveResolver
from repro.dns.zones import AUTH_PROTOCOL, ZoneRegistry
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["ObliviousResolver", "OdnsClient", "OdnsAwareResolver", "ODNS_SUFFIX"]

ODNS_SUFFIX = "odns.example"

_session_counter = itertools.count(1)


@dataclass(frozen=True)
class _OdnsQuery:
    """An obfuscated query: an opaque envelope riding the DNS path."""

    obfuscated: Sealed  # sealed to the oblivious resolver
    suffix: str = ODNS_SUFFIX


@dataclass(frozen=True)
class _OdnsAnswer:
    """The oblivious resolver's reply, sealed to the client session."""

    envelope: Sealed


@dataclass(frozen=True)
class _InnerQuery:
    """What the oblivious resolver finds inside: query + reply key."""

    query: DnsQuery
    session_key_id: str


class ObliviousResolver:
    """Authoritative for the ODNS zone; decrypts and recurses."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        registry: ZoneRegistry,
        name: str = "oblivious-resolver",
    ) -> None:
        self.entity = entity
        self.key_id = f"odns:{name}"
        entity.grant_key(self.key_id)
        # A full recursive resolver for the inner (real) queries.
        self.resolver = RecursiveResolver(network, entity, registry, name=name)
        self.host: SimHost = self.resolver.host
        self.host.register(AUTH_PROTOCOL + ":odns", self._handle)
        registry.delegate(ODNS_SUFFIX, self.host.address)
        self.queries_answered = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> _OdnsAnswer:
        odns_query: _OdnsQuery = packet.payload
        (inner,) = self.entity.unseal(odns_query.obfuscated)
        if not isinstance(inner, _InnerQuery):
            raise TypeError("odns envelope did not contain an inner query")
        answer = self.resolver.resolve(inner.query)
        self.queries_answered += 1
        self.entity.grant_key(inner.session_key_id)
        return _OdnsAnswer(
            envelope=Sealed.wrap(
                inner.session_key_id,
                [answer],
                subject=inner.query.qname.subject,
                description="odns answer",
            )
        )


class OdnsAwareResolver(RecursiveResolver):
    """A recursive resolver that also routes obfuscated ODNS queries.

    To the operator this is a stock resolver: the ODNS query is just a
    name in a zone it is not authoritative for, so it forwards to that
    zone's authoritative server (the oblivious resolver).
    """

    def __init__(
        self,
        network: Network,
        entity: Entity,
        registry: ZoneRegistry,
        name: str = "recursive-resolver",
    ) -> None:
        super().__init__(network, entity, registry, name=name)
        self.host.register(DNS_PROTOCOL + ":odns", self._handle_odns)

    def _handle_odns(self, packet: Packet) -> _OdnsAnswer:
        odns_query: _OdnsQuery = packet.payload
        upstream = self.registry.authoritative_for(f"blob.{odns_query.suffix}")
        return self.host.transact(upstream, odns_query, AUTH_PROTOCOL + ":odns")


class OdnsClient:
    """The stub side: obfuscate, send to the regular resolver."""

    def __init__(
        self,
        host: SimHost,
        resolver_address: Address,
        oblivious: ObliviousResolver,
        subject: Subject,
    ) -> None:
        self.host = host
        self.resolver_address = resolver_address
        self.oblivious = oblivious
        self.subject = subject

    def lookup(self, name: str, qtype: str = "A") -> DnsAnswer:
        query = make_query(name, self.subject, qtype)
        session_key_id = f"odns-session:{next(_session_counter)}"
        self.host.entity.grant_key(session_key_id)
        inner = _InnerQuery(query=query, session_key_id=session_key_id)
        obfuscated = Sealed.wrap(
            self.oblivious.key_id,
            [inner],
            subject=self.subject,
            description="odns obfuscated query",
        )
        response: _OdnsAnswer = self.host.transact(
            self.resolver_address,
            _OdnsQuery(obfuscated=obfuscated),
            DNS_PROTOCOL + ":odns",
        )
        (answer,) = self.host.entity.unseal(response.envelope)
        return answer
