"""Oblivious DNS: ODNS and ODoH (paper section 3.2.2)."""

from .doh import DOH_PROTOCOL, DohClient, DohResolver
from .odns import ODNS_SUFFIX, ObliviousResolver, OdnsAwareResolver, OdnsClient
from .odoh import (
    ODOH_PROTOCOL,
    ODOH_UPSTREAM,
    ObliviousProxy,
    ObliviousTarget,
    OdohClient,
)
from .scenario import (
    OdnsRun,
    PAPER_TABLE_T4_ODNS,
    PAPER_TABLE_T4_ODOH,
    run_doh,
    run_odns,
    run_odoh,
    run_plain_dns,
)

__all__ = [
    "ObliviousResolver",
    "OdnsAwareResolver",
    "OdnsClient",
    "ODNS_SUFFIX",
    "ObliviousProxy",
    "ObliviousTarget",
    "OdohClient",
    "ODOH_PROTOCOL",
    "ODOH_UPSTREAM",
    "OdnsRun",
    "run_plain_dns",
    "run_doh",
    "run_odns",
    "run_odoh",
    "DohClient",
    "DohResolver",
    "DOH_PROTOCOL",
    "PAPER_TABLE_T4_ODNS",
    "PAPER_TABLE_T4_ODOH",
]
