"""DNS over HTTPS -- encrypted, but not oblivious.

The missing rung between plain DNS and ODoH: DoH seals the query to the
*recursive resolver itself*.  A network observer is blinded (it saw the
qname in plain DNS), but the resolver still holds (▲, ⊙/●) -- which is
precisely why the paper's section 3.2.2 reaches for *oblivious* DNS:
encryption relocates knowledge, only decoupling removes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.entities import Entity
from repro.core.values import Sealed, Subject
from repro.crypto.hpke import HpkeKeyPair, setup_base_recipient, setup_base_sender
from repro.dns.messages import DnsAnswer, DnsQuery, make_query
from repro.dns.resolver import RecursiveResolver
from repro.dns.zones import ZoneRegistry
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["DohResolver", "DohClient", "DOH_PROTOCOL"]

DOH_PROTOCOL = "doh"

_DOH_INFO = b"doh query"


@dataclass(frozen=True)
class _DohEnvelope:
    enc: bytes
    ciphertext: bytes
    envelope: Sealed


@dataclass(frozen=True)
class _DohResponse:
    envelope: Sealed


class DohResolver:
    """A recursive resolver that terminates the encryption itself."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        registry: ZoneRegistry,
        key_seed: Optional[bytes] = None,
        name: str = "doh-resolver",
    ) -> None:
        self.entity = entity
        self.keypair = HpkeKeyPair.generate(key_seed)
        self.key_id = f"doh:{name}"
        entity.grant_key(self.key_id)
        self.resolver = RecursiveResolver(network, entity, registry, name=name)
        self.host: SimHost = self.resolver.host
        self.host.register(DOH_PROTOCOL, self._handle)
        self.queries_answered = 0

    @property
    def address(self) -> Address:
        return self.host.address

    @property
    def public_key(self) -> bytes:
        return self.keypair.public_bytes

    def _handle(self, packet: Packet) -> _DohResponse:
        wrapped: _DohEnvelope = packet.payload
        context = setup_base_recipient(wrapped.enc, self.keypair, _DOH_INFO)
        plaintext_name = context.open(wrapped.ciphertext).decode("utf-8")
        (query,) = self.entity.unseal(wrapped.envelope)
        if not isinstance(query, DnsQuery) or query.name != plaintext_name:
            raise ValueError("HPKE plaintext does not match the logical envelope")
        answer = self.resolver.resolve(query)
        self.queries_answered += 1
        session_key_id = f"doh-resp:{wrapped.enc.hex()[:16]}"
        self.entity.grant_key(session_key_id)
        return _DohResponse(
            envelope=Sealed.wrap(
                session_key_id,
                [answer],
                subject=query.qname.subject,
                description="doh response",
            )
        )


class DohClient:
    """The stub side: seal the query straight to the resolver."""

    def __init__(
        self, host: SimHost, resolver: DohResolver, subject: Subject
    ) -> None:
        self.host = host
        self.resolver = resolver
        self.subject = subject

    def lookup(self, name: str, qtype: str = "A") -> DnsAnswer:
        query = make_query(name, self.subject, qtype)
        sender = setup_base_sender(self.resolver.public_key, _DOH_INFO)
        ciphertext = sender.seal(name.encode("utf-8"))
        envelope = Sealed.wrap(
            self.resolver.key_id,
            [query],
            subject=self.subject,
            description="doh encrypted query",
        )
        self.host.entity.grant_key(f"doh-resp:{sender.enc.hex()[:16]}")
        wrapped = _DohEnvelope(enc=sender.enc, ciphertext=ciphertext, envelope=envelope)
        response: _DohResponse = self.host.transact(
            self.resolver.address, wrapped, DOH_PROTOCOL
        )
        (answer,) = self.host.entity.unseal(response.envelope)
        return answer
