"""Oblivious DNS over HTTPS (paper section 3.2.2, ODoH variant).

The client HPKE-seals its query to the *Oblivious Target* (a DoH
resolver) and sends it via the *Oblivious Proxy*; the proxy learns who
is asking but not what, the target learns what is asked but not by
whom.  Decoupling holds as long as proxy and target do not collude.

The module runs the real cryptography: queries and responses travel as
genuine HPKE ciphertexts (DHKEM(X25519)+HKDF-SHA256+ChaCha20-Poly1305,
from :mod:`repro.crypto.hpke`) *and* as logical sealed envelopes so the
information-flow ledger can track who could read them.  The target
asserts the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.entities import Entity
from repro.core.values import Sealed, Subject
from repro.crypto.hpke import (
    HpkeKeyPair,
    setup_base_recipient,
    setup_base_sender,
)
from repro.dns.messages import DnsAnswer, DnsQuery, make_query
from repro.dns.resolver import RecursiveResolver
from repro.dns.zones import ZoneRegistry
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["ObliviousProxy", "ObliviousTarget", "OdohClient", "ODOH_PROTOCOL", "ODOH_UPSTREAM"]

ODOH_PROTOCOL = "odoh"
ODOH_UPSTREAM = "odoh-upstream"

_ODOH_INFO = b"odoh query"


@dataclass(frozen=True)
class _OdohEnvelope:
    """The wire form: real HPKE ciphertext + the logical envelope."""

    enc: bytes
    ciphertext: bytes
    envelope: Sealed


@dataclass(frozen=True)
class _OdohResponse:
    ciphertext: bytes
    envelope: Sealed


class ObliviousTarget:
    """The DoH resolver behind the proxy: decrypts, resolves, replies.

    Wraps a full :class:`~repro.dns.resolver.RecursiveResolver` for the
    actual upstream resolution, so cache behaviour and authoritative
    traffic are real.
    """

    def __init__(
        self,
        network: Network,
        entity: Entity,
        registry: ZoneRegistry,
        key_seed: Optional[bytes] = None,
        name: str = "oblivious-target",
    ) -> None:
        self.entity = entity
        self.keypair = HpkeKeyPair.generate(key_seed)
        self.key_id = f"odoh:{name}"
        entity.grant_key(self.key_id)
        self.resolver = RecursiveResolver(network, entity, registry, name=name)
        self.host: SimHost = self.resolver.host
        self.host.register(ODOH_UPSTREAM, self._handle)
        self.queries_answered = 0

    @property
    def address(self) -> Address:
        return self.host.address

    @property
    def public_key(self) -> bytes:
        return self.keypair.public_bytes

    def _handle(self, packet: Packet) -> _OdohResponse:
        wrapped: _OdohEnvelope = packet.payload
        # Real decryption of the wire bytes.
        context = setup_base_recipient(wrapped.enc, self.keypair, _ODOH_INFO)
        plaintext_name = context.open(wrapped.ciphertext).decode("utf-8")
        # Logical opening of the flow envelope; both must agree.
        (query,) = self.entity.unseal(wrapped.envelope)
        if not isinstance(query, DnsQuery) or query.name != plaintext_name:
            raise ValueError("HPKE plaintext does not match the logical envelope")
        answer = self.resolver.resolve(query)
        self.queries_answered += 1
        response_ct = context.export(b"odoh response key", 32)
        # The response key is per-query, shared only by this client and
        # the target (both derive it from the HPKE context); the
        # logical envelope uses a key id derived the same way.
        session_key_id = f"odoh-resp:{wrapped.enc.hex()[:16]}"
        self.entity.grant_key(session_key_id)
        envelope = Sealed.wrap(
            session_key_id,
            [answer],
            subject=query.qname.subject,
            description="odoh response",
        )
        return _OdohResponse(ciphertext=response_ct, envelope=envelope)


class ObliviousProxy:
    """The relay: forwards opaque queries, learns only who asked."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        target_address: Address,
        name: str = "oblivious-proxy",
    ) -> None:
        self.target_address = target_address
        self.host: SimHost = network.add_host(name, entity)
        self.host.register(ODOH_PROTOCOL, self._handle)
        self.queries_relayed = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> _OdohResponse:
        wrapped: _OdohEnvelope = packet.payload
        self.queries_relayed += 1
        return self.host.transact(self.target_address, wrapped, ODOH_UPSTREAM)


class OdohClient:
    """The stub side: seal to the target, send via the proxy."""

    def __init__(
        self,
        host: SimHost,
        proxy: ObliviousProxy,
        target: ObliviousTarget,
        subject: Subject,
    ) -> None:
        self.host = host
        self.proxy = proxy
        self.target = target
        self.subject = subject

    def lookup(self, name: str, qtype: str = "A") -> DnsAnswer:
        """Resolve ``name`` obliviously; returns the (opened) answer."""
        query = make_query(name, self.subject, qtype)
        sender = setup_base_sender(self.target.public_key, _ODOH_INFO)
        ciphertext = sender.seal(name.encode("utf-8"))
        envelope = Sealed.wrap(
            self.target.key_id,
            [query],
            subject=self.subject,
            description="odoh encrypted query",
        )
        wrapped = _OdohEnvelope(
            enc=sender.enc, ciphertext=ciphertext, envelope=envelope
        )
        # Both ends derive the same per-query response key.
        self.host.entity.grant_key(f"odoh-resp:{sender.enc.hex()[:16]}")
        response: _OdohResponse = self.host.transact(
            self.proxy.address, wrapped, ODOH_PROTOCOL
        )
        expected = sender.export(b"odoh response key", 32)
        if response.ciphertext != expected:
            raise ValueError("odoh response key mismatch (wrong target?)")
        (answer,) = self.host.entity.unseal(response.envelope)
        return answer
