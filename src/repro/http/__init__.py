"""HTTP substrate: messages, origins, and CONNECT proxying.

The transport layer under the Multi-Party Relay model (paper section
3.2.4) and the OHTTP-proxied aggregation variant (3.2.5).
"""

from .messages import HttpRequest, HttpResponse, fqdn_value, make_request
from .ohttp import (
    OHTTP_GATEWAY_PROTOCOL,
    OHTTP_RELAY_PROTOCOL,
    OhttpClient,
    OhttpGateway,
    OhttpRelay,
)
from .origin import (
    HTTP_PROTOCOL,
    TLS_HTTP_PROTOCOL,
    OriginDirectory,
    OriginServer,
)
from .proxy import CONNECT_PROTOCOL, ConnectProxy, ConnectRequest

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "make_request",
    "fqdn_value",
    "OriginServer",
    "OriginDirectory",
    "HTTP_PROTOCOL",
    "TLS_HTTP_PROTOCOL",
    "ConnectProxy",
    "ConnectRequest",
    "CONNECT_PROTOCOL",
    "OhttpClient",
    "OhttpGateway",
    "OhttpRelay",
    "OHTTP_RELAY_PROTOCOL",
    "OHTTP_GATEWAY_PROTOCOL",
]
