"""Oblivious HTTP: the generalization of ODoH (paper section 3.2.5).

"One approach is to hide sensitive client identifying information from
the server using Oblivious HTTP, a generalization of ODoH; clients
would send encrypted reports to the collection server through a proxy."

The module implements the RFC 9458 shape on this package's real HPKE:
the client encapsulates a request to the *gateway's* key and sends it
via the *relay*; the gateway decapsulates, hands the request to its
application, and encrypts the response back under an AEAD key exported
from the same HPKE context.  The relay learns who is asking but only
ever carries ciphertext.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.entities import Entity
from repro.core.values import LabeledValue, Sealed, Subject
from repro.crypto.chacha20poly1305 import ChaCha20Poly1305
from repro.crypto.hpke import (
    HpkeKeyPair,
    setup_base_recipient,
    setup_base_sender,
)
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

__all__ = ["OhttpGateway", "OhttpRelay", "OhttpClient", "OHTTP_RELAY_PROTOCOL", "OHTTP_GATEWAY_PROTOCOL"]

OHTTP_RELAY_PROTOCOL = "ohttp"
OHTTP_GATEWAY_PROTOCOL = "ohttp-gateway"

_OHTTP_INFO = b"message/bhttp request"
_RESPONSE_EXPORT = b"message/bhttp response"
_RESPONSE_NONCE = b"\x00" * 12

_message_ids = itertools.count(1)

#: The gateway application: plaintext request bytes -> response bytes.
GatewayApp = Callable[[bytes], bytes]


@dataclass(frozen=True)
class _EncapsulatedRequest:
    """Wire form: HPKE enc + ciphertext, plus the logical envelope."""

    enc: bytes
    ciphertext: bytes
    envelope: Sealed


@dataclass(frozen=True)
class _EncapsulatedResponse:
    ciphertext: bytes
    envelope: Sealed


class OhttpGateway:
    """The request target: decapsulates, serves, re-encrypts."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        app: GatewayApp,
        key_seed: Optional[bytes] = None,
        name: str = "ohttp-gateway",
    ) -> None:
        self.entity = entity
        self.app = app
        self.keypair = HpkeKeyPair.generate(key_seed)
        self.key_id = f"ohttp:{name}"
        entity.grant_key(self.key_id)
        self.host: SimHost = network.add_host(name, entity)
        self.host.register(OHTTP_GATEWAY_PROTOCOL, self._handle)
        self.requests_served = 0

    @property
    def address(self) -> Address:
        return self.host.address

    @property
    def public_key(self) -> bytes:
        return self.keypair.public_bytes

    def _handle(self, packet: Packet) -> _EncapsulatedResponse:
        wrapped: _EncapsulatedRequest = packet.payload
        context = setup_base_recipient(wrapped.enc, self.keypair, _OHTTP_INFO)
        plaintext = context.open(wrapped.ciphertext)
        # Logical envelope must agree with the real decryption.
        contents = self.entity.unseal(wrapped.envelope)
        labeled = next(
            (c for c in contents if isinstance(c, LabeledValue)), None
        )
        if labeled is None or str(labeled.payload).encode() != plaintext:
            raise ValueError("HPKE plaintext does not match the logical envelope")
        self.requests_served += 1
        response_plain = self.app(plaintext)
        response_key = context.export(_RESPONSE_EXPORT, 32)
        response_ct = ChaCha20Poly1305(response_key).seal(
            _RESPONSE_NONCE, response_plain
        )
        session_key_id = f"ohttp-resp:{wrapped.enc.hex()[:16]}"
        self.entity.grant_key(session_key_id)
        envelope = Sealed.wrap(
            session_key_id,
            [
                LabeledValue(
                    payload=response_plain.decode("utf-8", "replace"),
                    label=labeled.label.downgraded(),
                    subject=labeled.subject,
                    description="ohttp response",
                )
            ],
            subject=labeled.subject,
            description="encapsulated ohttp response",
        )
        return _EncapsulatedResponse(ciphertext=response_ct, envelope=envelope)


class OhttpRelay:
    """The oblivious relay: forwards ciphertext, learns only who asked."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        gateway_address: Address,
        name: str = "ohttp-relay",
    ) -> None:
        self.gateway_address = gateway_address
        self.host: SimHost = network.add_host(name, entity)
        self.host.register(OHTTP_RELAY_PROTOCOL, self._handle)
        self.relayed = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _handle(self, packet: Packet) -> _EncapsulatedResponse:
        self.relayed += 1
        return self.host.transact(
            self.gateway_address, packet.payload, OHTTP_GATEWAY_PROTOCOL
        )


class OhttpClient:
    """The client: encapsulate to the gateway, send via the relay."""

    def __init__(
        self,
        host: SimHost,
        relay: OhttpRelay,
        gateway: OhttpGateway,
        subject: Subject,
    ) -> None:
        self.host = host
        self.relay = relay
        self.gateway = gateway
        self.subject = subject

    def request(self, request_value: LabeledValue) -> bytes:
        """Send one labeled request; returns the plaintext response.

        ``request_value.payload`` (stringified) is what actually rides
        the HPKE channel; its label/subject drive the flow analysis.
        """
        plaintext = str(request_value.payload).encode("utf-8")
        sender = setup_base_sender(self.gateway.public_key, _OHTTP_INFO)
        ciphertext = sender.seal(plaintext)
        envelope = Sealed.wrap(
            self.gateway.key_id,
            [request_value],
            subject=self.subject,
            description="encapsulated ohttp request",
        )
        self.host.entity.grant_key(f"ohttp-resp:{sender.enc.hex()[:16]}")
        wrapped = _EncapsulatedRequest(
            enc=sender.enc, ciphertext=ciphertext, envelope=envelope
        )
        response: _EncapsulatedResponse = self.host.transact(
            self.relay.address, wrapped, OHTTP_RELAY_PROTOCOL
        )
        response_key = sender.export(_RESPONSE_EXPORT, 32)
        plaintext_response = ChaCha20Poly1305(response_key).open(
            _RESPONSE_NONCE, response.ciphertext
        )
        return plaintext_response
