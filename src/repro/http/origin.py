"""Origin servers: the application endpoints requests terminate at.

An origin registers under a hostname, optionally publishes a TLS-like
key (so clients can seal requests end-to-end through proxies), and runs
an application callback to produce responses.  The origin *always* sees
the full request -- that is its job, and it is why the paper's tables
mark every Origin column ``(△, ●)`` at best.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.entities import Entity
from repro.core.labels import NONSENSITIVE_DATA
from repro.core.values import LabeledValue, Sealed
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

from .messages import HttpRequest, HttpResponse

__all__ = ["OriginServer", "OriginDirectory", "HTTP_PROTOCOL", "TLS_HTTP_PROTOCOL"]

HTTP_PROTOCOL = "http"
TLS_HTTP_PROTOCOL = "tls-http"

AppHandler = Callable[[HttpRequest], str]


def _default_app(request: HttpRequest) -> str:
    return f"content for {request.path_and_body} at {request.host}"


class OriginDirectory:
    """Hostname -> origin address resolution for proxies and clients.

    Stands in for DNS in HTTP-layer scenarios that are not *about*
    DNS; the ODNS/ODoH models wire in the real DNS substrate instead.
    """

    def __init__(self) -> None:
        self._origins: Dict[str, "OriginServer"] = {}

    def register(self, origin: "OriginServer") -> None:
        self._origins[origin.hostname.lower()] = origin

    def lookup(self, hostname: str) -> "OriginServer":
        try:
            return self._origins[hostname.lower()]
        except KeyError:
            raise LookupError(f"unknown origin {hostname!r}") from None

    def address_of(self, hostname: str) -> Address:
        return self.lookup(hostname).address


class OriginServer:
    """A web origin with optional end-to-end session encryption."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        hostname: str,
        directory: Optional[OriginDirectory] = None,
        app: Optional[AppHandler] = None,
        tls_key_id: Optional[str] = None,
    ) -> None:
        self.hostname = hostname
        self.entity = entity
        self.app = app if app is not None else _default_app
        self.tls_key_id = tls_key_id if tls_key_id is not None else f"tls:{hostname}"
        entity.grant_key(self.tls_key_id)
        self.host: SimHost = network.add_host(f"origin:{hostname}", entity)
        self.host.register(HTTP_PROTOCOL, self._handle_plain)
        self.host.register(TLS_HTTP_PROTOCOL, self._handle_tls)
        self.requests_served = 0
        if directory is not None:
            directory.register(self)

    @property
    def address(self) -> Address:
        return self.host.address

    def _respond(self, request: HttpRequest) -> HttpResponse:
        self.requests_served += 1
        body_text = self.app(request)
        body = LabeledValue(
            payload=body_text,
            label=NONSENSITIVE_DATA,
            subject=request.content.subject,
            description="http response body",
            provenance=request.content.provenance + ("response",),
        )
        return HttpResponse(status=200, body=body)

    def _handle_plain(self, packet: Packet) -> HttpResponse:
        request: HttpRequest = packet.payload
        return self._respond(request)

    def _handle_tls(self, packet: Packet) -> Sealed:
        """A sealed request arrives; the response is sealed back.

        The envelope may carry metadata items after the request (e.g. a
        geolocation hint, section 4.4); the app only needs the request.
        """
        sealed: Sealed = packet.payload
        request, *_metadata = self.entity.unseal(sealed)
        response = self._respond(request)
        return Sealed.wrap(
            self.tls_key_id,
            [response],
            subject=request.content.subject,
            description="tls response",
        )
