"""HTTP CONNECT proxying: the relay primitive of MPR services.

A :class:`ConnectProxy` terminates one layer of tunnel encryption,
learns only where to forward next, and relays opaque bytes.  Nesting
two of them (run by different organizations) is exactly Apple Private
Relay's architecture as the paper describes it: "two nested HTTP
CONNECT tunnels from the client, the first to the first relay, and the
second via the first to a second relay".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.core.entities import Entity
from repro.core.values import LabeledValue, Sealed
from repro.net.addressing import Address
from repro.net.network import Network, SimHost
from repro.net.packets import Packet

from .origin import OriginDirectory

__all__ = ["ConnectRequest", "ConnectProxy", "CONNECT_PROTOCOL"]

CONNECT_PROTOCOL = "connect"


@dataclass(frozen=True)
class ConnectRequest:
    """One CONNECT hop: where to forward, what to forward, how.

    ``target`` is either a literal address (the next relay) or a
    hostname to resolve through the proxy's directory; when it is a
    hostname the labeled ``target_fqdn`` should be set so the proxy's
    (partial) knowledge of the destination is observed honestly.
    """

    target: Union[Address, str]
    inner: Any
    inner_protocol: str
    target_fqdn: Optional[LabeledValue] = None


class ConnectProxy:
    """One relay hop: decrypt own tunnel layer, forward, re-encrypt."""

    def __init__(
        self,
        network: Network,
        entity: Entity,
        name: str,
        tunnel_key_id: str,
        directory: Optional[OriginDirectory] = None,
    ) -> None:
        self.network = network
        self.entity = entity
        self.tunnel_key_id = tunnel_key_id
        self.directory = directory
        entity.grant_key(tunnel_key_id)
        self.host: SimHost = network.add_host(name, entity)
        self.host.register(CONNECT_PROTOCOL, self._handle)
        self.connections_relayed = 0

    @property
    def address(self) -> Address:
        return self.host.address

    def _resolve_target(self, request: ConnectRequest) -> Address:
        if isinstance(request.target, Address):
            return request.target
        if self.directory is None:
            raise LookupError(
                f"proxy {self.host.name} cannot resolve {request.target!r}: no directory"
            )
        return self.directory.address_of(request.target)

    def _handle(self, packet: Packet) -> Sealed:
        sealed: Sealed = packet.payload
        (request,) = self.entity.unseal(sealed)
        if not isinstance(request, ConnectRequest):
            raise TypeError("CONNECT tunnel did not contain a ConnectRequest")
        self.connections_relayed += 1
        upstream = self._resolve_target(request)
        response = self.host.transact(
            upstream, request.inner, request.inner_protocol
        )
        subject = sealed.exterior.subject if sealed.exterior is not None else None
        return Sealed.wrap(
            self.tunnel_key_id,
            [response],
            subject=subject,
            description=f"tunnel response via {self.host.name}",
        )
