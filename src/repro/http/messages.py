"""HTTP message model.

Requests separate the two grades of sensitivity the paper's MPR
analysis distinguishes: the *target FQDN* is partially sensitive data
(what Relay 2 may learn -- ``⊙/●``), while the *full request* (path,
headers, body) is fully sensitive (``●``, what only the origin should
see).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.labels import PARTIAL_SENSITIVE_DATA, SENSITIVE_DATA
from repro.core.values import LabeledValue, Subject

__all__ = ["HttpRequest", "HttpResponse", "make_request", "fqdn_value"]


@dataclass(frozen=True)
class HttpRequest:
    """One HTTP request with labeled sensitive parts."""

    method: str
    fqdn: LabeledValue
    content: LabeledValue
    headers: Tuple[Tuple[str, str], ...] = ()

    @property
    def host(self) -> str:
        return str(self.fqdn.payload)

    @property
    def path_and_body(self) -> str:
        return str(self.content.payload)


@dataclass(frozen=True)
class HttpResponse:
    """An origin's reply; the body inherits the request's subject."""

    status: int
    body: LabeledValue

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def fqdn_value(host: str, subject: Subject) -> LabeledValue:
    """The FQDN as partially sensitive data about ``subject``."""
    return LabeledValue(
        payload=host,
        label=PARTIAL_SENSITIVE_DATA,
        subject=subject,
        description="target fqdn",
        provenance=("fqdn",),
    )


def make_request(
    host: str,
    path: str,
    subject: Subject,
    method: str = "GET",
    body: str = "",
    headers: Optional[Dict[str, str]] = None,
) -> HttpRequest:
    """Build a labeled request on behalf of ``subject``."""
    content = LabeledValue(
        payload=f"{method} {path} {body}".strip(),
        label=SENSITIVE_DATA,
        subject=subject,
        description="http request",
        provenance=("request",),
    )
    return HttpRequest(
        method=method,
        fqdn=fqdn_value(host, subject),
        content=content,
        headers=tuple((headers or {}).items()),
    )
