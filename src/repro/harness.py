"""The reproduction harness: every paper artifact, one call each.

Benchmarks (``benchmarks/bench_*.py``), the text report
(``benchmarks/report.py``), and the CLI (``python -m repro``) all build
on these functions, so "regenerate table T4" means the same thing
everywhere.
"""

from __future__ import annotations

import functools
import multiprocessing
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.tracing import get_tracer

from repro.core.metrics import DegreePoint, DegreeSweep
from repro.core.report import ExperimentReport, compare_tables, flow_series
from repro.mixnet import run_mixnet
from repro.mpr import run_mpr
from repro.pgpp import (
    TrajectoryLinker,
    extract_epoch_tracks,
    run_pgpp,
    tracking_accuracy,
)
from repro.ppm import run_prio
from repro.privacypass import run_privacy_pass
from repro.scenario import (
    register_sweep,
    run_scenario,
    experiment_specs,
    sweep_specs,
)

__all__ = [
    "TableSummary",
    "SweepResult",
    "ResiliencePoint",
    "table_experiments",
    "table_reports",
    "table_summaries",
    "sweep_results",
    "resilience_point",
    "resilience_sweep",
    "DEFAULT_RESILIENCE_RATES",
    "parallel_map",
    "figure_f1_series",
    "figure_f2_series",
    "sweep_relays",
    "sweep_aggregators",
    "sweep_batches",
    "sweep_striping",
    "sweep_tracking",
    "sweep_disclosure",
]


def _run_experiment(experiment_id: str, title: str, runner: Callable[[], object]):
    """Run one table experiment inside an ``experiment`` span.

    The span is annotated with the run's simulator/network/ledger
    totals so the CLI's ``--trace`` section and the JSONL export can
    attribute cost per experiment without re-running anything.
    """
    with get_tracer().span(
        "experiment",
        kind="harness",
        sim_time=0.0,
        experiment=experiment_id,
        title=title,
    ) as span:
        run = runner()
        network = getattr(run, "network", None)
        if network is not None:
            span.end_sim(network.simulator.now)
            span.set("events", network.simulator.events_processed)
            span.set("messages", network.messages_delivered)
            span.set("bytes", network.bytes_delivered)
        world = getattr(run, "world", None)
        if world is not None:
            span.set("observations", len(world.ledger))
    return run


def _table_specs() -> List[Tuple[str, str, Dict[str, str], Callable[[], object]]]:
    """The T/E-series experiment specs in the paper's presentation order.

    A registry query: every spec carrying an ``experiment_id`` appears,
    sorted by its declared presentation order, with its default
    parameter binding as the runner.  Workers are handed only a spec
    index and rebuild this list in-process, so the runners need not be
    picklable.
    """
    return [
        (
            spec.experiment_id,
            spec.title,
            spec.expected_table(),
            functools.partial(run_scenario, spec.id),
        )
        for spec in experiment_specs()
    ]


def table_experiments() -> List[Tuple[str, str, Dict[str, str], object]]:
    """(id, title, paper table, completed run) for every table."""
    return [
        (experiment_id, title, expected, _run_experiment(experiment_id, title, runner))
        for experiment_id, title, expected, runner in _table_specs()
    ]


def table_reports() -> List[Tuple[ExperimentReport, object]]:
    """Experiment reports paired with their runs."""
    return [
        (compare_tables(experiment_id, title, expected, run.table()), run)
        for experiment_id, title, expected, run in table_experiments()
    ]


# ----------------------------------------------------------------------
# Parallel sweep/table runner
# ----------------------------------------------------------------------
#
# ``table_summaries(jobs=N)`` and ``sweep_results(jobs=N)`` fan the
# T/E-series experiments and D-series sweeps across worker processes.
# Every run is deterministically seeded, workers are handed only a spec
# index (picklable under fork and spawn alike), and results merge in
# the fixed presentation order regardless of completion order -- so a
# parallel run's report is byte-identical to a serial one.
#
# Observability degrades gracefully rather than silently: a worker
# process cannot append spans to the parent's tracer, so each worker
# runs under its own capture and ships back wall time, span counts, and
# counter snapshots, which the parent folds into the report's trace
# summary section.


@dataclass
class TableSummary:
    """The picklable result of one table experiment.

    Holds everything the CLI's text/JSON report paths need (the
    paper-vs-measured report, verdict, coalitions, run totals) without
    the run object itself, whose simulator and entity graph do not
    survive pickling.
    """

    experiment_id: str
    title: str
    report: ExperimentReport
    verdict_decoupled: bool
    coalitions: Tuple[Tuple[str, ...], ...]
    observations: int
    #: The audit grade (strong / decoupled / coupled), same semantics
    #: as :attr:`repro.core.audit.AuditReport.grade`.
    grade: str = ""
    sim_seconds: Optional[float] = None
    events: Optional[int] = None
    messages: Optional[int] = None
    bytes: Optional[int] = None
    wall_ms: float = 0.0
    spans: int = 0
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class SweepResult:
    """One D-series sweep's payload plus worker-side trace metrics."""

    key: str
    payload: object
    wall_ms: float = 0.0
    points: int = 0
    counters: Dict[str, int] = field(default_factory=dict)


def _summarize_table_run(
    experiment_id: str, title: str, expected: Dict[str, str], run: object
) -> TableSummary:
    report = compare_tables(experiment_id, title, expected, run.table())
    analyzer = run.analyzer
    coalitions = tuple(
        tuple(sorted(coalition))
        for coalition in analyzer.minimal_recoupling_coalitions()
    )
    decoupled = analyzer.verdict().decoupled
    if not decoupled:
        grade = "coupled"
    else:
        grade = "strong" if not coalitions else "decoupled"
    summary = TableSummary(
        experiment_id=experiment_id,
        title=title,
        report=report,
        verdict_decoupled=decoupled,
        coalitions=coalitions,
        observations=len(run.world.ledger),
        grade=grade,
    )
    network = getattr(run, "network", None)
    if network is not None:
        summary.sim_seconds = network.simulator.now
        summary.events = network.simulator.events_processed
        summary.messages = network.messages_delivered
        summary.bytes = network.bytes_delivered
    return summary


def _counter_snapshot(registry) -> Dict[str, int]:
    return {
        row["name"]: row["value"]
        for row in registry.snapshot()
        if row["type"] == "counter"
    }


def _table_worker(index: int) -> TableSummary:
    """Run one table experiment in a worker process, fully traced."""
    from repro import obs

    experiment_id, title, expected, runner = _table_specs()[index]
    start = time.perf_counter()
    with obs.capture() as (tracer, registry):
        run = _run_experiment(experiment_id, title, runner)
    summary = _summarize_table_run(experiment_id, title, expected, run)
    summary.wall_ms = (time.perf_counter() - start) * 1000.0
    summary.spans = max(len(tracer.spans) - 1, 0)
    summary.counters = _counter_snapshot(registry)
    return summary


def parallel_map(fn: Callable, items: Sequence, jobs: int) -> List:
    """Order-preserving map over worker processes.

    ``jobs <= 1`` runs in-process (no pool, spans flow to the ambient
    tracer).  Otherwise a pool of ``min(jobs, len(items))`` processes
    maps ``fn`` with results returned in input order, independent of
    worker completion order.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with multiprocessing.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(fn, items)


def table_summaries(jobs: int = 1) -> List[TableSummary]:
    """Every table experiment, summarized; parallel when ``jobs > 1``.

    The serial path runs in-process so callers' ``obs.capture()`` sees
    every span; the parallel path delegates to :func:`_table_worker`,
    which captures per worker and returns folded metrics instead.
    """
    specs = _table_specs()
    if jobs <= 1:
        return [
            _summarize_table_run(
                experiment_id, title, expected, _run_experiment(experiment_id, title, runner)
            )
            for experiment_id, title, expected, runner in specs
        ]
    return parallel_map(_table_worker, range(len(specs)), jobs)


@register_sweep("D3u", title="D3: batch sweep, unpadded", order=3.0)
def _sweep_batches_unpadded() -> List[Dict[str, float]]:
    return sweep_batches(False)


@register_sweep("D3p", title="D3: batch sweep, padded", order=3.5)
def _sweep_batches_padded() -> List[Dict[str, float]]:
    return sweep_batches(True)


def _sweep_specs() -> List[Tuple[str, Callable[[], object]]]:
    """The D-series sweeps in presentation order, by stable key.

    A registry query over :func:`repro.scenario.register_sweep`
    registrations.  ``D3u``/``D3p`` are the unpadded/padded halves of
    the paper's D3 traffic-analysis sweep (one worker each).
    """
    return [(spec.key, spec.runner) for spec in sweep_specs()]


def _sweep_worker(index: int) -> SweepResult:
    """Run one D-series sweep in a worker process, fully traced."""
    from repro import obs

    key, runner = _sweep_specs()[index]
    start = time.perf_counter()
    with obs.capture() as (tracer, registry):
        payload = runner()
    return SweepResult(
        key=key,
        payload=payload,
        wall_ms=(time.perf_counter() - start) * 1000.0,
        points=len(tracer.by_name("sweep-point")),
        counters=_counter_snapshot(registry),
    )


def sweep_results(jobs: int = 1) -> List[SweepResult]:
    """Every D-series sweep, in stable order; parallel when ``jobs > 1``."""
    specs = _sweep_specs()
    if jobs <= 1:
        return [SweepResult(key=key, payload=runner()) for key, runner in specs]
    return parallel_map(_sweep_worker, range(len(specs)), jobs)


# ----------------------------------------------------------------------
# R-series: resilience sweep (decoupling verdicts under failure)
# ----------------------------------------------------------------------
#
# The paper's tables are happy-path artifacts.  The R-series ramps a
# uniform link-loss fault plan over every registered scenario and
# reports two things per (scenario, rate) point: how much of the
# workload still completes (delivery), and whether the decoupling
# verdict survives (stability).  A verdict that flips under faults --
# odoh's proxy-down fallback to direct resolution is the canonical
# case -- is the quantified form of "fallback is a privacy breach".


@dataclass
class ResiliencePoint:
    """One (scenario, fault rate) cell of the R-series sweep."""

    scenario: str
    rate: float
    packets_sent: int
    packets_delivered: int
    packets_dropped: int
    packets_duplicated: int
    delivery_rate: float
    decoupled: bool
    baseline_decoupled: bool
    verdict_stable: bool
    attempts: int
    retries: int
    fallbacks: int
    failures: int
    phase_errors: int
    observations: int

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)


#: The default loss ramp: fault-free anchor, mild, and heavy loss.
DEFAULT_RESILIENCE_RATES: Tuple[float, ...] = (0.0, 0.15, 0.35)


def resilience_point(
    scenario_id: str, rate: float, seed: int = 0
) -> ResiliencePoint:
    """Run one scenario fault-free and under ``rate`` uniform loss.

    The fault-free run anchors the verdict; ``rate == 0`` reuses it as
    the measured run, so the sweep's first column doubles as a
    differential check that the fault machinery is inert when null.
    """
    from repro.faults import FaultPlan

    with get_tracer().span(
        "resilience-point", kind="harness", sim_time=0.0,
        scenario=scenario_id, rate=rate,
    ) as span:
        baseline = run_scenario(scenario_id)
        baseline_decoupled = baseline.analyzer.verdict().decoupled
        if rate <= 0.0:
            run = baseline
            stats = {}
        else:
            run = run_scenario(
                scenario_id, faults=FaultPlan.uniform_loss(rate, seed=seed)
            )
            stats = run.fault_summary["stats"]
        network = run.network
        span.end_sim(network.simulator.now)
        decoupled = run.analyzer.verdict().decoupled
        sent = network.packets_sent + network.packets_duplicated
        return ResiliencePoint(
            scenario=scenario_id,
            rate=rate,
            packets_sent=network.packets_sent,
            packets_delivered=network.messages_delivered,
            packets_dropped=network.packets_dropped,
            packets_duplicated=network.packets_duplicated,
            delivery_rate=network.messages_delivered / max(1, sent),
            decoupled=decoupled,
            baseline_decoupled=baseline_decoupled,
            verdict_stable=decoupled == baseline_decoupled,
            attempts=stats.get("attempts", 0),
            retries=stats.get("retries", 0),
            fallbacks=stats.get("fallbacks", 0),
            failures=stats.get("failures", 0),
            phase_errors=len(stats.get("phase_errors", ())),
            observations=len(run.world.ledger),
        )


def _resilience_worker(item: Tuple[str, float, int]) -> ResiliencePoint:
    """One sweep cell in a worker process (items are picklable)."""
    scenario_id, rate, seed = item
    return resilience_point(scenario_id, rate, seed=seed)


def resilience_sweep(
    rates: Sequence[float] = DEFAULT_RESILIENCE_RATES,
    scenario_ids: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
) -> List[ResiliencePoint]:
    """The R-series: every scenario under a ramp of fault rates.

    Returns points in (scenario, rate) order -- all registered specs
    by default.  ``jobs > 1`` fans cells across worker processes; the
    per-cell runs are seeded, so the merged result is identical to a
    serial sweep.
    """
    if scenario_ids is None:
        from repro.scenario import all_specs

        scenario_ids = [spec.id for spec in all_specs()]
    items = [
        (scenario_id, float(rate), seed)
        for scenario_id in scenario_ids
        for rate in rates
    ]
    return parallel_map(_resilience_worker, items, jobs)


def figure_f1_series(max_steps: int = 10):
    run = run_mixnet(mixes=3, senders=4)
    return flow_series(
        run.world.ledger, ["Mix 1", "Mix 2", "Mix 3", "Receiver"], max_steps
    )


def figure_f2_series(max_steps: int = 10):
    run = run_privacy_pass(tokens=1)
    return flow_series(run.world.ledger, ["Issuer", "Origin"], max_steps)


@register_sweep("D1", title="D1: relays vs privacy/cost", order=1.0)
def sweep_relays(degrees=(1, 2, 3, 4, 5)) -> DegreeSweep:
    """D1: relay count vs collusion resistance and latency."""
    sweep = DegreeSweep(name="D1: relays vs privacy/cost")
    for relays in degrees:
        with get_tracer().span(
            "sweep-point", kind="harness", sweep="D1", degree=relays
        ):
            run = run_mpr(relays=relays, requests=2)
        sweep.add(
            DegreePoint(
                degree=relays,
                collusion_resistance=run.analyzer.collusion_resistance(),
                latency=run.mean_latency,
                messages=run.network.messages_delivered,
                bandwidth_overhead=run.network.bytes_delivered,
            )
        )
    return sweep


@register_sweep("D2", title="D2: aggregators vs privacy/cost", order=2.0)
def sweep_aggregators(degrees=(2, 3, 4, 5), clients: int = 6) -> DegreeSweep:
    """D2: aggregator count vs collusion resistance and traffic."""
    sweep = DegreeSweep(name="D2: aggregators vs privacy/cost")
    for count in degrees:
        with get_tracer().span(
            "sweep-point", kind="harness", sweep="D2", degree=count
        ):
            run = run_prio(clients=clients, aggregators=count)
        if run.reported_total != run.true_total:
            raise AssertionError("aggregate total diverged from ground truth")
        sweep.add(
            DegreePoint(
                degree=count,
                collusion_resistance=run.analyzer.collusion_resistance(),
                latency=run.network.simulator.now,
                messages=run.network.messages_delivered,
                bandwidth_overhead=run.network.bytes_delivered,
            )
        )
    return sweep


def sweep_batches(
    use_padding: bool, batches=(1, 2, 4, 8), seeds=range(6)
) -> List[Dict[str, float]]:
    """D3: batch size vs correlation accuracy and latency."""
    from repro.adversary import PassiveCorrelator, correlation_accuracy

    series = []
    for batch in batches:
        timing, sizes, latencies = [], [], []
        for seed in seeds:
            with get_tracer().span(
                "sweep-point", kind="harness", sweep="D3", degree=batch, seed=seed
            ):
                run = run_mixnet(
                    mixes=2, senders=8, batch_size=batch, seed=seed,
                    use_padding=use_padding,
                )
            correlator = PassiveCorrelator(run.network.trace)
            args = (
                run.mixes[0].address,
                run.mixes[-1].address,
                run.receiver.address,
            )
            truth = run.ground_truth()
            timing.append(
                correlation_accuracy(correlator.fifo_guesses(*args), truth)
            )
            sizes.append(
                correlation_accuracy(correlator.size_guesses(*args), truth)
            )
            latencies.append(run.end_to_end_latency())
        series.append(
            {
                "batch": batch,
                "timing_accuracy": statistics.mean(timing),
                "size_accuracy": statistics.mean(sizes),
                "latency": statistics.mean(latencies),
            }
        )
    return series


@register_sweep("D4", title="D4: resolver striping", order=4.0)
def sweep_striping(resolver_counts=(1, 2, 4, 8)) -> List[Dict[str, float]]:
    """D4: resolver count vs per-resolver knowledge."""
    from repro.core.entities import World
    from repro.core.labels import SENSITIVE_IDENTITY
    from repro.core.values import LabeledValue, Subject
    from repro.dns.resolver import RecursiveResolver
    from repro.dns.striping import RoundRobinPolicy, StripingStub
    from repro.dns.zones import AuthoritativeServer, Zone, ZoneRegistry
    from repro.net.network import Network

    names = [f"site-{i}.example.com" for i in range(16)]
    series = []
    for count in resolver_counts:
        with get_tracer().span(
            "sweep-point", kind="harness", sweep="D4", degree=count
        ):
            world = World()
            network = Network()
            registry = ZoneRegistry()
            zone = Zone("example.com")
            for name in names:
                zone.add(name, "203.0.113.99")
            AuthoritativeServer(
                network, world.entity("Auth", "dns-infra"), zone, registry
            )
            resolvers = [
                RecursiveResolver(
                    network,
                    world.entity(f"Resolver {i}", f"resolver-org-{i}"),
                    registry,
                    name=f"resolver-{i}",
                )
                for i in range(count)
            ]
            alice = Subject("alice")
            host = network.add_host(
                "client",
                world.entity("Client", "device", trusted_by_user=True),
                identity=LabeledValue("198.51.100.9", SENSITIVE_IDENTITY, alice, "ip"),
            )
            stub = StripingStub(
                host, [r.address for r in resolvers], RoundRobinPolicy()
            )
            for name in names:
                stub.lookup(name, alice)
        series.append(
            {
                "resolvers": count,
                "max_query_share": stub.max_resolver_share(),
                "max_name_coverage": stub.max_name_coverage(len(names)),
                "load_entropy_bits": stub.load_entropy_bits(),
                "imbalance": stub.load_imbalance(),
            }
        )
    return series


@register_sweep("D6", title="D6: statistical disclosure", order=6.0)
def sweep_disclosure(
    rounds=(2, 8, 32), seeds=range(8), recipients: int = 6
) -> List[Dict[str, float]]:
    """D6 (extension): statistical disclosure vs observation time."""
    from repro.adversary import StatisticalDisclosureAttack, generate_sda_rounds

    series = []
    for round_count in rounds:
        hits = 0
        with get_tracer().span(
            "sweep-point", kind="harness", sweep="D6", degree=round_count
        ):
            for seed in seeds:
                observations, target, truth = generate_sda_rounds(
                    rounds=round_count, covers=9, recipients=recipients, seed=seed
                )
                guess = StatisticalDisclosureAttack().estimate(observations, target)
                hits += int(guess == truth)
        series.append(
            {
                "rounds": round_count,
                "accuracy": hits / len(list(seeds)),
                "chance": 1.0 / recipients,
            }
        )
    return series


@register_sweep("D5", title="D5: PGPP tracking", order=5.0)
def sweep_tracking(populations=(2, 4, 8, 16), seeds=range(5)) -> List[Dict[str, float]]:
    """D5 (extension): PGPP tracking accuracy vs population size."""
    series = []
    for users in populations:
        accuracies = []
        with get_tracer().span(
            "sweep-point", kind="harness", sweep="D5", degree=users
        ):
            for seed in seeds:
                run = run_pgpp(users=users, cells=6, steps=4, epochs=3, seed=seed)
                tracks = extract_epoch_tracks(run.core.mobility_log)
                chains = TrajectoryLinker().link(tracks)
                accuracies.append(tracking_accuracy(chains, run.imsi_truth()))
        series.append(
            {
                "users": users,
                "tracking_accuracy": statistics.mean(accuracies),
                "chance": 1.0 / users,
            }
        )
    return series
